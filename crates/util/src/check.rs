//! A minimal property-testing harness, replacing `proptest`.
//!
//! The model is deliberately simple: a *generator* is any
//! `FnMut(&mut StdRng) -> T`, a *property* is any `FnMut(&T)` that panics
//! (via the ordinary `assert!` family) on violation. [`run`] executes N
//! cases, each from its own deterministically derived case seed, and on
//! failure reports the case seed and the `Debug` form of the failing input
//! so the case can be replayed exactly:
//!
//! ```text
//! MTC_CHECK_SEED=0x53a0...  cargo test -p mtc-sql failing_test_name
//! ```
//!
//! There is no shrinking — inputs here are small enough that the printed
//! value plus a replay seed has been sufficient in practice, and the
//! regressions we port forward are kept as explicit `#[test]` cases
//! instead of an opaque seed file.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{SeedableRng, SplitMix64, StdRng};

/// Configuration for one property run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases (`MTC_CHECK_CASES` overrides).
    pub cases: u32,
    /// Base seed; case i's generator is seeded with `mix(seed, i)`.
    pub seed: u64,
}

impl Config {
    pub fn cases(cases: u32) -> Config {
        Config {
            cases,
            seed: 0x4D54_4361_6368_6531, // "MTCache1"
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("MTC_CHECK_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config::cases(64)
    }
}

/// Derives the per-case seed. SplitMix64 over (base, index) gives
/// well-spread, platform-stable case seeds.
fn case_seed(base: u64, index: u64) -> u64 {
    let mut sm = SplitMix64::new(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next()
}

fn replay_seed() -> Option<u64> {
    let v = std::env::var("MTC_CHECK_SEED").ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("MTC_CHECK_SEED=`{v}` is not a u64")))
}

/// Runs `property` against `cases` inputs drawn from `generate`.
///
/// On a property panic the harness re-raises with the failing case's seed
/// and input attached. Setting `MTC_CHECK_SEED` replays exactly one case
/// with that seed (no catch, so backtraces point at the real assert).
pub fn run<T, G, P>(config: &Config, name: &str, mut generate: G, mut property: P)
where
    T: std::fmt::Debug,
    G: FnMut(&mut StdRng) -> T,
    P: FnMut(&T),
{
    if let Some(seed) = replay_seed() {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = generate(&mut rng);
        eprintln!("[mtc-check] {name}: replaying seed {seed:#x} with input {input:?}");
        property(&input);
        return;
    }
    for i in 0..config.effective_cases() {
        let seed = case_seed(config.seed, i as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = generate(&mut rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&input)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied())
                .unwrap_or("<non-string panic payload>");
            panic!(
                "[mtc-check] property `{name}` failed at case {i}/{total}\n\
                 \x20 input: {input:?}\n\
                 \x20 cause: {msg}\n\
                 \x20 replay: MTC_CHECK_SEED={seed:#x} cargo test {name}",
                total = config.effective_cases(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Small generator helpers shared by the ported property tests.
// ---------------------------------------------------------------------------

use crate::rng::Rng;

/// A `Vec<T>` whose length is drawn uniformly from `len` (inclusive lo,
/// exclusive hi — matching `proptest`'s `vec(elem, lo..hi)`).
pub fn vec_of<T>(
    rng: &mut StdRng,
    len: std::ops::Range<usize>,
    mut element: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(len);
    (0..n).map(|_| element(rng)).collect()
}

/// A random string of length drawn from `len`, characters drawn uniformly
/// from `alphabet`.
pub fn string_from(rng: &mut StdRng, alphabet: &[char], len: std::ops::Range<usize>) -> String {
    let n = rng.gen_range(len);
    (0..n)
        .map(|_| *rng.choose(alphabet).expect("non-empty alphabet"))
        .collect()
}

/// Arbitrary (mostly printable, occasionally exotic) string for
/// never-panics fuzzing, standing in for proptest's `\PC{0,n}`.
pub fn fuzz_string(rng: &mut StdRng, max_len: usize) -> String {
    let n = rng.gen_range(0..max_len + 1);
    (0..n)
        .map(|_| match rng.gen_range(0u32..10) {
            0..=5 => rng.gen_range(0x20u32..0x7F), // printable ASCII
            6 => rng.gen_range(0x00u32..0x20),     // control chars
            7 => rng.gen_range(0xA1u32..0x250),    // Latin supplements
            8 => rng.gen_range(0x391u32..0x3CA),   // Greek
            _ => rng.gen_range(0x4E00u32..0x4E80), // CJK
        })
        .map(|c| char::from_u32(c).unwrap_or('?'))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run(
            &Config::cases(32),
            "counting",
            |rng| rng.gen_range(0i64..100),
            |v| {
                count += 1;
                assert!((0..100).contains(v));
            },
        );
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_property_reports_seed_and_input() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(
                &Config::cases(100),
                "always_fails",
                |rng| rng.gen_range(1000i64..2000),
                |v| assert!(*v < 1000, "v was {v}"),
            );
        }));
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("MTC_CHECK_SEED=0x"), "{msg}");
        assert!(msg.contains("input:"), "{msg}");
        assert!(msg.contains("v was"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut v = Vec::new();
            run(
                &Config::cases(10),
                "collect",
                |rng| rng.gen_range(0u64..1_000_000),
                |x| v.push(*x),
            );
            v
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = vec_of(&mut rng, 1..5, |r| r.gen_range(0i64..10));
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn fuzz_string_is_valid_utf8_and_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let s = fuzz_string(&mut rng, 60);
            assert!(s.chars().count() <= 60);
        }
    }
}
