//! A spawn-once worker pool with a shared morsel queue.
//!
//! Morsel-driven execution (Leis et al., and the executor in
//! `mtc-engine`) wants a fixed set of long-lived workers pulling small,
//! self-contained work items ("morsels") off a queue — never a thread
//! spawn per query. This module provides exactly that and nothing more:
//!
//! * [`WorkerPool::new`] spawns `threads` workers once; they park on a
//!   condvar until work arrives and live until the pool is dropped.
//! * [`WorkerPool::run`] scatters an ordered list of morsels across the
//!   pool, blocks until all complete, and gathers the results **in input
//!   order** — the deterministic-merge contract parallel operators rely
//!   on to preserve scan order (and therefore `ORDER BY`/`TOP`
//!   semantics) regardless of which worker finished first.
//! * The submitting thread does not idle while it waits: it pops morsels
//!   off the same queue and executes them inline. This keeps the pool
//!   correct (and useful) even with zero spare cores — on a single-CPU
//!   host `run` degrades to serial execution with identical results.
//! * A panic inside a morsel is caught on the worker, carried back, and
//!   re-raised on the submitting thread, so `dop > 1` keeps the same
//!   panic observability as the serial path.
//!
//! Everything here is safe code over `std::sync` primitives; the hermetic
//! guard (`tests/hermetic.rs`) keeps it dependency-free.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue + parking shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<PoolState>,
    work_ready: Condvar,
}

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

impl Shared {
    fn pop_blocking(&self) -> Option<Job> {
        let mut state = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.shutdown {
                return None;
            }
            state = self
                .work_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .pop_front()
    }

    fn push(&self, job: Job) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .push_back(job);
        self.work_ready.notify_one();
    }
}

/// Tracks one `run` call: slots for results, a completion count, and a
/// condvar the submitter parks on when the queue runs dry.
struct Batch<O> {
    slots: Mutex<BatchState<O>>,
    done: Condvar,
    remaining: AtomicUsize,
}

struct BatchState<O> {
    results: Vec<Option<O>>,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl<O> Batch<O> {
    fn new(n: usize) -> Batch<O> {
        Batch {
            slots: Mutex::new(BatchState {
                results: (0..n).map(|_| None).collect(),
                panic: None,
            }),
            done: Condvar::new(),
            remaining: AtomicUsize::new(n),
        }
    }

    fn complete(&self, index: usize, outcome: Result<O, Box<dyn std::any::Any + Send>>) {
        {
            let mut state = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
            match outcome {
                Ok(v) => state.results[index] = Some(v),
                Err(p) => {
                    state.panic.get_or_insert(p);
                }
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last morsel: wake the submitter if it is parked.
            let _guard = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

/// A fixed pool of worker threads executing queued morsels.
///
/// See the module docs for the execution contract. Dropping the pool
/// signals shutdown and joins every worker.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("mtc-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.pop_blocking() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
        }
    }

    /// Number of worker threads (not counting submitters helping inline).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The process-wide pool, spawned on first use. Sized from
    /// `MTC_POOL_THREADS` when set, otherwise from the host's available
    /// parallelism (capped at 8 — the widest `dop` the benches exercise).
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("MTC_POOL_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                        .min(8)
                });
            Arc::new(WorkerPool::new(threads))
        })
    }

    /// Runs `f` over every morsel in `morsels`, in parallel, and returns
    /// the outputs **in morsel order**.
    ///
    /// The calling thread participates: after enqueueing it drains the
    /// same queue until its batch completes, so throughput never depends
    /// on the pool having idle workers. If any morsel panics, the panic
    /// is re-raised here after the batch drains.
    pub fn run<I, O, F>(&self, morsels: Vec<I>, f: F) -> Vec<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> O + Send + Sync + 'static,
    {
        let n = morsels.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // One morsel: run inline, skip the queue round-trip.
            let mut morsels = morsels;
            return vec![f(0, morsels.pop().expect("one morsel"))];
        }
        let f = Arc::new(f);
        let batch = Arc::new(Batch::new(n));
        for (i, morsel) in morsels.into_iter().enumerate() {
            let f = f.clone();
            let batch = batch.clone();
            self.shared.push(Box::new(move || {
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(i, morsel)));
                batch.complete(i, outcome);
            }));
        }
        // Help drain the queue; park only when it is empty and our batch
        // is still in flight on other workers.
        while !batch.is_done() {
            if let Some(job) = self.shared.try_pop() {
                job();
                continue;
            }
            let state = batch.slots.lock().unwrap_or_else(PoisonError::into_inner);
            if batch.is_done() {
                break;
            }
            // Re-check the queue under no lock after a bounded wait so a
            // job enqueued between try_pop and wait cannot strand us.
            let _ = batch
                .done
                .wait_timeout(state, std::time::Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
        }
        let mut state = batch.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(p) = state.panic.take() {
            panic::resume_unwind(p);
        }
        state
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("completed batch has every slot filled"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_morsel_order() {
        let pool = WorkerPool::new(4);
        let morsels: Vec<u64> = (0..64).collect();
        let out = pool.run(morsels, |i, m| {
            // Uneven work so completion order scrambles.
            let mut acc = m;
            for _ in 0..((i * 37) % 211) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, m, acc)
        });
        for (i, (idx, m, _)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*m, i as u64);
        }
    }

    #[test]
    fn empty_and_single_morsel_batches() {
        let pool = WorkerPool::new(2);
        let none: Vec<u32> = pool.run(Vec::<u32>::new(), |_, m| m);
        assert!(none.is_empty());
        assert_eq!(pool.run(vec![7u32], |_, m| m * 3), vec![21]);
    }

    #[test]
    fn submitter_helps_on_starved_pool() {
        // One worker, but it is busy with an unrelated long batch; the
        // submitter must still finish its own batch by helping.
        let pool = Arc::new(WorkerPool::new(1));
        let out = pool.run((0..32u64).collect(), |_, m| m + 1);
        assert_eq!(out.iter().sum::<u64>(), (1..=32).sum());
    }

    #[test]
    fn concurrent_batches_do_not_interleave_results() {
        let pool = Arc::new(WorkerPool::new(3));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let pool = pool.clone();
                thread::spawn(move || {
                    let out = pool.run((0..50u64).collect(), move |_, m| m * 10 + t);
                    out.iter().enumerate().all(|(i, &v)| v == i as u64 * 10 + t)
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }

    #[test]
    fn morsel_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(2);
        let res = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run((0..8u32).collect(), |_, m| {
                assert!(m != 5, "boom on morsel 5");
                m
            })
        }));
        assert!(res.is_err(), "panic must cross the pool boundary");
        // Pool remains usable afterwards.
        assert_eq!(pool.run(vec![1u32, 2], |_, m| m).len(), 2);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const _;
        let b = WorkerPool::global() as *const _;
        assert_eq!(a, b);
        assert!(WorkerPool::global().threads() >= 1);
    }
}
