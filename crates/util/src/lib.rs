//! # mtc-util — the workspace's hermetic substrate
//!
//! The MTCache reproduction models a cache tier whose defining property is
//! *self-sufficiency*: it keeps serving when the backend is unreachable.
//! The build embodies the same idea — this crate replaces every external
//! dependency the workspace used to declare, so a clean checkout compiles
//! and tests with an empty cargo registry and no network at all.
//!
//! | external crate | in-tree replacement |
//! |----------------|---------------------|
//! | `parking_lot`  | [`sync`] — poison-free `Mutex`/`RwLock` over `std::sync` |
//! | `rand`         | [`rng`] — SplitMix64-seeded PCG32, `gen_range`/`gen_bool`/`shuffle` |
//! | `proptest`     | [`check`] — seeded generators + N-case runner with failing-seed replay |
//! | `criterion`    | [`bench`] — warmup + iterate + report timer harness |
//! | `serde`        | `mtc_types::codec` — compact binary `to_bytes`/`from_bytes` |
//!
//! Beyond the replacements, [`fault`] provides the workspace's deterministic
//! failure substrate: seeded [`fault::FaultPlan`] decisions (drop /
//! duplicate / delay / corrupt / crash) and the jittered-exponential
//! [`fault::RetryPolicy`] the replication agents recover with.
//!
//! The invariant is enforced by the root `tests/hermetic.rs` guard, which
//! fails if any `Cargo.toml` in the workspace declares a non-`path`
//! dependency.

pub mod atomic;
pub mod bench;
pub mod check;
pub mod fault;
pub mod pool;
pub mod rng;
pub mod sync;
