//! Deterministic fault injection and retry policy.
//!
//! The replication pipeline's transparency rests on deliveries arriving
//! intact and in order; a production-scale system must keep converging when
//! they don't. [`FaultPlan`] is a *seeded* oracle the delivery path consults
//! once per attempt: it answers with a [`FaultDecision`] — deliver, drop,
//! duplicate, delay, corrupt the frame, or crash the agent — drawn from a
//! [`FaultSpec`]'s probabilities through the in-tree PCG32. The same seed
//! yields the same decision sequence on every platform and every run, so a
//! failing fault test replays from a one-line seed (`MTC_CHECK_SEED`, see
//! `mtc_util::check`).
//!
//! [`RetryPolicy`] is the companion recovery knob: exponential backoff with
//! multiplicative jitter (jitter drawn from the caller's own seeded RNG, so
//! backoff schedules are reproducible too).
//!
//! This module is substrate, not replication-specific: decisions are about
//! abstract "deliveries", and the simulator reuses the same probabilities to
//! model fault-lengthened propagation lag.

use crate::rng::{Rng, SeedableRng, StdRng};

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The delivery is lost; the sender must redeliver.
    Drop,
    /// The delivery arrives twice; the receiver must apply it exactly once
    /// (in effect).
    Duplicate,
    /// The delivery is held for a while before it can be retried.
    Delay,
    /// The wire frame is damaged in flight; strict decoding must reject it.
    Corrupt,
    /// The applying agent dies after applying but before recording progress;
    /// restart re-applies from the last recorded position.
    Crash,
}

/// Probabilities (and the crash cadence) for one fault plan.
///
/// The four probabilities are mutually exclusive per decision and must sum
/// to at most 1; the remainder is a clean delivery. `crash_every` is
/// counter-based — deterministic even without the RNG — and takes
/// precedence over the probabilistic faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a delivery is dropped.
    pub drop_p: f64,
    /// Probability a delivery is applied twice.
    pub duplicate_p: f64,
    /// Probability a delivery is held for `delay_ms`.
    pub delay_p: f64,
    /// Hold duration for delayed deliveries (milliseconds).
    pub delay_ms: i64,
    /// Probability the encoded frame is corrupted in flight.
    pub corrupt_p: f64,
    /// Crash the agent on every Nth decision (0 = never).
    pub crash_every: u64,
}

impl FaultSpec {
    /// No faults at all — every decision is `Deliver`.
    pub const NONE: FaultSpec = FaultSpec {
        drop_p: 0.0,
        duplicate_p: 0.0,
        delay_p: 0.0,
        delay_ms: 0,
        corrupt_p: 0.0,
        crash_every: 0,
    };

    pub fn drop(p: f64) -> FaultSpec {
        FaultSpec { drop_p: p, ..FaultSpec::NONE }
    }

    pub fn duplicate(p: f64) -> FaultSpec {
        FaultSpec { duplicate_p: p, ..FaultSpec::NONE }
    }

    pub fn delay(p: f64, delay_ms: i64) -> FaultSpec {
        FaultSpec { delay_p: p, delay_ms, ..FaultSpec::NONE }
    }

    pub fn corrupt(p: f64) -> FaultSpec {
        FaultSpec { corrupt_p: p, ..FaultSpec::NONE }
    }

    pub fn crash_every(n: u64) -> FaultSpec {
        FaultSpec { crash_every: n, ..FaultSpec::NONE }
    }

    /// Sum of the probabilistic fault rates.
    fn total_p(&self) -> f64 {
        self.drop_p + self.duplicate_p + self.delay_p + self.corrupt_p
    }
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec::NONE
    }
}

/// What to do with one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Lose the delivery; it stays queued for redelivery.
    Drop,
    /// Deliver, then deliver the identical frame a second time.
    Duplicate,
    /// Hold the delivery; retry no earlier than `ms` from now.
    Delay { ms: i64 },
    /// Damage the encoded frame before the receiver decodes it.
    Corrupt,
    /// Apply, then kill the agent before it records progress.
    Crash,
}

/// Cumulative injection counters (what the plan *chose*, independent of how
/// the pipeline recovered).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub decisions: u64,
    pub drops: u64,
    pub duplicates: u64,
    pub delays: u64,
    pub corruptions: u64,
    pub crashes: u64,
}

/// A seeded source of fault decisions, consumed one delivery attempt at a
/// time. Decisions depend only on `(seed, spec, attempt index)`, so a run
/// that consumes decisions in a deterministic order is itself deterministic.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: StdRng,
    /// What has been injected so far.
    pub counts: FaultCounts,
}

impl FaultPlan {
    /// Builds a plan from a seed and a spec. Panics if the probabilistic
    /// rates sum above 1 (they are mutually exclusive per decision).
    pub fn new(seed: u64, spec: FaultSpec) -> FaultPlan {
        assert!(
            spec.total_p() <= 1.0 + 1e-9,
            "fault probabilities sum to {} > 1",
            spec.total_p()
        );
        FaultPlan {
            spec,
            rng: StdRng::seed_from_u64(seed),
            counts: FaultCounts::default(),
        }
    }

    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Draws the decision for the next delivery attempt.
    pub fn next_decision(&mut self) -> FaultDecision {
        self.counts.decisions += 1;
        // Counter-based crash first: deterministic cadence, independent of
        // the probabilistic stream.
        if self.spec.crash_every > 0 && self.counts.decisions % self.spec.crash_every == 0 {
            self.counts.crashes += 1;
            return FaultDecision::Crash;
        }
        if self.spec.total_p() <= 0.0 {
            return FaultDecision::Deliver;
        }
        let u = self.rng.gen_f64();
        let mut threshold = self.spec.drop_p;
        if u < threshold {
            self.counts.drops += 1;
            return FaultDecision::Drop;
        }
        threshold += self.spec.duplicate_p;
        if u < threshold {
            self.counts.duplicates += 1;
            return FaultDecision::Duplicate;
        }
        threshold += self.spec.delay_p;
        if u < threshold {
            self.counts.delays += 1;
            return FaultDecision::Delay { ms: self.spec.delay_ms };
        }
        threshold += self.spec.corrupt_p;
        if u < threshold {
            self.counts.corruptions += 1;
            return FaultDecision::Corrupt;
        }
        FaultDecision::Deliver
    }

    /// Damages an encoded frame so that a *strict* decoder must reject it.
    /// Four deterministic-per-seed modes: bad magic, bumped version, one
    /// byte truncated, one trailing byte appended — each is a hard decode
    /// error for the replication wire format.
    pub fn corrupt_frame(&mut self, frame: &mut Vec<u8>) {
        match self.rng.gen_range(0u32..4) {
            0 => {
                if let Some(b) = frame.first_mut() {
                    *b ^= 0xFF;
                }
            }
            1 => {
                if let Some(b) = frame.get_mut(1) {
                    *b = b.wrapping_add(1);
                }
            }
            2 => {
                let keep = frame.len().saturating_sub(1);
                frame.truncate(keep);
            }
            _ => frame.push(0xEE),
        }
    }
}

/// Exponential backoff with multiplicative jitter.
///
/// Attempt `k` (1-based) waits `base · 2^(k−1)` capped at `max_delay_ms`,
/// scaled by a uniform factor in `[1 − jitter, 1 + jitter]`. Jitter comes
/// from the caller's RNG so a seeded agent produces a reproducible backoff
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delivery/drain attempts before giving up (used by the agent's
    /// shutdown flush; the steady-state loop retries forever).
    pub max_attempts: u32,
    /// First backoff step (milliseconds).
    pub base_delay_ms: u64,
    /// Backoff cap (milliseconds).
    pub max_delay_ms: u64,
    /// Jitter fraction in `[0, 1)`; 0 disables jitter.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 16,
            base_delay_ms: 5,
            max_delay_ms: 2_000,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based; 0 is treated as 1).
    pub fn backoff_ms(&self, attempt: u32, rng: &mut StdRng) -> u64 {
        let exp = attempt.max(1).saturating_sub(1).min(32);
        let raw = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX))
            .min(self.max_delay_ms.max(self.base_delay_ms));
        if self.jitter <= 0.0 {
            return raw;
        }
        let factor = (1.0 - self.jitter) + rng.gen_f64() * (2.0 * self.jitter);
        ((raw as f64) * factor).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let spec = FaultSpec {
            drop_p: 0.2,
            duplicate_p: 0.1,
            delay_p: 0.1,
            delay_ms: 50,
            corrupt_p: 0.05,
            crash_every: 13,
        };
        let draw = |seed: u64| {
            let mut plan = FaultPlan::new(seed, spec);
            (0..500).map(|_| plan.next_decision()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let spec = FaultSpec {
            drop_p: 0.3,
            duplicate_p: 0.2,
            ..FaultSpec::NONE
        };
        let mut plan = FaultPlan::new(7, spec);
        for _ in 0..20_000 {
            plan.next_decision();
        }
        let drop_frac = plan.counts.drops as f64 / plan.counts.decisions as f64;
        let dup_frac = plan.counts.duplicates as f64 / plan.counts.decisions as f64;
        assert!((0.27..0.33).contains(&drop_frac), "drop {drop_frac}");
        assert!((0.17..0.23).contains(&dup_frac), "dup {dup_frac}");
    }

    #[test]
    fn crash_cadence_is_exact() {
        let mut plan = FaultPlan::new(1, FaultSpec::crash_every(5));
        let decisions: Vec<_> = (0..20).map(|_| plan.next_decision()).collect();
        for (i, d) in decisions.iter().enumerate() {
            if (i + 1) % 5 == 0 {
                assert_eq!(*d, FaultDecision::Crash, "decision {i}");
            } else {
                assert_eq!(*d, FaultDecision::Deliver, "decision {i}");
            }
        }
        assert_eq!(plan.counts.crashes, 4);
    }

    #[test]
    fn none_spec_always_delivers_without_consuming_entropy() {
        let mut plan = FaultPlan::new(9, FaultSpec::NONE);
        for _ in 0..100 {
            assert_eq!(plan.next_decision(), FaultDecision::Deliver);
        }
        assert_eq!(plan.counts.decisions, 100);
        assert_eq!(plan.counts, FaultCounts { decisions: 100, ..FaultCounts::default() });
    }

    #[test]
    #[should_panic(expected = "fault probabilities")]
    fn overfull_probabilities_panic() {
        let _ = FaultPlan::new(0, FaultSpec { drop_p: 0.7, corrupt_p: 0.5, ..FaultSpec::NONE });
    }

    #[test]
    fn delay_decision_carries_configured_hold() {
        let mut plan = FaultPlan::new(3, FaultSpec::delay(1.0, 250));
        assert_eq!(plan.next_decision(), FaultDecision::Delay { ms: 250 });
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay_ms: 10,
            max_delay_ms: 100,
            jitter: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.backoff_ms(1, &mut rng), 10);
        assert_eq!(p.backoff_ms(2, &mut rng), 20);
        assert_eq!(p.backoff_ms(3, &mut rng), 40);
        assert_eq!(p.backoff_ms(4, &mut rng), 80);
        assert_eq!(p.backoff_ms(5, &mut rng), 100, "capped");
        assert_eq!(p.backoff_ms(60, &mut rng), 100, "deep attempts stay capped");
    }

    #[test]
    fn jittered_backoff_stays_in_band_and_is_seed_deterministic() {
        let p = RetryPolicy {
            jitter: 0.5,
            base_delay_ms: 100,
            max_delay_ms: 10_000,
            ..RetryPolicy::default()
        };
        let sample = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (1..=6).map(|a| p.backoff_ms(a, &mut rng)).collect::<Vec<_>>()
        };
        for (attempt, &ms) in sample(11).iter().enumerate() {
            let nominal = (100u64 << attempt).min(10_000) as f64;
            assert!(
                (nominal * 0.5..=nominal * 1.5 + 1.0).contains(&(ms as f64)),
                "attempt {attempt}: {ms} outside band around {nominal}"
            );
        }
        assert_eq!(sample(11), sample(11));
    }

    #[test]
    fn corrupt_frame_always_changes_the_buffer() {
        let mut plan = FaultPlan::new(5, FaultSpec::corrupt(1.0));
        for _ in 0..64 {
            let original = vec![0xAC, 0x01, 0x10, 0x20, 0x30];
            let mut frame = original.clone();
            plan.corrupt_frame(&mut frame);
            assert_ne!(frame, original);
        }
    }
}
