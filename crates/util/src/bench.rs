//! A tiny microbenchmark harness, replacing `criterion`.
//!
//! Surface-compatible with the slice of criterion the workspace's nine
//! `harness = false` benches use: `Criterion::default()`,
//! `bench_function(name, |b| b.iter(|| ...))` and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Methodology is the
//! classic warmup → calibrate → sample loop:
//!
//! 1. **Warmup** runs the closure for ~`warmup` wall time so caches,
//!    branch predictors and lazily initialized state settle.
//! 2. **Calibration** picks an iteration count per sample targeting
//!    ~`measure / samples` per batch, so per-sample timer overhead is
//!    amortized for nanosecond-scale bodies.
//! 3. **Sampling** collects `samples` batches and reports min / median /
//!    mean per-iteration time.
//!
//! Set `MTC_BENCH_QUICK=1` to shrink times by ~10× (useful in CI smoke
//! runs where you only care that the bench executes).
//!
//! For a fast correctness smoke of the whole workspace (no benches, quiet
//! output) the conventional alias is plain `cargo test -q`; the full
//! tier-1 gate is `cargo build --release && cargo test -q`. Bench targets
//! are `harness = false` and only run under `cargo bench`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects and prints one report per `bench_function`.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let quick = std::env::var("MTC_BENCH_QUICK").is_ok();
        Criterion {
            warmup: Duration::from_millis(if quick { 5 } else { 60 }),
            measure: Duration::from_millis(if quick { 20 } else { 300 }),
            samples: if quick { 10 } else { 30 },
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warmup = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measure = d;
        self
    }

    pub fn sample_count(mut self, n: usize) -> Criterion {
        self.samples = n.max(3);
        self
    }

    /// Runs one named benchmark. The closure receives a [`Bencher`] and is
    /// expected to call [`Bencher::iter`] exactly once (criterion's
    /// contract as used in this workspace).
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            samples: self.samples,
            per_iter_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Criterion compatibility no-op (criterion prints a summary on drop).
    pub fn final_summary(&mut self) {}
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    samples: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Times `body`, storing per-iteration samples for the report.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warmup + rough rate estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(body());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Batch size so each sample takes ~measure/samples.
        let target_sample = self.measure.as_secs_f64() / self.samples as f64;
        let batch = ((target_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.per_iter_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.per_iter_ns.push(ns);
        }
    }

    fn report(&self, name: &str) {
        if self.per_iter_ns.is_empty() {
            println!("{name:<40} (no samples — iter() never called)");
            return;
        }
        let mut sorted = self.per_iter_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<40} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group function, mirroring criterion's macro:
/// `criterion_group!(benches, bench_a, bench_b);` expands to a
/// `fn benches()` that runs each benchmark function against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main()` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Make the macros importable as `mtc_util::bench::{criterion_group, criterion_main}`
// so bench files migrate from criterion with a one-line import swap.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("MTC_BENCH_QUICK", "1");
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(5))
            .sample_count(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0, "body never executed");
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with("s"));
    }

    #[test]
    fn group_macros_compile_and_run() {
        fn tiny(c: &mut Criterion) {
            c.bench_function("macro_smoke", |b| b.iter(|| black_box(1 + 1)));
        }
        // Expand the macro inside a test: we only need the generated fn.
        criterion_group!(test_group, tiny);
        std::env::set_var("MTC_BENCH_QUICK", "1");
        test_group();
    }
}
