//! Relaxed atomic counters for hot-path statistics.
//!
//! Server and replication counters are bumped on every query; guarding them
//! with a `Mutex` serializes otherwise-independent sessions on a cache line
//! that exists only for observability. These counters use
//! `Ordering::Relaxed` throughout: each counter is an independent
//! monotonically-increasing tally, no reader derives cross-counter
//! invariants from a single load, and torn *sets* of counters (a snapshot
//! taken mid-update) were always possible under the old per-field reads
//! anyway.
//!
//! [`Counter`] wraps `AtomicU64`; [`FloatCounter`] stores an `f64` as its
//! bit pattern in an `AtomicU64` and adds with a CAS loop (uncontended in
//! practice — the loop exists for correctness, not because contention is
//! expected on a stats line).

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed monotonically-adjusted `u64` tally.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new(v: u64) -> Counter {
        Counter(AtomicU64::new(v))
    }

    /// Adds `n` (relaxed).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one (relaxed).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts `n` (relaxed, wrapping). Used by gauges (e.g. resident
    /// cache bytes) that go down as well as up.
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the stored value to `v` if larger (relaxed `fetch_max`).
    pub fn raise_to(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value (relaxed).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Returns the value and resets it to zero.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.get().fmt(f)
    }
}

/// A relaxed `f64` accumulator stored as bits in an `AtomicU64`.
#[derive(Default)]
pub struct FloatCounter(AtomicU64);

impl FloatCounter {
    pub fn new(v: f64) -> FloatCounter {
        FloatCounter(AtomicU64::new(v.to_bits()))
    }

    /// Adds `v` with a compare-and-swap loop (relaxed).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value (relaxed).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Overwrites the value (relaxed).
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Returns the value and resets it to zero.
    pub fn take(&self) -> f64 {
        f64::from_bits(self.0.swap(0f64.to_bits(), Ordering::Relaxed))
    }
}

impl std::fmt::Debug for FloatCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.get().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.sub(2);
        assert_eq!(c.get(), 3);
        c.add(2);
        c.raise_to(3);
        assert_eq!(c.get(), 5, "raise_to never lowers");
        c.raise_to(9);
        assert_eq!(c.get(), 9);
        assert_eq!(c.take(), 9);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn float_counter_accumulates() {
        let c = FloatCounter::default();
        c.add(1.5);
        c.add(2.25);
        assert_eq!(c.get(), 3.75);
        assert_eq!(c.take(), 3.75);
        assert_eq!(c.get(), 0.0);
    }

    #[test]
    fn float_counter_concurrent_adds_lose_nothing() {
        let c = Arc::new(FloatCounter::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4.0 * 10_000.0 * 0.5);
    }
}
