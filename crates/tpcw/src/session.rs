//! Emulated-browser session state and unique-id allocation.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use crate::datagen::Scale;

/// Allocates globally unique ids for carts, orders, customers and
/// addresses — shared by every session of a run (the kit's identity
/// columns).
#[derive(Debug)]
pub struct IdAllocator {
    next_cart: AtomicI64,
    next_order: AtomicI64,
    next_customer: AtomicI64,
    next_address: AtomicI64,
    next_order_line: AtomicI64,
}

impl IdAllocator {
    pub fn new(scale: &Scale) -> Arc<IdAllocator> {
        Arc::new(IdAllocator {
            next_cart: AtomicI64::new(1_000_000),
            next_order: AtomicI64::new(scale.orders() as i64 + 1),
            next_customer: AtomicI64::new(scale.customers() as i64 + 1),
            next_address: AtomicI64::new(scale.addresses() as i64 + 1),
            next_order_line: AtomicI64::new(1),
        })
    }

    pub fn cart(&self) -> i64 {
        self.next_cart.fetch_add(1, Ordering::Relaxed)
    }

    pub fn order(&self) -> i64 {
        self.next_order.fetch_add(1, Ordering::Relaxed)
    }

    pub fn customer(&self) -> i64 {
        self.next_customer.fetch_add(1, Ordering::Relaxed)
    }

    pub fn address(&self) -> i64 {
        self.next_address.fetch_add(1, Ordering::Relaxed)
    }

    pub fn order_line(&self) -> i64 {
        self.next_order_line.fetch_add(1, Ordering::Relaxed)
    }
}

/// One emulated browser's session: identified by a session cookie in the
/// real benchmark, carrying the logged-in customer and the shopping cart.
#[derive(Debug, Clone)]
pub struct Session {
    /// Logged-in customer id.
    pub c_id: i64,
    /// Customer user name (derived, kept consistent with datagen).
    pub uname: String,
    /// Current shopping cart, if one has been created.
    pub cart_id: Option<i64>,
    /// Clock of the session's last interaction (ms).
    pub now_ms: i64,
    pub ids: Arc<IdAllocator>,
}

impl Session {
    pub fn new(c_id: i64, ids: Arc<IdAllocator>) -> Session {
        Session {
            c_id,
            uname: format!("user{c_id}"),
            cart_id: None,
            now_ms: 1_000_000,
            ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_is_unique_across_clones() {
        let ids = IdAllocator::new(&Scale::tiny());
        let a = ids.cart();
        let b = ids.cart();
        assert_ne!(a, b);
        assert!(ids.order() > Scale::tiny().orders() as i64);
        assert!(ids.customer() > Scale::tiny().customers() as i64);
    }

    #[test]
    fn session_uname_matches_datagen_convention() {
        let ids = IdAllocator::new(&Scale::tiny());
        let s = Session::new(17, ids);
        assert_eq!(s.uname, "user17");
        assert!(s.cart_id.is_none());
    }
}
