//! The three TPC-W workload mixes.

use mtc_util::rng::Rng;

use crate::interactions::Interaction;

/// A workload mix: relative frequency of each interaction type.
#[derive(Debug, Clone)]
pub struct Mix {
    pub name: &'static str,
    /// (interaction, weight in percent). Weights sum to ~100.
    pub weights: Vec<(Interaction, f64)>,
}

/// The three benchmark workloads (§6.1.1): "a workload simply specifies the
/// relative frequency of the different request types".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 95% browse / 5% order.
    Browsing,
    /// 80% browse / 20% order — "the main workload of the benchmark".
    Shopping,
    /// 50% browse / 50% order.
    Ordering,
}

impl Workload {
    pub const ALL: [Workload; 3] = [Workload::Browsing, Workload::Shopping, Workload::Ordering];

    pub fn name(self) -> &'static str {
        match self {
            Workload::Browsing => "Browsing",
            Workload::Shopping => "Shopping",
            Workload::Ordering => "Ordering",
        }
    }

    /// The interaction mix (weights from the TPC-W specification).
    pub fn mix(self) -> Mix {
        use Interaction::*;
        let weights = match self {
            Workload::Browsing => vec![
                (Home, 29.00),
                (NewProducts, 11.00),
                (BestSellers, 11.00),
                (ProductDetail, 21.00),
                (SearchRequest, 12.00),
                (SearchResults, 11.00),
                (ShoppingCart, 2.00),
                (CustomerRegistration, 0.82),
                (BuyRequest, 0.75),
                (BuyConfirm, 0.69),
                (OrderInquiry, 0.30),
                (OrderDisplay, 0.25),
                (AdminRequest, 0.10),
                (AdminConfirm, 0.09),
            ],
            Workload::Shopping => vec![
                (Home, 16.00),
                (NewProducts, 5.00),
                (BestSellers, 5.00),
                (ProductDetail, 17.00),
                (SearchRequest, 20.00),
                (SearchResults, 17.00),
                (ShoppingCart, 11.60),
                (CustomerRegistration, 3.00),
                (BuyRequest, 2.60),
                (BuyConfirm, 1.20),
                (OrderInquiry, 0.75),
                (OrderDisplay, 0.66),
                (AdminRequest, 0.10),
                (AdminConfirm, 0.09),
            ],
            Workload::Ordering => vec![
                (Home, 9.12),
                (NewProducts, 0.46),
                (BestSellers, 0.46),
                (ProductDetail, 12.35),
                (SearchRequest, 14.53),
                (SearchResults, 13.08),
                (ShoppingCart, 13.53),
                (CustomerRegistration, 12.86),
                (BuyRequest, 12.73),
                (BuyConfirm, 10.18),
                (OrderInquiry, 0.25),
                (OrderDisplay, 0.22),
                (AdminRequest, 0.12),
                (AdminConfirm, 0.11),
            ],
        };
        Mix {
            name: self.name(),
            weights,
        }
    }
}

impl Mix {
    /// Samples one interaction according to the weights.
    pub fn sample(&self, rng: &mut impl Rng) -> Interaction {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for (interaction, w) in &self.weights {
            if x < *w {
                return *interaction;
            }
            x -= w;
        }
        self.weights.last().expect("nonempty mix").0
    }

    /// Fraction of interactions in the Browse activity class.
    pub fn browse_fraction(&self) -> f64 {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let browse: f64 = self
            .weights
            .iter()
            .filter(|(i, _)| i.is_browse_class())
            .map(|(_, w)| w)
            .sum();
        browse / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_util::rng::StdRng;
    use mtc_util::rng::SeedableRng;

    /// §6.1.1's table: Browsing 95/5, Shopping 80/20, Ordering 50/50.
    #[test]
    fn browse_order_split_matches_paper_table() {
        assert!((Workload::Browsing.mix().browse_fraction() - 0.95).abs() < 0.005);
        assert!((Workload::Shopping.mix().browse_fraction() - 0.80).abs() < 0.005);
        assert!((Workload::Ordering.mix().browse_fraction() - 0.50).abs() < 0.005);
    }

    #[test]
    fn sampling_tracks_weights() {
        let mix = Workload::Shopping.mix();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut home = 0usize;
        for _ in 0..n {
            if mix.sample(&mut rng) == Interaction::Home {
                home += 1;
            }
        }
        let frac = home as f64 / n as f64;
        assert!((frac - 0.16).abs() < 0.01, "Home ≈16% of Shopping: {frac}");
    }

    #[test]
    fn all_fourteen_interactions_present_in_every_mix() {
        for w in Workload::ALL {
            assert_eq!(w.mix().weights.len(), 14, "{}", w.name());
        }
    }
}
