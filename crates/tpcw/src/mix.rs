//! The three TPC-W workload mixes, plus the skewed / phase-shifting
//! workloads the adaptive-advisor experiment drives: item-key
//! distributions ([`KeyDist`]) and multi-phase schedules
//! ([`PhaseSchedule`]) that move the working set under the cache.

use mtc_util::rng::Rng;

use crate::interactions::Interaction;

/// A workload mix: relative frequency of each interaction type.
#[derive(Debug, Clone)]
pub struct Mix {
    pub name: &'static str,
    /// (interaction, weight in percent). Weights sum to ~100.
    pub weights: Vec<(Interaction, f64)>,
}

/// The three benchmark workloads (§6.1.1): "a workload simply specifies the
/// relative frequency of the different request types".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 95% browse / 5% order.
    Browsing,
    /// 80% browse / 20% order — "the main workload of the benchmark".
    Shopping,
    /// 50% browse / 50% order.
    Ordering,
}

impl Workload {
    pub const ALL: [Workload; 3] = [Workload::Browsing, Workload::Shopping, Workload::Ordering];

    pub fn name(self) -> &'static str {
        match self {
            Workload::Browsing => "Browsing",
            Workload::Shopping => "Shopping",
            Workload::Ordering => "Ordering",
        }
    }

    /// The interaction mix (weights from the TPC-W specification).
    pub fn mix(self) -> Mix {
        use Interaction::*;
        let weights = match self {
            Workload::Browsing => vec![
                (Home, 29.00),
                (NewProducts, 11.00),
                (BestSellers, 11.00),
                (ProductDetail, 21.00),
                (SearchRequest, 12.00),
                (SearchResults, 11.00),
                (ShoppingCart, 2.00),
                (CustomerRegistration, 0.82),
                (BuyRequest, 0.75),
                (BuyConfirm, 0.69),
                (OrderInquiry, 0.30),
                (OrderDisplay, 0.25),
                (AdminRequest, 0.10),
                (AdminConfirm, 0.09),
            ],
            Workload::Shopping => vec![
                (Home, 16.00),
                (NewProducts, 5.00),
                (BestSellers, 5.00),
                (ProductDetail, 17.00),
                (SearchRequest, 20.00),
                (SearchResults, 17.00),
                (ShoppingCart, 11.60),
                (CustomerRegistration, 3.00),
                (BuyRequest, 2.60),
                (BuyConfirm, 1.20),
                (OrderInquiry, 0.75),
                (OrderDisplay, 0.66),
                (AdminRequest, 0.10),
                (AdminConfirm, 0.09),
            ],
            Workload::Ordering => vec![
                (Home, 9.12),
                (NewProducts, 0.46),
                (BestSellers, 0.46),
                (ProductDetail, 12.35),
                (SearchRequest, 14.53),
                (SearchResults, 13.08),
                (ShoppingCart, 13.53),
                (CustomerRegistration, 12.86),
                (BuyRequest, 12.73),
                (BuyConfirm, 10.18),
                (OrderInquiry, 0.25),
                (OrderDisplay, 0.22),
                (AdminRequest, 0.12),
                (AdminConfirm, 0.11),
            ],
        };
        Mix {
            name: self.name(),
            weights,
        }
    }
}

impl Mix {
    /// Samples one interaction according to the weights.
    pub fn sample(&self, rng: &mut impl Rng) -> Interaction {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for (interaction, w) in &self.weights {
            if x < *w {
                return *interaction;
            }
            x -= w;
        }
        self.weights.last().expect("nonempty mix").0
    }

    /// Fraction of interactions in the Browse activity class.
    pub fn browse_fraction(&self) -> f64 {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let browse: f64 = self
            .weights
            .iter()
            .filter(|(i, _)| i.is_browse_class())
            .map(|(_, w)| w)
            .sum();
        browse / total
    }
}

/// How interactions draw their random item key from `1..=items`.
///
/// TPC-W proper draws uniformly; real storefront traffic is skewed. The
/// advisor experiments use these to concentrate (and then *move*) the hot
/// set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// The benchmark default: every item equally likely.
    Uniform,
    /// Zipf-like skew via a log-uniform draw (`k = n^u`, `u ~ U[0,1)`):
    /// density ∝ 1/k, so low keys are drawn orders of magnitude more often
    /// than high ones. `offset` rotates the hot end to a different region
    /// of the keyspace (fraction of `n`, wrapping) — shifting `offset`
    /// between phases moves the working set without changing its shape.
    Zipf { offset: f64 },
    /// Flash crowd: with probability `p_hot` draw uniformly from the small
    /// hot set (`hot_frac` of the keyspace, starting at `offset`),
    /// otherwise uniformly from everything.
    Hot {
        hot_frac: f64,
        p_hot: f64,
        offset: f64,
    },
}

impl KeyDist {
    /// Draws one item key in `1..=n`.
    pub fn sample(&self, n: i64, rng: &mut impl Rng) -> i64 {
        let n = n.max(1);
        match *self {
            KeyDist::Uniform => rng.gen_range(1..=n),
            KeyDist::Zipf { offset } => {
                let u = rng.gen_range(0.0..1.0);
                let k = (n as f64).powf(u) as i64; // 1..=n, mass at the low end
                let shift = (offset * n as f64) as i64;
                (k - 1 + shift).rem_euclid(n) + 1
            }
            KeyDist::Hot {
                hot_frac,
                p_hot,
                offset,
            } => {
                let hot = ((hot_frac * n as f64) as i64).clamp(1, n);
                let start = (offset * n as f64) as i64;
                if rng.gen_range(0.0..1.0) < p_hot {
                    let k = rng.gen_range(0..hot);
                    (start + k).rem_euclid(n) + 1
                } else {
                    rng.gen_range(1..=n)
                }
            }
        }
    }
}

impl Mix {
    /// Account-heavy mix: the working set shifts from the item catalog to
    /// customer/account reads (login, order inquiry, buy pages) — traffic
    /// the static TPC-W cache configuration does not cover, so a frozen
    /// cache pays a backend round trip per page until an advisor reacts.
    /// Best-seller listings stay in the mix as the shared join fragment.
    pub fn account_heavy() -> Mix {
        use Interaction::*;
        Mix {
            name: "AccountHeavy",
            weights: vec![
                (OrderInquiry, 36.00),
                (CustomerRegistration, 22.00),
                (BuyRequest, 18.00),
                (Home, 12.00),
                (BestSellers, 8.00),
                (ProductDetail, 4.00),
            ],
        }
    }
}

/// One phase of a shifting workload: a mix, an item-key distribution and a
/// duration in interactions.
#[derive(Debug, Clone)]
pub struct Phase {
    pub name: &'static str,
    pub mix: Mix,
    pub keys: KeyDist,
    pub interactions: usize,
}

/// A workload as a sequence of phases; interaction index `i` belongs to the
/// phase whose cumulative span contains it (clamping to the last phase).
#[derive(Debug, Clone)]
pub struct PhaseSchedule {
    pub phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// Total scheduled interactions.
    pub fn total(&self) -> usize {
        self.phases.iter().map(|p| p.interactions).sum()
    }

    /// The phase interaction `i` falls in, and `i`'s offset within it.
    pub fn phase_at(&self, i: usize) -> (usize, &Phase) {
        let mut at = i;
        for (idx, p) in self.phases.iter().enumerate() {
            if at < p.interactions || idx == self.phases.len() - 1 {
                return (idx, p);
            }
            at -= p.interactions;
        }
        unreachable!("schedule has at least one phase")
    }

    /// The advisor experiment's shifting working set: a Zipf-skewed
    /// item-browsing phase (fully covered by the static TPC-W cache
    /// configuration), then an abrupt shift to account-heavy traffic the
    /// static configuration never caches. The shifted phase draws keys
    /// uniformly across the customer base: per-statement result caching
    /// cannot absorb the spread (every key is cold again after the next
    /// account write invalidates the table), but a table-level cached view
    /// — exactly what the advisor deploys — covers all of it.
    pub fn shifting_working_set(per_phase: usize) -> PhaseSchedule {
        PhaseSchedule {
            phases: vec![
                Phase {
                    name: "browse-items",
                    mix: Workload::Browsing.mix(),
                    keys: KeyDist::Zipf { offset: 0.0 },
                    interactions: per_phase,
                },
                Phase {
                    name: "account-shift",
                    mix: Mix::account_heavy(),
                    keys: KeyDist::Uniform,
                    interactions: per_phase,
                },
            ],
        }
    }

    /// A flash crowd: uniform browsing, a burst where 90% of traffic
    /// hammers 1% of the catalog, then back to uniform.
    pub fn flash_crowd(per_phase: usize) -> PhaseSchedule {
        let browse = Workload::Browsing.mix();
        PhaseSchedule {
            phases: vec![
                Phase {
                    name: "steady",
                    mix: browse.clone(),
                    keys: KeyDist::Uniform,
                    interactions: per_phase,
                },
                Phase {
                    name: "flash-crowd",
                    mix: browse.clone(),
                    keys: KeyDist::Hot {
                        hot_frac: 0.01,
                        p_hot: 0.9,
                        offset: 0.25,
                    },
                    interactions: per_phase,
                },
                Phase {
                    name: "cooldown",
                    mix: browse,
                    keys: KeyDist::Uniform,
                    interactions: per_phase,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_util::rng::StdRng;
    use mtc_util::rng::SeedableRng;

    /// §6.1.1's table: Browsing 95/5, Shopping 80/20, Ordering 50/50.
    #[test]
    fn browse_order_split_matches_paper_table() {
        assert!((Workload::Browsing.mix().browse_fraction() - 0.95).abs() < 0.005);
        assert!((Workload::Shopping.mix().browse_fraction() - 0.80).abs() < 0.005);
        assert!((Workload::Ordering.mix().browse_fraction() - 0.50).abs() < 0.005);
    }

    #[test]
    fn sampling_tracks_weights() {
        let mix = Workload::Shopping.mix();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut home = 0usize;
        for _ in 0..n {
            if mix.sample(&mut rng) == Interaction::Home {
                home += 1;
            }
        }
        let frac = home as f64 / n as f64;
        assert!((frac - 0.16).abs() < 0.01, "Home ≈16% of Shopping: {frac}");
    }

    #[test]
    fn all_fourteen_interactions_present_in_every_mix() {
        for w in Workload::ALL {
            assert_eq!(w.mix().weights.len(), 14, "{}", w.name());
        }
    }

    #[test]
    fn key_dists_stay_in_range_and_skew_where_claimed() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 1000i64;
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipf { offset: 0.0 },
            KeyDist::Zipf { offset: 0.5 },
            KeyDist::Hot {
                hot_frac: 0.01,
                p_hot: 0.9,
                offset: 0.25,
            },
        ] {
            for _ in 0..5000 {
                let k = dist.sample(n, &mut rng);
                assert!((1..=n).contains(&k), "{dist:?} drew {k}");
            }
        }
        // Zipf with offset 0: the bottom decile dominates.
        let zipf = KeyDist::Zipf { offset: 0.0 };
        let low = (0..5000)
            .filter(|_| zipf.sample(n, &mut rng) <= n / 10)
            .count();
        assert!(low > 3000, "Zipf bottom decile got {low}/5000 draws");
        // Shifting the offset moves the hot region off the bottom decile.
        let shifted = KeyDist::Zipf { offset: 0.5 };
        let low_shifted = (0..5000)
            .filter(|_| shifted.sample(n, &mut rng) <= n / 10)
            .count();
        assert!(
            low_shifted < low / 4,
            "offset must move the hot set: {low_shifted} vs {low}"
        );
        // Flash crowd: ~90% of draws land in the 1% hot window.
        let hot = KeyDist::Hot {
            hot_frac: 0.01,
            p_hot: 0.9,
            offset: 0.25,
        };
        let start = (0.25 * n as f64) as i64;
        let in_hot = (0..5000)
            .filter(|_| {
                let k = hot.sample(n, &mut rng);
                k > start && k <= start + 10
            })
            .count();
        assert!(in_hot > 4000, "flash crowd drew only {in_hot}/5000 hot keys");
    }

    #[test]
    fn phase_schedules_partition_interactions() {
        let sched = PhaseSchedule::shifting_working_set(100);
        assert_eq!(sched.total(), 200);
        assert_eq!(sched.phase_at(0).1.name, "browse-items");
        assert_eq!(sched.phase_at(99).1.name, "browse-items");
        assert_eq!(sched.phase_at(100).1.name, "account-shift");
        // Clamps to the last phase past the end.
        assert_eq!(sched.phase_at(10_000).1.name, "account-shift");
        let crowd = PhaseSchedule::flash_crowd(50);
        assert_eq!(crowd.total(), 150);
        assert_eq!(crowd.phase_at(60).0, 1);
        assert_eq!(crowd.phase_at(120).1.name, "cooldown");
        // The account-heavy mix is all Order-class plus a browse tail.
        let acct = Mix::account_heavy();
        assert!(acct.browse_fraction() < 0.30, "{}", acct.browse_fraction());
    }
}
