//! The TPC-W schema, trimmed to the columns the benchmark queries touch.

/// Book subjects, used by search and best-seller interactions.
pub const SUBJECTS: &[&str] = &[
    "ARTS",
    "BIOGRAPHIES",
    "BUSINESS",
    "CHILDREN",
    "COMPUTERS",
    "COOKING",
    "HEALTH",
    "HISTORY",
    "HOME",
    "HUMOR",
    "LITERATURE",
    "MYSTERY",
    "NON-FICTION",
    "PARENTING",
    "POLITICS",
    "REFERENCE",
    "RELIGION",
    "ROMANCE",
    "SELF-HELP",
    "SCIENCE-NATURE",
    "SCIENCE-FICTION",
    "SPORTS",
    "YOUTH",
    "TRAVEL",
];

/// Credit card types for cc_xacts.
pub const CC_TYPES: &[&str] = &["VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS"];

/// Ship types for orders.
pub const SHIP_TYPES: &[&str] = &["AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL"];

/// Order status values.
pub const STATUS_TYPES: &[&str] = &["PROCESSING", "SHIPPED", "PENDING", "DENIED"];

/// The DDL for all ten tables plus the indexes the benchmark relies on
/// ("all indexes on the cache servers were identical to indexes on the
/// backend server", §6.1.2).
pub const DDL: &str = "
CREATE TABLE country (
    co_id INT NOT NULL PRIMARY KEY,
    co_name VARCHAR,
    co_exchange FLOAT,
    co_currency VARCHAR
);

CREATE TABLE address (
    addr_id INT NOT NULL PRIMARY KEY,
    addr_street1 VARCHAR,
    addr_city VARCHAR,
    addr_state VARCHAR,
    addr_zip VARCHAR,
    addr_co_id INT
);

CREATE TABLE customer (
    c_id INT NOT NULL PRIMARY KEY,
    c_uname VARCHAR NOT NULL,
    c_passwd VARCHAR,
    c_fname VARCHAR,
    c_lname VARCHAR,
    c_addr_id INT,
    c_phone VARCHAR,
    c_email VARCHAR,
    c_since TIMESTAMP,
    c_last_login TIMESTAMP,
    c_discount FLOAT,
    c_balance FLOAT,
    c_ytd_pmt FLOAT
);

CREATE TABLE author (
    a_id INT NOT NULL PRIMARY KEY,
    a_fname VARCHAR,
    a_lname VARCHAR,
    a_bio VARCHAR
);

CREATE TABLE item (
    i_id INT NOT NULL PRIMARY KEY,
    i_title VARCHAR,
    i_a_id INT,
    i_pub_date TIMESTAMP,
    i_publisher VARCHAR,
    i_subject VARCHAR,
    i_desc VARCHAR,
    i_srp FLOAT,
    i_cost FLOAT,
    i_stock INT,
    i_isbn VARCHAR,
    i_related1 INT
);

CREATE TABLE orders (
    o_id INT NOT NULL PRIMARY KEY,
    o_c_id INT,
    o_date TIMESTAMP,
    o_sub_total FLOAT,
    o_tax FLOAT,
    o_total FLOAT,
    o_ship_type VARCHAR,
    o_ship_date TIMESTAMP,
    o_bill_addr_id INT,
    o_ship_addr_id INT,
    o_status VARCHAR
);

CREATE TABLE order_line (
    ol_id INT NOT NULL,
    ol_o_id INT NOT NULL,
    ol_i_id INT,
    ol_qty INT,
    ol_discount FLOAT,
    PRIMARY KEY (ol_o_id, ol_id)
);

CREATE TABLE cc_xacts (
    cx_o_id INT NOT NULL PRIMARY KEY,
    cx_type VARCHAR,
    cx_num VARCHAR,
    cx_name VARCHAR,
    cx_xact_amt FLOAT,
    cx_xact_date TIMESTAMP,
    cx_co_id INT
);

CREATE TABLE shopping_cart (
    sc_id INT NOT NULL PRIMARY KEY,
    sc_time TIMESTAMP,
    sc_total FLOAT
);

CREATE TABLE shopping_cart_line (
    scl_sc_id INT NOT NULL,
    scl_i_id INT NOT NULL,
    scl_qty INT,
    PRIMARY KEY (scl_sc_id, scl_i_id)
);

CREATE INDEX ix_item_subject ON item (i_subject);
CREATE INDEX ix_item_title ON item (i_title);
CREATE INDEX ix_item_author ON item (i_a_id);
CREATE INDEX ix_author_lname ON author (a_lname);
CREATE INDEX ix_customer_uname ON customer (c_uname);
CREATE INDEX ix_orders_customer ON orders (o_c_id);
CREATE INDEX ix_orderline_order ON order_line (ol_o_id);
CREATE INDEX ix_orderline_item ON order_line (ol_i_id);
CREATE INDEX ix_scl_cart ON shopping_cart_line (scl_sc_id);

GRANT SELECT ON country TO app;
GRANT SELECT ON address TO app;
GRANT SELECT ON customer TO app;
GRANT INSERT ON customer TO app;
GRANT UPDATE ON customer TO app;
GRANT SELECT ON author TO app;
GRANT SELECT ON item TO app;
GRANT UPDATE ON item TO app;
GRANT SELECT ON orders TO app;
GRANT INSERT ON orders TO app;
GRANT SELECT ON order_line TO app;
GRANT INSERT ON order_line TO app;
GRANT SELECT ON cc_xacts TO app;
GRANT INSERT ON cc_xacts TO app;
GRANT SELECT ON shopping_cart TO app;
GRANT INSERT ON shopping_cart TO app;
GRANT UPDATE ON shopping_cart TO app;
GRANT DELETE ON shopping_cart TO app;
GRANT SELECT ON shopping_cart_line TO app;
GRANT INSERT ON shopping_cart_line TO app;
GRANT UPDATE ON shopping_cart_line TO app;
GRANT DELETE ON shopping_cart_line TO app;
GRANT INSERT ON address TO app;
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddl_parses_and_applies() {
        let backend = mtcache::BackendServer::new("b");
        backend.run_script(DDL).unwrap();
        let db = backend.db.read();
        for t in [
            "country",
            "address",
            "customer",
            "author",
            "item",
            "orders",
            "order_line",
            "cc_xacts",
            "shopping_cart",
            "shopping_cart_line",
        ] {
            assert!(db.has_table(t), "missing table {t}");
        }
        assert!(db.index("ix_item_subject").is_some());
        assert!(db.index("ix_orderline_order").is_some());
    }

    #[test]
    fn twenty_four_subjects() {
        assert_eq!(SUBJECTS.len(), 24, "TPC-W defines 24 subjects");
    }
}
