//! Scaled TPC-W data generation.

use mtc_util::rng::StdRng;
use mtc_util::rng::{Rng, SeedableRng};

use mtc_storage::RowChange;
use mtc_types::{Result, Row, Value};
use mtcache::BackendServer;

use crate::schema::{CC_TYPES, DDL, SHIP_TYPES, STATUS_TYPES, SUBJECTS};

/// Scale factors. The paper ran 10 000 items × 10 000 emulated browsers
/// (28.8 M customers); the cardinality *ratios* here follow the spec but the
/// per-EB customer count is scaled down 10× (288 → 28.8 per EB) so the whole
/// database fits comfortably in memory — a DESIGN.md §3 substitution that
/// leaves every query's plan shape intact.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub items: usize,
    pub emulated_browsers: usize,
    /// RNG seed, for reproducible databases.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Scale {
        Scale {
            items: 1000,
            emulated_browsers: 100,
            seed: 42,
        }
    }
}

impl Scale {
    /// A small scale for unit tests.
    pub fn tiny() -> Scale {
        Scale {
            items: 100,
            emulated_browsers: 10,
            seed: 7,
        }
    }

    pub fn customers(&self) -> usize {
        (self.emulated_browsers * 288).max(64)
    }

    pub fn authors(&self) -> usize {
        (self.items / 4).max(8)
    }

    pub fn addresses(&self) -> usize {
        self.customers() * 2
    }

    pub fn orders(&self) -> usize {
        (self.customers() * 9) / 10
    }

    pub fn countries(&self) -> usize {
        92
    }
}

/// Creates the schema and populates a backend server. Returns the scale
/// actually used. Statistics are analyzed afterwards so the optimizer (and
/// any shadow clones) see the real distribution.
pub fn generate(backend: &BackendServer, scale: Scale) -> Result<Scale> {
    backend.run_script(DDL)?;
    let mut rng = StdRng::seed_from_u64(scale.seed);

    let mut db = backend.db.write();
    let now_ms: i64 = 1_000_000;

    // Directly building row-change batches is ~100× faster than going
    // through SQL INSERT statements, and identical in effect: the load is
    // one logged transaction per table (replication setup happens later).
    let mut batch: Vec<RowChange> = Vec::new();

    for co_id in 1..=scale.countries() as i64 {
        batch.push(ins(
            "country",
            vec![
                Value::Int(co_id),
                Value::str(format!("country{co_id}")),
                Value::Float(1.0 + (co_id % 7) as f64 / 10.0),
                Value::str("CUR"),
            ],
        ));
    }

    for addr_id in 1..=scale.addresses() as i64 {
        batch.push(ins(
            "address",
            vec![
                Value::Int(addr_id),
                Value::str(format!("{addr_id} main st")),
                Value::str(format!("city{}", addr_id % 500)),
                Value::str(format!("st{}", addr_id % 50)),
                Value::str(format!("{:05}", addr_id % 100_000)),
                Value::Int(addr_id % scale.countries() as i64 + 1),
            ],
        ));
    }

    for c_id in 1..=scale.customers() as i64 {
        batch.push(ins(
            "customer",
            vec![
                Value::Int(c_id),
                Value::str(format!("user{c_id}")),
                Value::str("pw"),
                Value::str(format!("first{}", c_id % 1000)),
                Value::str(format!("last{}", c_id % 1000)),
                Value::Int(c_id % scale.addresses() as i64 + 1),
                Value::str("555-0100"),
                Value::str(format!("user{c_id}@example.com")),
                Value::Timestamp(now_ms - rng.gen_range(0..1_000_000i64)),
                Value::Timestamp(now_ms - rng.gen_range(0..100_000i64)),
                Value::Float(rng.gen_range(0.0..0.5)),
                Value::Float(0.0),
                Value::Float(rng.gen_range(0.0..1000.0)),
            ],
        ));
    }

    for a_id in 1..=scale.authors() as i64 {
        batch.push(ins(
            "author",
            vec![
                Value::Int(a_id),
                Value::str(format!("afirst{a_id}")),
                Value::str(format!("alast{}", a_id % 100)),
                Value::str("bio"),
            ],
        ));
    }

    for i_id in 1..=scale.items as i64 {
        let srp: f64 = rng.gen_range(1.0..100.0);
        batch.push(ins(
            "item",
            vec![
                Value::Int(i_id),
                Value::str(format!("title {} vol {}", word(i_id), i_id)),
                Value::Int(rng.gen_range(1..=scale.authors() as i64)),
                Value::Timestamp(now_ms - rng.gen_range(0..2_000_000i64)),
                Value::str(format!("publisher{}", i_id % 20)),
                Value::str(SUBJECTS[(i_id as usize) % SUBJECTS.len()]),
                Value::str("description"),
                Value::Float(srp),
                Value::Float(srp * rng.gen_range(0.5..0.9)),
                Value::Int(rng.gen_range(10..100)),
                Value::str(format!("isbn{i_id:09}")),
                Value::Int((i_id % scale.items as i64) + 1),
            ],
        ));
    }

    let mut ol_counter: i64 = 0;
    for o_id in 1..=scale.orders() as i64 {
        let c_id = rng.gen_range(1..=scale.customers() as i64);
        let sub: f64 = rng.gen_range(10.0..300.0);
        batch.push(ins(
            "orders",
            vec![
                Value::Int(o_id),
                Value::Int(c_id),
                Value::Timestamp(now_ms - rng.gen_range(0..1_000_000i64)),
                Value::Float(sub),
                Value::Float(sub * 0.08),
                Value::Float(sub * 1.08),
                Value::str(SHIP_TYPES[rng.gen_range(0..SHIP_TYPES.len())]),
                Value::Timestamp(now_ms - rng.gen_range(0..500_000i64)),
                Value::Int(c_id % scale.addresses() as i64 + 1),
                Value::Int(c_id % scale.addresses() as i64 + 1),
                Value::str(STATUS_TYPES[rng.gen_range(0..STATUS_TYPES.len())]),
            ],
        ));
        let lines = rng.gen_range(1..=5);
        for l in 1..=lines {
            ol_counter += 1;
            batch.push(ins(
                "order_line",
                vec![
                    Value::Int(l),
                    Value::Int(o_id),
                    Value::Int(rng.gen_range(1..=scale.items as i64)),
                    Value::Int(rng.gen_range(1..=10)),
                    Value::Float(rng.gen_range(0.0..0.3)),
                ],
            ));
        }
        batch.push(ins(
            "cc_xacts",
            vec![
                Value::Int(o_id),
                Value::str(CC_TYPES[rng.gen_range(0..CC_TYPES.len())]),
                Value::str("4111111111111111"),
                Value::str("card holder"),
                Value::Float(sub * 1.08),
                Value::Timestamp(now_ms - rng.gen_range(0..500_000i64)),
                Value::Int(rng.gen_range(1..=scale.countries() as i64)),
            ],
        ));
    }
    let _ = ol_counter;

    db.apply(now_ms, batch)?;
    drop(db);
    backend.analyze();
    Ok(scale)
}

fn ins(table: &str, values: Vec<Value>) -> RowChange {
    RowChange::Insert {
        table: table.to_string(),
        row: Row::new(values),
    }
}

/// Deterministic pseudo-words so title searches have matchable substrings.
fn word(i: i64) -> &'static str {
    const WORDS: &[&str] = &[
        "rust", "ocean", "garden", "midnight", "copper", "silent", "ember", "granite", "willow",
        "harbor", "meadow", "lantern", "falcon", "crimson", "hollow", "aurora",
    ];
    WORDS[(i as usize) % WORDS.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_engine::eval::Bindings;

    #[test]
    fn generates_consistent_cardinalities() {
        let backend = BackendServer::new("b");
        let scale = generate(&backend, Scale::tiny()).unwrap();
        let db = backend.db.read();
        assert_eq!(
            db.table_ref("item").unwrap().row_count(),
            scale.items
        );
        assert_eq!(
            db.table_ref("customer").unwrap().row_count(),
            scale.customers()
        );
        assert_eq!(db.table_ref("orders").unwrap().row_count(), scale.orders());
        assert_eq!(
            db.table_ref("cc_xacts").unwrap().row_count(),
            scale.orders()
        );
        let ol = db.table_ref("order_line").unwrap().row_count();
        assert!(ol >= scale.orders(), "at least one line per order");
        // Statistics analyzed.
        assert_eq!(
            db.catalog.stats("item").unwrap().row_count as usize,
            scale.items
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let b1 = BackendServer::new("b1");
        let b2 = BackendServer::new("b2");
        generate(&b1, Scale::tiny()).unwrap();
        generate(&b2, Scale::tiny()).unwrap();
        let q = "SELECT i_title FROM item WHERE i_id = 37";
        let r1 = b1.execute(q, &Bindings::new(), "dbo").unwrap();
        let r2 = b2.execute(q, &Bindings::new(), "dbo").unwrap();
        assert_eq!(r1.rows, r2.rows);
    }

    #[test]
    fn queries_run_against_generated_data() {
        let backend = BackendServer::new("b");
        generate(&backend, Scale::tiny()).unwrap();
        let r = backend
            .execute(
                "SELECT TOP 5 i_id, i_title FROM item WHERE i_subject = 'ARTS' ORDER BY i_title ASC",
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert!(!r.rows.is_empty());
    }
}
