//! The paper's caching configuration (§6.1.2):
//!
//! "The data cached consisted of projections of four tables: item, author,
//! orders, and orderline. … This design allowed us to run all search
//! queries locally (title search, search by category, author search,
//! bestseller search) and also a frequent lookup query on items. … All
//! indexes on the cache servers were identical to indexes on the backend
//! server. Of the 29 stored procedures used by the benchmark, we chose to
//! copy 24 to the cache servers. The five that were not copied were update
//! dominated."

use mtc_types::Result;
use mtcache::CacheServer;

/// Cached views: projections of item, author, orders and order_line —
/// including every column the search/best-seller/detail queries touch.
pub const CACHED_VIEWS: &[(&str, &str)] = &[
    (
        "cv_item",
        "SELECT i_id, i_title, i_a_id, i_pub_date, i_publisher, i_subject, i_desc, i_srp, i_cost, i_stock, i_related1 FROM item",
    ),
    (
        "cv_author",
        "SELECT a_id, a_fname, a_lname FROM author",
    ),
    (
        "cv_orders",
        "SELECT o_id, o_c_id, o_date, o_sub_total, o_tax, o_total, o_ship_type, o_status FROM orders",
    ),
    (
        "cv_order_line",
        "SELECT ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount FROM order_line",
    ),
];

/// Indexes on the cached views, mirroring the backend's (§6.1.2).
pub const CACHED_VIEW_INDEXES: &[(&str, &str, &[&str])] = &[
    ("cx_item_subject", "cv_item", &["i_subject"]),
    ("cx_item_title", "cv_item", &["i_title"]),
    ("cx_item_author", "cv_item", &["i_a_id"]),
    ("cx_author_lname", "cv_author", &["a_lname"]),
    ("cx_orders_customer", "cv_orders", &["o_c_id"]),
    ("cx_orderline_order", "cv_order_line", &["ol_o_id"]),
    ("cx_orderline_item", "cv_order_line", &["ol_i_id"]),
];

/// The update-dominated procedures NOT copied to cache servers (the paper's
/// "five that were not copied"; we have six clear write-only procedures and
/// keep the spirit by excluding the order/stock writers).
pub const UNCACHED_PROCS: &[&str] = &[
    "enterOrder",
    "addOrderLine",
    "enterCCXact",
    "updateItemStock",
    "addCustomer",
    "addAddress",
    "adminUpdate",
];

/// Procedures copied to every cache server.
pub const CACHED_PROCS: &[&str] = &[
    "getName",
    "getBook",
    "getCustomer",
    "doSubjectSearch",
    "doTitleSearch",
    "doAuthorSearch",
    "getNewProducts",
    "getBestSellers",
    "getMaxOrderId",
    "getRelated",
    "getStock",
    "getUserName",
    "getPassword",
    "getMostRecentOrderId",
    "getMostRecentOrderDetails",
    "getMostRecentOrderLines",
    "createEmptyCart",
    "addLine",
    "updateLine",
    "clearCart",
    "getCart",
    "refreshCart",
    "updateCustomerLogin",
    "getAdminProduct",
];

/// Applies the full §6.1.2 cache configuration to a cache server: cached
/// views, their indexes, and the copied stored procedures.
pub fn configure_cache(cache: &CacheServer) -> Result<()> {
    for (name, definition) in CACHED_VIEWS {
        cache.create_cached_view(name, definition)?;
    }
    for (index, view, columns) in CACHED_VIEW_INDEXES {
        let cols: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        cache.create_index_on_view(index, view, &cols)?;
    }
    for proc in CACHED_PROCS {
        cache.copy_procedure(proc)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procs::PROCEDURES;

    #[test]
    fn cached_plus_uncached_covers_all_procedures() {
        assert_eq!(
            CACHED_PROCS.len() + UNCACHED_PROCS.len(),
            PROCEDURES.len(),
            "every procedure must be classified"
        );
        for (name, _, _) in PROCEDURES {
            let cached = CACHED_PROCS.contains(name);
            let uncached = UNCACHED_PROCS.contains(name);
            assert!(cached ^ uncached, "{name} must be in exactly one list");
        }
        // 24 copied, as in the paper.
        assert_eq!(CACHED_PROCS.len(), 24);
    }

    #[test]
    fn cached_views_cover_the_four_tables() {
        let sources: Vec<&str> = CACHED_VIEWS
            .iter()
            .map(|(_, sql)| {
                let from = sql.split(" FROM ").nth(1).unwrap();
                from.split_whitespace().next().unwrap()
            })
            .collect();
        assert_eq!(sources, vec!["item", "author", "orders", "order_line"]);
    }
}
