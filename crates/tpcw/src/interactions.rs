//! The fourteen TPC-W web interactions.
//!
//! Each interaction issues the same stored-procedure calls the kit's ISAPI
//! pages issue, against whatever server the connection points at — the
//! backend directly (baseline) or a cache server (MTCache configuration).

use mtc_util::rng::Rng;

use mtc_engine::ExecMetrics;
use mtc_types::{Result, Value};
use mtcache::Connection;

use crate::datagen::Scale;
use crate::mix::KeyDist;
use crate::schema::SUBJECTS;
use crate::session::Session;

/// The fourteen interaction types of the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interaction {
    Home,
    NewProducts,
    BestSellers,
    ProductDetail,
    SearchRequest,
    SearchResults,
    ShoppingCart,
    CustomerRegistration,
    BuyRequest,
    BuyConfirm,
    OrderInquiry,
    OrderDisplay,
    AdminRequest,
    AdminConfirm,
}

impl Interaction {
    pub const ALL: [Interaction; 14] = [
        Interaction::Home,
        Interaction::NewProducts,
        Interaction::BestSellers,
        Interaction::ProductDetail,
        Interaction::SearchRequest,
        Interaction::SearchResults,
        Interaction::ShoppingCart,
        Interaction::CustomerRegistration,
        Interaction::BuyRequest,
        Interaction::BuyConfirm,
        Interaction::OrderInquiry,
        Interaction::OrderDisplay,
        Interaction::AdminRequest,
        Interaction::AdminConfirm,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Interaction::Home => "Home",
            Interaction::NewProducts => "NewProducts",
            Interaction::BestSellers => "BestSellers",
            Interaction::ProductDetail => "ProductDetail",
            Interaction::SearchRequest => "SearchRequest",
            Interaction::SearchResults => "SearchResults",
            Interaction::ShoppingCart => "ShoppingCart",
            Interaction::CustomerRegistration => "CustomerRegistration",
            Interaction::BuyRequest => "BuyRequest",
            Interaction::BuyConfirm => "BuyConfirm",
            Interaction::OrderInquiry => "OrderInquiry",
            Interaction::OrderDisplay => "OrderDisplay",
            Interaction::AdminRequest => "AdminRequest",
            Interaction::AdminConfirm => "AdminConfirm",
        }
    }

    /// The Browse activity class (§6.1.1): home, searches, item detail and
    /// new-products/best-seller listings. Everything else is Order class.
    pub fn is_browse_class(self) -> bool {
        matches!(
            self,
            Interaction::Home
                | Interaction::NewProducts
                | Interaction::BestSellers
                | Interaction::ProductDetail
                | Interaction::SearchRequest
                | Interaction::SearchResults
        )
    }
}

/// Result of one interaction: database work aggregated over its calls.
#[derive(Debug, Clone, Default)]
pub struct InteractionOutcome {
    pub metrics: ExecMetrics,
    /// Stored-procedure / statement round trips to the database tier.
    pub db_calls: u32,
    /// Rows returned to the page renderer.
    pub rows: u64,
}

impl InteractionOutcome {
    fn absorb(&mut self, r: &mtcache::QueryResult) {
        self.metrics.absorb(&r.metrics);
        self.db_calls += 1;
        self.rows += r.rows.len() as u64;
    }
}

/// Runs one interaction for `session` against `conn`, drawing item keys
/// uniformly (the TPC-W default).
pub fn run_interaction(
    interaction: Interaction,
    conn: &Connection,
    session: &mut Session,
    scale: &Scale,
    rng: &mut impl Rng,
) -> Result<InteractionOutcome> {
    run_interaction_with_keys(interaction, conn, session, scale, rng, &KeyDist::Uniform)
}

/// Runs one interaction with an explicit item-key distribution — the
/// skewed / phase-shifting workloads route every item draw through `keys`.
pub fn run_interaction_with_keys(
    interaction: Interaction,
    conn: &Connection,
    session: &mut Session,
    scale: &Scale,
    rng: &mut impl Rng,
    keys: &KeyDist,
) -> Result<InteractionOutcome> {
    let mut out = InteractionOutcome::default();
    session.now_ms += 1;
    let now = session.now_ms;
    let rand_item = keys.sample(scale.items as i64, rng);
    let subject = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];

    match interaction {
        Interaction::Home => {
            out.absorb(&conn.query_with(
                "EXEC getName @c_id = @p",
                &Connection::params(&[("p", Value::Int(session.c_id))]),
            )?);
            out.absorb(&conn.query_with(
                "EXEC getRelated @i_id = @p",
                &Connection::params(&[("p", Value::Int(rand_item))]),
            )?);
        }
        Interaction::NewProducts => {
            out.absorb(&conn.query_with(
                "EXEC getNewProducts @subject = @s",
                &Connection::params(&[("s", Value::str(subject))]),
            )?);
        }
        Interaction::BestSellers => {
            let max = conn.query("EXEC getMaxOrderId")?;
            let max_o = max.rows[0][0].as_i64().unwrap_or(0);
            out.absorb(&max);
            out.absorb(&conn.query_with(
                "EXEC getBestSellers @subject = @s, @o_threshold = @t",
                &Connection::params(&[
                    ("s", Value::str(subject)),
                    ("t", Value::Int((max_o - 3333).max(0))),
                ]),
            )?);
        }
        Interaction::ProductDetail => {
            out.absorb(&conn.query_with(
                "EXEC getBook @i_id = @p",
                &Connection::params(&[("p", Value::Int(rand_item))]),
            )?);
        }
        Interaction::SearchRequest => {
            // Rendering the search page shows promotional items.
            out.absorb(&conn.query_with(
                "EXEC getRelated @i_id = @p",
                &Connection::params(&[("p", Value::Int(rand_item))]),
            )?);
        }
        Interaction::SearchResults => match rng.gen_range(0..3) {
            0 => out.absorb(&conn.query_with(
                "EXEC doSubjectSearch @subject = @s",
                &Connection::params(&[("s", Value::str(subject))]),
            )?),
            1 => out.absorb(&conn.query_with(
                "EXEC doTitleSearch @title = @t",
                &Connection::params(&[("t", Value::str(format!("%{}%", title_word(rng))))]),
            )?),
            _ => out.absorb(&conn.query_with(
                "EXEC doAuthorSearch @lname = @l",
                &Connection::params(&[(
                    "l",
                    Value::str(format!("alast{}%", rng.gen_range(0..100))),
                )]),
            )?),
        },
        Interaction::ShoppingCart => {
            let sc_id = match session.cart_id {
                Some(id) => id,
                None => {
                    let id = session.ids.cart();
                    out.absorb(&conn.query_with(
                        "EXEC createEmptyCart @sc_id = @id, @now = @now",
                        &Connection::params(&[
                            ("id", Value::Int(id)),
                            ("now", Value::Timestamp(now)),
                        ]),
                    )?);
                    session.cart_id = Some(id);
                    id
                }
            };
            // Add a random item (update quantity if it's already there).
            let cart = conn.query_with(
                "EXEC getCart @sc_id = @id",
                &Connection::params(&[("id", Value::Int(sc_id))]),
            )?;
            let already = cart
                .rows
                .iter()
                .any(|r| r[0] == Value::Int(rand_item));
            out.absorb(&cart);
            if already {
                out.absorb(&conn.query_with(
                    "EXEC updateLine @sc_id = @id, @i_id = @i, @qty = @q",
                    &Connection::params(&[
                        ("id", Value::Int(sc_id)),
                        ("i", Value::Int(rand_item)),
                        ("q", Value::Int(rng.gen_range(1..5))),
                    ]),
                )?);
            } else {
                out.absorb(&conn.query_with(
                    "EXEC addLine @sc_id = @id, @i_id = @i, @qty = @q",
                    &Connection::params(&[
                        ("id", Value::Int(sc_id)),
                        ("i", Value::Int(rand_item)),
                        ("q", Value::Int(rng.gen_range(1..5))),
                    ]),
                )?);
            }
            out.absorb(&conn.query_with(
                "EXEC refreshCart @sc_id = @id, @now = @now, @total = @t",
                &Connection::params(&[
                    ("id", Value::Int(sc_id)),
                    ("now", Value::Timestamp(now)),
                    ("t", Value::Float(rng.gen_range(1.0..500.0))),
                ]),
            )?);
        }
        Interaction::CustomerRegistration => {
            if rng.gen_bool(0.2) {
                // New customer: address + customer inserts.
                let c_id = session.ids.customer();
                let addr_id = session.ids.address();
                out.absorb(&conn.query_with(
                    "EXEC addAddress @addr_id = @a, @street = 'new st', @city = 'newcity', @co_id = 1",
                    &Connection::params(&[("a", Value::Int(addr_id))]),
                )?);
                out.absorb(&conn.query_with(
                    "EXEC addCustomer @c_id = @c, @uname = @u, @fname = 'f', @lname = 'l', @addr_id = @a, @now = @now",
                    &Connection::params(&[
                        ("c", Value::Int(c_id)),
                        ("u", Value::str(format!("user{c_id}"))),
                        ("a", Value::Int(addr_id)),
                        ("now", Value::Timestamp(now)),
                    ]),
                )?);
                session.c_id = c_id;
                session.uname = format!("user{c_id}");
            } else {
                // Returning customer logs in.
                out.absorb(&conn.query_with(
                    "EXEC getCustomer @uname = @u",
                    &Connection::params(&[("u", Value::str(session.uname.clone()))]),
                )?);
                out.absorb(&conn.query_with(
                    "EXEC updateCustomerLogin @c_id = @c, @now = @now",
                    &Connection::params(&[
                        ("c", Value::Int(session.c_id)),
                        ("now", Value::Timestamp(now)),
                    ]),
                )?);
            }
        }
        Interaction::BuyRequest => {
            out.absorb(&conn.query_with(
                "EXEC getCustomer @uname = @u",
                &Connection::params(&[("u", Value::str(session.uname.clone()))]),
            )?);
            if let Some(sc_id) = session.cart_id {
                out.absorb(&conn.query_with(
                    "EXEC getCart @sc_id = @id",
                    &Connection::params(&[("id", Value::Int(sc_id))]),
                )?);
            }
        }
        Interaction::BuyConfirm => {
            let Some(sc_id) = session.cart_id else {
                // Nothing in the cart: degenerate page view.
                out.absorb(&conn.query_with(
                    "EXEC getCustomer @uname = @u",
                    &Connection::params(&[("u", Value::str(session.uname.clone()))]),
                )?);
                return Ok(out);
            };
            let cart = conn.query_with(
                "EXEC getCart @sc_id = @id",
                &Connection::params(&[("id", Value::Int(sc_id))]),
            )?;
            out.absorb(&cart);
            let o_id = session.ids.order();
            let total: f64 = cart
                .rows
                .iter()
                .map(|r| {
                    r[1].as_f64().unwrap_or(1.0) * r[3].as_f64().unwrap_or(0.0)
                })
                .sum::<f64>()
                .max(1.0);
            out.absorb(&conn.query_with(
                "EXEC enterOrder @o_id = @o, @c_id = @c, @now = @now, @sub_total = @t, @addr_id = 1",
                &Connection::params(&[
                    ("o", Value::Int(o_id)),
                    ("c", Value::Int(session.c_id)),
                    ("now", Value::Timestamp(now)),
                    ("t", Value::Float(total)),
                ]),
            )?);
            for line in &cart.rows {
                let i_id = line[0].clone();
                let qty = line[1].clone();
                out.absorb(&conn.query_with(
                    "EXEC addOrderLine @ol_id = @ol, @o_id = @o, @i_id = @i, @qty = @q",
                    &Connection::params(&[
                        ("ol", Value::Int(session.ids.order_line())),
                        ("o", Value::Int(o_id)),
                        ("i", i_id.clone()),
                        ("q", qty.clone()),
                    ]),
                )?);
                out.absorb(&conn.query_with(
                    "EXEC updateItemStock @i_id = @i, @qty = @q",
                    &Connection::params(&[("i", i_id), ("q", qty)]),
                )?);
            }
            out.absorb(&conn.query_with(
                "EXEC enterCCXact @o_id = @o, @cc_type = 'VISA', @amount = @t, @now = @now, @co_id = 1",
                &Connection::params(&[
                    ("o", Value::Int(o_id)),
                    ("t", Value::Float(total * 1.08)),
                    ("now", Value::Timestamp(now)),
                ]),
            )?);
            out.absorb(&conn.query_with(
                "EXEC clearCart @sc_id = @id",
                &Connection::params(&[("id", Value::Int(sc_id))]),
            )?);
            session.cart_id = None;
        }
        Interaction::OrderInquiry => {
            out.absorb(&conn.query_with(
                "EXEC getPassword @uname = @u",
                &Connection::params(&[("u", Value::str(session.uname.clone()))]),
            )?);
        }
        Interaction::OrderDisplay => {
            let id = conn.query_with(
                "EXEC getMostRecentOrderId @uname = @u",
                &Connection::params(&[("u", Value::str(session.uname.clone()))]),
            )?;
            out.absorb(&id);
            if let Some(row) = id.rows.first() {
                let o_id = row[0].clone();
                out.absorb(&conn.query_with(
                    "EXEC getMostRecentOrderDetails @o_id = @o",
                    &Connection::params(&[("o", o_id.clone())]),
                )?);
                out.absorb(&conn.query_with(
                    "EXEC getMostRecentOrderLines @o_id = @o",
                    &Connection::params(&[("o", o_id)]),
                )?);
            }
        }
        Interaction::AdminRequest => {
            out.absorb(&conn.query_with(
                "EXEC getAdminProduct @i_id = @p",
                &Connection::params(&[("p", Value::Int(rand_item))]),
            )?);
        }
        Interaction::AdminConfirm => {
            out.absorb(&conn.query_with(
                "EXEC getAdminProduct @i_id = @p",
                &Connection::params(&[("p", Value::Int(rand_item))]),
            )?);
            out.absorb(&conn.query_with(
                "EXEC adminUpdate @i_id = @p, @cost = @c, @now = @now",
                &Connection::params(&[
                    ("p", Value::Int(rand_item)),
                    ("c", Value::Float(rng.gen_range(1.0..100.0))),
                    ("now", Value::Timestamp(now)),
                ]),
            )?);
        }
    }
    Ok(out)
}

fn title_word(rng: &mut impl Rng) -> &'static str {
    const WORDS: &[&str] = &[
        "rust", "ocean", "garden", "midnight", "copper", "silent", "ember", "granite",
    ];
    WORDS[rng.gen_range(0..WORDS.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, Scale};
    use crate::procs::register_all;
    use crate::session::IdAllocator;
    use mtcache::BackendServer;
    use mtc_util::rng::StdRng;
    use mtc_util::rng::SeedableRng;

    #[test]
    fn every_interaction_runs_against_backend() {
        let backend = BackendServer::new("b");
        let scale = generate(&backend, Scale::tiny()).unwrap();
        register_all(&backend).unwrap();
        let conn = Connection::connect_as(backend.clone(), "app");
        let ids = IdAllocator::new(&scale);
        let mut session = Session::new(3, ids);
        let mut rng = StdRng::seed_from_u64(99);
        for interaction in Interaction::ALL {
            // Drive cart-dependent flows meaningfully: seed a cart first.
            let out = run_interaction(interaction, &conn, &mut session, &scale, &mut rng)
                .unwrap_or_else(|e| panic!("{} failed: {e}", interaction.name()));
            assert!(out.db_calls >= 1, "{} made no DB calls", interaction.name());
        }
    }

    #[test]
    fn buy_confirm_converts_cart_to_order() {
        let backend = BackendServer::new("b");
        let scale = generate(&backend, Scale::tiny()).unwrap();
        register_all(&backend).unwrap();
        let conn = Connection::connect_as(backend.clone(), "app");
        let ids = IdAllocator::new(&scale);
        let mut session = Session::new(5, ids);
        let mut rng = StdRng::seed_from_u64(1);
        // Fill the cart, then buy.
        run_interaction(Interaction::ShoppingCart, &conn, &mut session, &scale, &mut rng)
            .unwrap();
        assert!(session.cart_id.is_some());
        let orders_before = backend.db.read().table_ref("orders").unwrap().row_count();
        run_interaction(Interaction::BuyConfirm, &conn, &mut session, &scale, &mut rng)
            .unwrap();
        assert!(session.cart_id.is_none(), "cart consumed");
        let orders_after = backend.db.read().table_ref("orders").unwrap().row_count();
        assert_eq!(orders_after, orders_before + 1);
    }

    #[test]
    fn browse_class_matches_paper_definition() {
        let browse: Vec<_> = Interaction::ALL
            .iter()
            .filter(|i| i.is_browse_class())
            .collect();
        assert_eq!(browse.len(), 6);
        assert!(Interaction::BestSellers.is_browse_class());
        assert!(!Interaction::ShoppingCart.is_browse_class());
        assert!(!Interaction::AdminConfirm.is_browse_class());
    }
}
