//! The stored procedures behind the fourteen web interactions.
//!
//! The paper's TPC-W kit implements every database request as a SQL Server
//! stored procedure (29 in total, of which 24 were copied to the cache
//! servers). This module registers our equivalents on a backend server.

use mtc_types::Result;
use mtcache::BackendServer;

/// (name, params, body) for every procedure.
pub const PROCEDURES: &[(&str, &[&str], &str)] = &[
    // -- browse-side reads ------------------------------------------------
    (
        "getName",
        &["c_id"],
        "SELECT c_fname, c_lname FROM customer WHERE c_id = @c_id",
    ),
    (
        "getBook",
        &["i_id"],
        "SELECT i_id, i_title, i_pub_date, i_publisher, i_subject, i_desc, i_srp, i_cost, a_fname, a_lname \
         FROM item, author WHERE i_id = @i_id AND i_a_id = a_id",
    ),
    (
        "getCustomer",
        &["uname"],
        "SELECT c_id, c_uname, c_passwd, c_fname, c_lname, c_discount, c_balance \
         FROM customer WHERE c_uname = @uname",
    ),
    (
        "doSubjectSearch",
        &["subject"],
        "SELECT TOP 50 i_id, i_title, a_fname, a_lname, i_cost \
         FROM item, author WHERE i_subject = @subject AND i_a_id = a_id ORDER BY i_title ASC",
    ),
    (
        "doTitleSearch",
        &["title"],
        "SELECT TOP 50 i_id, i_title, a_fname, a_lname, i_cost \
         FROM item, author WHERE i_title LIKE @title AND i_a_id = a_id ORDER BY i_title ASC",
    ),
    (
        "doAuthorSearch",
        &["lname"],
        "SELECT TOP 50 i_id, i_title, a_fname, a_lname, i_cost \
         FROM item, author WHERE a_lname LIKE @lname AND i_a_id = a_id ORDER BY i_title ASC",
    ),
    (
        "getNewProducts",
        &["subject"],
        "SELECT TOP 50 i_id, i_title, a_fname, a_lname, i_pub_date \
         FROM item, author WHERE i_subject = @subject AND i_a_id = a_id \
         ORDER BY i_pub_date DESC, i_title ASC",
    ),
    (
        // The paper's signature expensive query: among the most recent
        // orders, the most popular items of a subject, by quantity sold.
        // The caller computes @o_threshold = MAX(o_id) − 3333.
        "getBestSellers",
        &["subject", "o_threshold"],
        "SELECT TOP 50 i_id, i_title, a_fname, a_lname, SUM(ol_qty) AS qty_sold \
         FROM order_line, item, author \
         WHERE ol_o_id > @o_threshold AND ol_i_id = i_id AND i_subject = @subject AND i_a_id = a_id \
         GROUP BY i_id, i_title, a_fname, a_lname ORDER BY qty_sold DESC",
    ),
    (
        "getMaxOrderId",
        &[],
        "SELECT MAX(o_id) AS max_o_id FROM orders",
    ),
    (
        "getRelated",
        &["i_id"],
        "SELECT i_related1, i_title, i_cost FROM item WHERE i_id = @i_id",
    ),
    (
        "getStock",
        &["i_id"],
        "SELECT i_stock FROM item WHERE i_id = @i_id",
    ),
    (
        "getUserName",
        &["c_id"],
        "SELECT c_uname FROM customer WHERE c_id = @c_id",
    ),
    (
        "getPassword",
        &["uname"],
        "SELECT c_passwd FROM customer WHERE c_uname = @uname",
    ),
    // -- order history ------------------------------------------------------
    (
        "getMostRecentOrderId",
        &["uname"],
        "SELECT TOP 1 o_id FROM orders, customer \
         WHERE o_c_id = c_id AND c_uname = @uname ORDER BY o_date DESC, o_id DESC",
    ),
    (
        "getMostRecentOrderDetails",
        &["o_id"],
        "SELECT o_id, o_c_id, o_date, o_sub_total, o_tax, o_total, o_ship_type, o_status, cx_type \
         FROM orders, cc_xacts WHERE o_id = @o_id AND cx_o_id = o_id",
    ),
    (
        "getMostRecentOrderLines",
        &["o_id"],
        "SELECT ol_i_id, i_title, ol_qty, ol_discount, i_cost \
         FROM order_line, item WHERE ol_o_id = @o_id AND ol_i_id = i_id",
    ),
    // -- shopping cart -------------------------------------------------------
    (
        "createEmptyCart",
        &["sc_id", "now"],
        "INSERT INTO shopping_cart (sc_id, sc_time, sc_total) VALUES (@sc_id, @now, 0.0)",
    ),
    (
        "addLine",
        &["sc_id", "i_id", "qty"],
        "INSERT INTO shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) VALUES (@sc_id, @i_id, @qty)",
    ),
    (
        "updateLine",
        &["sc_id", "i_id", "qty"],
        "UPDATE shopping_cart_line SET scl_qty = @qty WHERE scl_sc_id = @sc_id AND scl_i_id = @i_id",
    ),
    (
        "clearCart",
        &["sc_id"],
        "DELETE FROM shopping_cart_line WHERE scl_sc_id = @sc_id",
    ),
    (
        "getCart",
        &["sc_id"],
        "SELECT scl_i_id, scl_qty, i_title, i_cost, i_srp \
         FROM shopping_cart_line, item WHERE scl_sc_id = @sc_id AND scl_i_id = i_id",
    ),
    (
        "refreshCart",
        &["sc_id", "now", "total"],
        "UPDATE shopping_cart SET sc_time = @now, sc_total = @total WHERE sc_id = @sc_id",
    ),
    // -- registration / buy -------------------------------------------------
    (
        "addCustomer",
        &["c_id", "uname", "fname", "lname", "addr_id", "now"],
        "INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname, c_addr_id, c_since, c_last_login, c_discount, c_balance, c_ytd_pmt) \
         VALUES (@c_id, @uname, 'pw', @fname, @lname, @addr_id, @now, @now, 0.1, 0.0, 0.0)",
    ),
    (
        "addAddress",
        &["addr_id", "street", "city", "co_id"],
        "INSERT INTO address (addr_id, addr_street1, addr_city, addr_state, addr_zip, addr_co_id) \
         VALUES (@addr_id, @street, @city, 'st', '00000', @co_id)",
    ),
    (
        "updateCustomerLogin",
        &["c_id", "now"],
        "UPDATE customer SET c_last_login = @now WHERE c_id = @c_id",
    ),
    (
        "enterOrder",
        &["o_id", "c_id", "now", "sub_total", "addr_id"],
        "INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_tax, o_total, o_ship_type, o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status) \
         VALUES (@o_id, @c_id, @now, @sub_total, @sub_total * 0.08, @sub_total * 1.08, 'AIR', @now, @addr_id, @addr_id, 'PENDING')",
    ),
    (
        "addOrderLine",
        &["ol_id", "o_id", "i_id", "qty"],
        "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount) \
         VALUES (@ol_id, @o_id, @i_id, @qty, 0.0)",
    ),
    (
        "enterCCXact",
        &["o_id", "cc_type", "amount", "now", "co_id"],
        "INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, cx_xact_amt, cx_xact_date, cx_co_id) \
         VALUES (@o_id, @cc_type, '4111111111111111', 'holder', @amount, @now, @co_id)",
    ),
    (
        "updateItemStock",
        &["i_id", "qty"],
        "UPDATE item SET i_stock = i_stock - @qty WHERE i_id = @i_id",
    ),
    // -- admin ---------------------------------------------------------------
    (
        "getAdminProduct",
        &["i_id"],
        "SELECT i_id, i_title, i_subject, i_srp, i_cost, i_stock, i_pub_date FROM item WHERE i_id = @i_id",
    ),
    (
        "adminUpdate",
        &["i_id", "cost", "now"],
        "UPDATE item SET i_cost = @cost, i_pub_date = @now WHERE i_id = @i_id",
    ),
];

/// Registers all procedures on a backend server.
pub fn register_all(backend: &BackendServer) -> Result<()> {
    for (name, params, body) in PROCEDURES {
        backend.create_procedure(name, params, body)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate, Scale};
    use mtc_engine::eval::Bindings;
    use mtc_types::Value;

    #[test]
    fn thirty_one_procedures_like_the_kit() {
        // The paper's kit used 29; we carry 31 (address handling and admin
        // reads are split into their own procedures).
        assert_eq!(PROCEDURES.len(), 31);
    }

    #[test]
    fn all_procedures_register_and_parse() {
        let backend = BackendServer::new("b");
        backend.run_script(crate::schema::DDL).unwrap();
        register_all(&backend).unwrap();
        let db = backend.db.read();
        assert_eq!(db.catalog.procedures().count(), PROCEDURES.len());
    }

    #[test]
    fn representative_procs_execute() {
        let backend = BackendServer::new("b");
        generate(&backend, Scale::tiny()).unwrap();
        register_all(&backend).unwrap();

        let r = backend
            .execute("EXEC getName @c_id = 3", &Bindings::new(), "app")
            .unwrap();
        assert_eq!(r.rows.len(), 1);

        let r = backend
            .execute("EXEC getBook @i_id = 10", &Bindings::new(), "app")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.schema.len(), 10);

        let r = backend
            .execute(
                "EXEC doSubjectSearch @subject = 'HISTORY'",
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert!(!r.rows.is_empty());

        let r = backend
            .execute(
                "EXEC doTitleSearch @title = '%rust%'",
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert!(!r.rows.is_empty());

        // Best sellers: threshold over all orders.
        let max = backend
            .execute("EXEC getMaxOrderId", &Bindings::new(), "app")
            .unwrap();
        let max_o = max.rows[0][0].as_i64().unwrap();
        let r = backend
            .execute(
                &format!("EXEC getBestSellers @subject = 'ARTS', @o_threshold = {}", (max_o - 3333).max(0)),
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert!(!r.rows.is_empty());
        // Sorted by quantity descending.
        let q0 = r.rows[0][4].as_i64().unwrap();
        let q1 = r.rows[r.rows.len() - 1][4].as_i64().unwrap();
        assert!(q0 >= q1);
    }

    #[test]
    fn cart_lifecycle() {
        let backend = BackendServer::new("b");
        generate(&backend, Scale::tiny()).unwrap();
        register_all(&backend).unwrap();
        let run = |sql: &str| backend.execute(sql, &Bindings::new(), "app").unwrap();

        run("EXEC createEmptyCart @sc_id = 9001, @now = 1");
        run("EXEC addLine @sc_id = 9001, @i_id = 5, @qty = 2");
        run("EXEC addLine @sc_id = 9001, @i_id = 7, @qty = 1");
        let cart = run("EXEC getCart @sc_id = 9001");
        assert_eq!(cart.rows.len(), 2);
        run("EXEC updateLine @sc_id = 9001, @i_id = 5, @qty = 9");
        let cart = run("EXEC getCart @sc_id = 9001");
        let qty: i64 = cart
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(5))
            .unwrap()[1]
            .as_i64()
            .unwrap();
        assert_eq!(qty, 9);
        run("EXEC clearCart @sc_id = 9001");
        let cart = run("EXEC getCart @sc_id = 9001");
        assert!(cart.rows.is_empty());
    }

    #[test]
    fn buy_path_updates_stock() {
        let backend = BackendServer::new("b");
        generate(&backend, Scale::tiny()).unwrap();
        register_all(&backend).unwrap();
        let run = |sql: &str| backend.execute(sql, &Bindings::new(), "app").unwrap();

        let before = run("EXEC getStock @i_id = 3").rows[0][0].as_i64().unwrap();
        run("EXEC enterOrder @o_id = 777777, @c_id = 1, @now = 5, @sub_total = 100.0, @addr_id = 1");
        run("EXEC addOrderLine @ol_id = 1, @o_id = 777777, @i_id = 3, @qty = 4");
        run("EXEC enterCCXact @o_id = 777777, @cc_type = 'VISA', @amount = 108.0, @now = 5, @co_id = 1");
        run("EXEC updateItemStock @i_id = 3, @qty = 4");
        let after = run("EXEC getStock @i_id = 3").rows[0][0].as_i64().unwrap();
        assert_eq!(after, before - 4);
        let lines = run("EXEC getMostRecentOrderLines @o_id = 777777");
        assert_eq!(lines.rows.len(), 1);
    }
}
