//! TPC-W benchmark substrate (§6.1 of the paper).
//!
//! TPC-W models an online book seller: emulated browsers issue fourteen
//! kinds of web interactions against a storefront whose persistent state is
//! a relational database. This crate provides:
//!
//! * the **schema** (customer, address, country, author, item, orders,
//!   order_line, cc_xacts, shopping_cart, shopping_cart_line),
//! * a **scaled data generator** (items × emulated browsers, with the
//!   spec's cardinality ratios scaled down to laptop size — see DESIGN.md
//!   §3 substitutions),
//! * the **stored procedures** the interactions call (including the
//!   best-seller and search queries the paper singles out as expensive),
//! * the fourteen **interactions** and the three **workload mixes**
//!   (Browsing 95/5, Shopping 80/20, Ordering 50/50 browse/order), and
//! * the paper's **caching configuration**: cached projections of item,
//!   author, orders and order_line, with read-dominated procedures copied
//!   to the cache servers.

pub mod datagen;
pub mod deploy;
pub mod interactions;
pub mod mix;
pub mod procs;
pub mod schema;
pub mod session;

pub use datagen::{generate, Scale};
pub use deploy::{configure_cache, CACHED_PROCS};
pub use interactions::{run_interaction, run_interaction_with_keys, Interaction, InteractionOutcome};
pub use mix::{KeyDist, Mix, Phase, PhaseSchedule, Workload};
pub use session::Session;
