//! Same-seed reproducibility of the workload substrate.
//!
//! The experiments in §6 are only comparable across configurations if the
//! generated database and the sampled interaction stream are functions of
//! the seed alone. With the in-tree `mtc_util::rng` this is a hard
//! guarantee (no platform- or version-dependent stream), which these tests
//! pin: generating twice with one seed is bit-identical, and a different
//! seed actually changes the data.

use mtc_tpcw::{generate, Scale, Workload};
use mtc_util::rng::{Rng, SeedableRng, StdRng};
use mtcache::BackendServer;
use mtc_types::Row;

/// Scans every table of a generated database into a comparable snapshot.
fn snapshot(backend: &BackendServer) -> Vec<(String, Vec<Row>)> {
    let db = backend.db.read();
    let mut tables: Vec<(String, Vec<Row>)> = db
        .tables()
        .map(|t| (t.name().to_string(), t.scan().cloned().collect()))
        .collect();
    tables.sort_by(|a, b| a.0.cmp(&b.0));
    tables
}

fn generate_with_seed(seed: u64) -> Vec<(String, Vec<Row>)> {
    let backend = BackendServer::new("backend");
    let mut scale = Scale::tiny();
    scale.seed = seed;
    generate(&backend, scale).unwrap();
    snapshot(&backend)
}

#[test]
fn same_seed_generates_identical_database() {
    let a = generate_with_seed(1234);
    let b = generate_with_seed(1234);
    assert_eq!(a, b, "datagen must be a pure function of the seed");
}

#[test]
fn different_seed_generates_different_database() {
    let a = generate_with_seed(1234);
    let b = generate_with_seed(4321);
    assert_ne!(a, b, "seed must actually drive the generator");
}

#[test]
fn same_seed_samples_identical_interaction_mix() {
    for workload in Workload::ALL {
        let mix = workload.mix();
        let sample_stream = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..2_000).map(|_| mix.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = sample_stream(99);
        let b = sample_stream(99);
        assert_eq!(a, b, "{} mix must replay under one seed", mix.name);
        let c = sample_stream(100);
        assert_ne!(a, c, "{} mix must vary across seeds", mix.name);
    }
}

#[test]
fn mix_weights_are_respected_under_the_in_tree_rng() {
    // Sanity: Browsing is ~95% browse-class; the sampled stream should be
    // within a few points of the analytic fraction.
    let mix = Workload::Browsing.mix();
    let expected = mix.browse_fraction();
    let mut rng = StdRng::seed_from_u64(7);
    let n = 20_000;
    let browse = (0..n)
        .filter(|_| mix.sample(&mut rng).is_browse_class())
        .count();
    let observed = browse as f64 / n as f64;
    assert!(
        (observed - expected).abs() < 0.02,
        "observed {observed:.3}, expected {expected:.3}"
    );
}

#[test]
fn rng_streams_are_independent_per_seed_not_time() {
    // Guard against accidental reintroduction of entropy-based seeding in
    // the substrate: two RNGs created back-to-back from the same seed agree
    // on an arbitrary mixed-draw sequence.
    let mut a = StdRng::seed_from_u64(0xDEADBEEF);
    let mut b = StdRng::seed_from_u64(0xDEADBEEF);
    for _ in 0..1_000 {
        assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        assert_eq!(a.gen_bool(0.3), b.gen_bool(0.3));
        assert_eq!(a.gen_range(-5.0..5.0).to_bits(), b.gen_range(-5.0..5.0).to_bits());
    }
}
