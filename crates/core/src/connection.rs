//! Application-facing connections.
//!
//! A [`Connection`] is the analogue of an ODBC connection. Transparency is
//! the whole point: the application code is identical whether the handle
//! points at the backend or at a cache server, so "rerouting the
//! application's ODBC sources from the backend server to the cache server"
//! (§4) is just constructing the connection from a different handle.

use std::sync::Arc;

use mtc_engine::eval::Bindings;
use mtc_engine::QueryResult;
use mtc_types::{Result, Value};

use crate::backend::BackendServer;
use crate::cache::CacheServer;

/// Which server a connection points at (the "ODBC source" definition).
#[derive(Clone)]
pub enum ServerHandle {
    Backend(Arc<BackendServer>),
    Cache(Arc<CacheServer>),
}

impl From<Arc<BackendServer>> for ServerHandle {
    fn from(b: Arc<BackendServer>) -> ServerHandle {
        ServerHandle::Backend(b)
    }
}

impl From<Arc<CacheServer>> for ServerHandle {
    fn from(c: Arc<CacheServer>) -> ServerHandle {
        ServerHandle::Cache(c)
    }
}

/// A client connection bound to a principal.
pub struct Connection {
    server: ServerHandle,
    principal: String,
}

impl Connection {
    /// Connects as the administrative `dbo` principal.
    pub fn connect(server: impl Into<ServerHandle>) -> Connection {
        Connection {
            server: server.into(),
            principal: "dbo".into(),
        }
    }

    /// Connects as a specific principal (application login).
    pub fn connect_as(server: impl Into<ServerHandle>, principal: &str) -> Connection {
        Connection {
            server: server.into(),
            principal: principal.to_string(),
        }
    }

    /// Points this connection at a different server — the ODBC re-route.
    pub fn reroute(&mut self, server: impl Into<ServerHandle>) {
        self.server = server.into();
    }

    pub fn principal(&self) -> &str {
        &self.principal
    }

    /// Executes a statement without parameters.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.query_with(sql, &Bindings::new())
    }

    /// Executes a statement with named parameters.
    pub fn query_with(&self, sql: &str, params: &Bindings) -> Result<QueryResult> {
        match &self.server {
            ServerHandle::Backend(b) => b.execute(sql, params, &self.principal),
            ServerHandle::Cache(c) => c.execute(sql, params, &self.principal),
        }
    }

    /// EXPLAIN: the physical plan this connection's server would run.
    pub fn explain(&self, sql: &str) -> Result<String> {
        match &self.server {
            ServerHandle::Backend(b) => b.explain(sql),
            ServerHandle::Cache(c) => c.explain(sql),
        }
    }

    /// Convenience: builds bindings from `(name, value)` pairs.
    pub fn params(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| (mtc_types::normalize_ident(k), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_replication::ReplicationHub;
    use mtc_util::sync::Mutex;

    #[test]
    fn same_code_runs_against_backend_and_cache() {
        let backend = BackendServer::new("b");
        backend
            .run_script(
                "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, v VARCHAR);
                 INSERT INTO t VALUES (1, 'x'), (2, 'y');",
            )
            .unwrap();
        backend.analyze();
        let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
        let cache = CacheServer::create("c", backend.clone(), hub);
        cache
            .create_cached_view("t_all", "SELECT id, v FROM t")
            .unwrap();

        // The application function knows nothing about servers.
        let app = |conn: &Connection| -> usize {
            conn.query("SELECT id FROM t WHERE id <= 2").unwrap().rows.len()
        };

        let mut conn = Connection::connect(backend.clone());
        assert_eq!(app(&conn), 2);
        // Re-route the "ODBC source" — no application change.
        conn.reroute(cache);
        assert_eq!(app(&conn), 2);
    }

    #[test]
    fn explain_shows_routing() {
        let backend = BackendServer::new("b");
        backend
            .run_script("CREATE TABLE t (id INT NOT NULL PRIMARY KEY, v VARCHAR)")
            .unwrap();
        let rows: Vec<String> = (1..=500)
            .map(|i| format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
            .collect();
        backend.run_script(&rows.join(";")).unwrap();
        backend.analyze();
        let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
        let cache = CacheServer::create("c", backend.clone(), hub);
        let conn = Connection::connect(cache);
        let plan = conn.explain("SELECT v FROM t WHERE id = 1").unwrap();
        assert!(plan.contains("Remote"), "shadow table goes remote: {plan}");
        assert!(plan.contains("estimated cost"), "{plan}");
        let conn = Connection::connect(backend);
        let plan = conn.explain("SELECT v FROM t WHERE id = 1").unwrap();
        assert!(plan.contains("ClusteredSeek"), "{plan}");
        assert!(conn.explain("DELETE FROM t").is_err());
    }

    /// The currency-routing decision surfaces through the application-facing
    /// handle: an app holding a `Connection` can see, in `explain`, why its
    /// freshness-bounded query left the cache.
    #[test]
    fn explain_surfaces_currency_routing_through_connection() {
        use mtc_replication::ManualClock;
        let clock = ManualClock::new(0);
        let backend = BackendServer::with_clock("b", Arc::new(clock.clone()));
        backend
            .run_script("CREATE TABLE t (id INT NOT NULL PRIMARY KEY, v VARCHAR)")
            .unwrap();
        let rows: Vec<String> = (1..=300)
            .map(|i| format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
            .collect();
        backend.run_script(&rows.join(";")).unwrap();
        backend.analyze();
        let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
        let cache = CacheServer::create("c", backend.clone(), hub.clone());
        cache
            .create_cached_view("t_all", "SELECT id, v FROM t")
            .unwrap();
        let conn = Connection::connect(cache);

        // Fresh view: the bound is satisfied and explain says so.
        let bounded = "SELECT v FROM t WHERE id = 7 WITH FRESHNESS 60 SECONDS";
        let plan = conn.explain(bounded).unwrap();
        assert!(plan.contains("routing: local"), "{plan}");

        // Pause replication, mutate the backend and let time pass: the
        // bound is violated.
        hub.lock().log_reader_enabled = false;
        backend
            .run_script("UPDATE t SET v = 'stale' WHERE id = 7")
            .unwrap();
        clock.advance(10_000);
        let tight = "SELECT v FROM t WHERE id = 7 WITH FRESHNESS 1 SECONDS";
        let plan = conn.explain(tight).unwrap();
        assert!(plan.contains("routing: backend fallback"), "{plan}");
        assert!(plan.contains("t_all"), "{plan}");
        // An unbounded query through the same connection carries no line.
        let plan = conn.explain("SELECT v FROM t WHERE id = 7").unwrap();
        assert!(!plan.contains("routing:"), "{plan}");
    }

    #[test]
    fn params_helper() {
        let p = Connection::params(&[("ID", Value::Int(1)), ("name", Value::str("x"))]);
        assert_eq!(p["id"], Value::Int(1));
        assert_eq!(p["name"], Value::str("x"));
    }
}
