//! Stored procedure helpers shared by backend and cache servers.

use mtc_engine::eval::{eval, Bindings};
use mtc_sql::{Expr, Statement};
use mtc_storage::ProcedureDef;
use mtc_types::{Error, Result, Row, Schema, Value};

/// Builds the parameter bindings for one procedure invocation: declared
/// parameters default to NULL, then EXEC arguments (evaluated against the
/// caller's bindings) override by name.
pub fn bind_proc_args(
    proc: &ProcedureDef,
    args: &[(String, Expr)],
    caller_params: &Bindings,
) -> Result<Bindings> {
    let mut bound = Bindings::new();
    for p in &proc.params {
        bound.insert(p.clone(), Value::Null);
    }
    let empty_row = Row::new(vec![]);
    let empty_schema = Schema::empty();
    for (name, expr) in args {
        if !bound.contains_key(name) {
            return Err(Error::execution(format!(
                "procedure `{}` has no parameter `@{name}`",
                proc.name
            )));
        }
        let v = eval(expr, &empty_row, &empty_schema, caller_params)?;
        bound.insert(name.clone(), v);
    }
    Ok(bound)
}

/// Parses a procedure body script into statements, validating that every
/// referenced parameter is declared.
pub fn parse_proc_body(name: &str, params: &[String], body_sql: &str) -> Result<Vec<Statement>> {
    let body = mtc_sql::parse_statements(body_sql)?;
    for stmt in &body {
        for p in statement_params(stmt) {
            if !params.iter().any(|d| d == &p) {
                return Err(Error::catalog(format!(
                    "procedure `{name}` references undeclared parameter `@{p}`"
                )));
            }
        }
    }
    Ok(body)
}

/// All parameter names referenced by a statement.
pub fn statement_params(stmt: &Statement) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut push_expr = |e: &Expr| {
        for p in e.params() {
            out.push(p.to_string());
        }
    };
    match stmt {
        Statement::Select(s) => collect_select_params(s, &mut push_expr),
        Statement::Insert { source, .. } => match source {
            mtc_sql::InsertSource::Values(rows) => {
                for row in rows {
                    for e in row {
                        push_expr(e);
                    }
                }
            }
            mtc_sql::InsertSource::Query(s) => collect_select_params(s, &mut push_expr),
        },
        Statement::Update {
            assignments,
            selection,
            ..
        } => {
            for (_, e) in assignments {
                push_expr(e);
            }
            if let Some(s) = selection {
                push_expr(s);
            }
        }
        Statement::Delete { selection, .. } => {
            if let Some(s) = selection {
                push_expr(s);
            }
        }
        Statement::Exec { args, .. } => {
            for (_, e) in args {
                push_expr(e);
            }
        }
        _ => {}
    }
    out.sort();
    out.dedup();
    out
}

fn collect_select_params(s: &mtc_sql::Select, push: &mut impl FnMut(&Expr)) {
    for item in &s.projection {
        if let mtc_sql::SelectItem::Expr { expr, .. } = item {
            push(expr);
        }
    }
    if let Some(w) = &s.selection {
        push(w);
    }
    for g in &s.group_by {
        push(g);
    }
    if let Some(h) = &s.having {
        push(h);
    }
    for o in &s.order_by {
        push(&o.expr);
    }
    for t in &s.from {
        collect_tableref_params(t, push);
    }
}

fn collect_tableref_params(t: &mtc_sql::TableRef, push: &mut impl FnMut(&Expr)) {
    if let mtc_sql::TableRef::Join { left, right, on, .. } = t {
        collect_tableref_params(left, push);
        collect_tableref_params(right, push);
        if let Some(on) = on {
            push(on);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_sql::parse_statement;

    fn proc() -> ProcedureDef {
        ProcedureDef {
            name: "getitem".into(),
            params: vec!["id".into(), "kind".into()],
            body: vec![parse_statement("SELECT 1").unwrap()],
        }
    }

    #[test]
    fn binds_declared_args_defaults_null() {
        let p = proc();
        let args = vec![("id".to_string(), Expr::lit(7))];
        let b = bind_proc_args(&p, &args, &Bindings::new()).unwrap();
        assert_eq!(b["id"], Value::Int(7));
        assert_eq!(b["kind"], Value::Null);
    }

    #[test]
    fn rejects_unknown_arg() {
        let p = proc();
        let args = vec![("nope".to_string(), Expr::lit(1))];
        assert!(bind_proc_args(&p, &args, &Bindings::new()).is_err());
    }

    #[test]
    fn caller_params_flow_through() {
        let p = proc();
        let mut caller = Bindings::new();
        caller.insert("outer".into(), Value::Int(42));
        let args = vec![("id".to_string(), Expr::param("outer"))];
        let b = bind_proc_args(&p, &args, &caller).unwrap();
        assert_eq!(b["id"], Value::Int(42));
    }

    #[test]
    fn body_validation_catches_undeclared_params() {
        let err = parse_proc_body(
            "p",
            &["a".into()],
            "SELECT * FROM t WHERE x = @a AND y = @b",
        )
        .unwrap_err();
        assert!(err.to_string().contains("@b"), "{err}");
        assert!(parse_proc_body("p", &["a".into()], "SELECT 1 WHERE 1 = @a").is_ok());
    }

    #[test]
    fn statement_params_covers_clauses() {
        let s = parse_statement(
            "SELECT a + @x FROM t INNER JOIN u ON t.id = u.id AND u.k = @y WHERE b = @z GROUP BY a HAVING COUNT(*) > @w ORDER BY @v DESC",
        )
        .unwrap();
        let ps = statement_params(&s);
        assert_eq!(ps, vec!["v", "w", "x", "y", "z"]);
    }
}
