//! The cache-tier **fleet**: N MTCache servers in front of one backend.
//!
//! The paper's mid-tier cache is a *tier*, not a single box — "a cache
//! server … can be deployed on multiple machines close to the application"
//! (§1). This module turns the repo's single [`CacheServer`] into a fleet:
//!
//! * **Nodes.** [`Fleet::create`] spawns N cache servers, each with its own
//!   shadow database, cached-view subset (applied by a caller-supplied
//!   provisioning closure), plan cache and L1 result cache — all fed from
//!   the one replication hub. Per-node replication progress is observable
//!   as an applied LSN ([`Fleet::applied_lsn`]).
//!
//! * **Front-door router.** Sessions are placed on nodes by consistent
//!   hashing (FNV-1a over a virtual-node ring, deterministic across
//!   processes) with session affinity: a session stays on its node until
//!   the node dies. Removing a node only remaps the sessions that lived on
//!   it — every other session keeps its placement (the classic
//!   minimal-disruption property, pinned by tests).
//!
//! * **L1/L2 result-cache hierarchy.** Each node's [`ResultCache`] is its
//!   L1; the fleet owns an optional peer-shared L2. An L1 miss probes the
//!   L2 and promotes a hit (with its original currency lineage — commit
//!   LSN, tables, fetch instant); a backend fetch writes through to both
//!   tiers. Cross-node invalidation fans out over the existing per-table
//!   `InvalidationSink` watermarks: the replication stream invalidates each
//!   node's L1 and the L2 as deliveries apply, and a write forwarded
//!   through any node invalidates **all** tiers synchronously, before the
//!   DML returns — so no node ever serves a result older than its currency
//!   bound, and no reader at-or-past a write's LSN can hit a pre-write
//!   entry anywhere in the fleet.
//!
//! * **Failure semantics.** [`Fleet::crash_node`] kills a node: its hub
//!   subscriptions are detached (tombstoned — a dead node must not pin the
//!   distribution queue), its sessions are evicted from the affinity map
//!   and reroute to ring successors on their next statement.
//!   [`Fleet::rejoin_node`] brings the slot back **cold**: a fresh server,
//!   fresh shadow DB, fresh caches, re-provisioned cached views — the
//!   subscription snapshot rehydrates it to bit-exact convergence with its
//!   peers (pinned by `tests/fleet_semantics.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mtc_util::sync::Mutex;

use mtc_replication::ReplicationHub;
use mtc_storage::Lsn;
use mtc_types::{Error, Result};

use crate::advisor::{AdaptiveAdvisor, AdvisorConfig};
use crate::backend::BackendServer;
use crate::cache::{CacheServer, PeerHandle};
use crate::result_cache::{ResultCache, ResultCacheConfig};

/// 64-bit FNV-1a. Used for ring and session placement because it is
/// deterministic by construction — `std`'s `DefaultHasher` is allowed to
/// change between releases, and routing must be reproducible across
/// processes and seeds.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Consistent-hash ring with virtual nodes plus a session-affinity map.
///
/// Placement is two-level: a session already pinned to a live node stays
/// there (affinity); an unpinned session walks the ring — first vnode with
/// hash ≥ the session's hash, wrapping — and gets pinned to the node it
/// lands on. Crashing a node evicts only its pins.
pub struct Router {
    vnodes: usize,
    /// `(vnode hash, node index)`, sorted by hash. Only live nodes appear.
    ring: Vec<(u64, usize)>,
    /// Session → node-index pins.
    affinity: HashMap<u64, usize>,
    /// Sessions evicted by node crashes (observability).
    reroutes: u64,
}

impl Router {
    pub fn new(vnodes: usize) -> Router {
        Router {
            vnodes: vnodes.max(1),
            ring: Vec::new(),
            affinity: HashMap::new(),
            reroutes: 0,
        }
    }

    /// Rebuilds the ring from the live `(node index, node name)` set.
    /// Vnode hashes depend only on node *names*, so a node that leaves and
    /// returns reclaims exactly its old ring positions.
    pub fn rebuild(&mut self, alive: &[(usize, String)]) {
        self.ring.clear();
        for (idx, name) in alive {
            for v in 0..self.vnodes {
                self.ring.push((fnv1a64(format!("{name}#{v}").as_bytes()), *idx));
            }
        }
        self.ring.sort_unstable();
    }

    /// Pure ring lookup — no affinity read or write. This is the
    /// deterministic placement new sessions get.
    pub fn ring_node(&self, session: u64) -> Option<usize> {
        if self.ring.is_empty() {
            return None;
        }
        let h = fnv1a64(&session.to_le_bytes());
        let at = self.ring.partition_point(|(vh, _)| *vh < h);
        Some(self.ring[at % self.ring.len()].1)
    }

    /// Places `session`: its pinned node if still live, else the ring node,
    /// pinning the choice.
    pub fn place(&mut self, session: u64) -> Option<usize> {
        if let Some(&idx) = self.affinity.get(&session) {
            return Some(idx);
        }
        let idx = self.ring_node(session)?;
        self.affinity.insert(session, idx);
        Some(idx)
    }

    /// Evicts every session pinned to `idx` (they re-place on next use);
    /// returns how many were evicted.
    pub fn evict_node(&mut self, idx: usize) -> usize {
        let before = self.affinity.len();
        self.affinity.retain(|_, v| *v != idx);
        let evicted = before - self.affinity.len();
        self.reroutes += evicted as u64;
        evicted
    }

    /// Sessions rerouted by crashes so far.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// Live sessions currently pinned.
    pub fn pinned_sessions(&self) -> usize {
        self.affinity.len()
    }
}

/// Fleet construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Cache nodes to spawn.
    pub nodes: usize,
    /// Virtual ring entries per node (placement smoothness).
    pub vnodes: usize,
    /// Per-node L1 result-cache budget, bytes.
    pub l1_budget: u64,
    /// Shared L2 budget, bytes; 0 disables the L2 tier.
    pub l2_budget: u64,
    /// Per-node degree of intra-query parallelism (1 = serial execution).
    pub dop: usize,
    /// Multi-site fragment placement: let each node's optimizer route plan
    /// fragments to peers carrying a relevant cached view (over the cheap
    /// peer link) instead of falling back to the backend. Disabling it
    /// restores strict two-site (local/backend) planning on every node.
    pub multisite: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            nodes: 4,
            vnodes: 32,
            l1_budget: 256 * 1024,
            l2_budget: 1024 * 1024,
            dop: 1,
            multisite: true,
        }
    }
}

/// Applies a node's cache configuration (cached views, indexes, copied
/// procedures, grants) — run once per node at creation and again on every
/// cold rejoin.
pub type Provisioner = dyn Fn(&CacheServer) -> Result<()> + Send + Sync;

struct Slot {
    name: String,
    /// `None` while crashed.
    server: Option<Arc<CacheServer>>,
}

/// A fleet of cache servers behind one front-door router. See the module
/// docs for the architecture.
pub struct Fleet {
    backend: Arc<BackendServer>,
    hub: Arc<Mutex<ReplicationHub>>,
    cfg: FleetConfig,
    /// Peer-shared L2 result-cache tier (`None` when `l2_budget == 0`).
    l2: Option<Arc<ResultCache>>,
    provision: Box<Provisioner>,
    slots: Mutex<Vec<Slot>>,
    router: Mutex<Router>,
    /// Fleet-wide placement-topology version, shared by every node: bumped
    /// on crash AND rejoin, so plan-cache entries whose placements
    /// reference the old membership are invalidated everywhere at once.
    topology: Arc<AtomicU64>,
    /// Advisor configuration once [`Fleet::enable_advisor`] ran (`None`
    /// before): rejoining nodes get a fresh advisor from it, so adaptation
    /// survives membership churn.
    advisor_cfg: Mutex<Option<AdvisorConfig>>,
    /// Per-slot L1 pressure marks (evictions + admission rejects at the
    /// last fleet tick) — [`Fleet::advisor_tick`]'s cross-node rebalance
    /// reasons about this epoch's deltas.
    advisor_marks: Mutex<Vec<u64>>,
}

impl Fleet {
    /// Spawns `cfg.nodes` cache servers named `cache0…`, provisions each
    /// with `provision`, wires the L1/L2 hierarchy and the peer
    /// invalidation fan-out, and builds the routing ring.
    pub fn create(
        backend: Arc<BackendServer>,
        hub: Arc<Mutex<ReplicationHub>>,
        cfg: FleetConfig,
        provision: Box<Provisioner>,
    ) -> Result<Arc<Fleet>> {
        if cfg.nodes == 0 {
            return Err(Error::catalog("a fleet needs at least one node"));
        }
        let l2 = (cfg.l2_budget > 0)
            .then(|| Arc::new(ResultCache::new(ResultCacheConfig::with_budget(cfg.l2_budget))));
        let fleet = Fleet {
            backend,
            hub,
            cfg,
            l2,
            provision,
            slots: Mutex::new(Vec::new()),
            router: Mutex::new(Router::new(cfg.vnodes)),
            topology: Arc::new(AtomicU64::new(0)),
            advisor_cfg: Mutex::new(None),
            advisor_marks: Mutex::new(Vec::new()),
        };
        {
            let mut slots = fleet.slots.lock();
            for i in 0..cfg.nodes {
                let name = format!("cache{i}");
                let server = fleet.spawn(&name)?;
                slots.push(Slot {
                    name,
                    server: Some(server),
                });
            }
        }
        fleet.rewire();
        Ok(Arc::new(fleet))
    }

    /// Builds and provisions one node (fresh shadow DB, fresh caches), and
    /// registers the shared L2 for replication-stream invalidation of that
    /// node's deliveries.
    fn spawn(&self, name: &str) -> Result<Arc<CacheServer>> {
        let mut server = CacheServer::create_with_result_cache(
            name,
            self.backend.clone(),
            self.hub.clone(),
            ResultCache::new(ResultCacheConfig::with_budget(self.cfg.l1_budget)),
        );
        if self.cfg.dop > 1 {
            Arc::get_mut(&mut server)
                .expect("freshly created server")
                .options
                .dop = self.cfg.dop;
        }
        if let Some(l2) = &self.l2 {
            // Any node applying a delivery proves the backend write
            // happened: the shared tier must drop entries missing it.
            self.hub
                .lock()
                .register_invalidation_sink(&server.db, l2.clone());
            server.set_l2(Some(l2.clone()));
        }
        (self.provision)(&server)?;
        // A node (re)joining an advisor-enabled fleet adapts from scratch:
        // fresh advisor, fresh window, fragment caching on.
        if let Some(cfg) = self.advisor_cfg.lock().clone() {
            server.set_fragment_caching(true);
            server.set_advisor(Some(Arc::new(AdaptiveAdvisor::new(cfg))));
        }
        Ok(server)
    }

    /// Refreshes peer-invalidation wiring and the routing ring from the
    /// current live set. Called after every membership change.
    fn rewire(&self) {
        let slots = self.slots.lock();
        let live: Vec<(usize, Arc<CacheServer>)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.server.clone().map(|srv| (i, srv)))
            .collect();
        for (i, server) in &live {
            let peers: Vec<Arc<ResultCache>> = live
                .iter()
                .filter(|(j, _)| j != i)
                .map(|(_, p)| p.result_cache.clone())
                .collect();
            server.set_peer_caches(peers);
            // Placement wiring: every node shares the fleet topology
            // counter and (when multi-site planning is on) holds weak
            // handles to its peers so its optimizer can place fragments on
            // them.
            server.set_topology(self.topology.clone());
            let placement_peers: Vec<PeerHandle> = if self.cfg.multisite {
                live.iter()
                    .filter(|(j, _)| j != i)
                    .map(|(_, p)| PeerHandle {
                        name: p.name().to_string(),
                        server: Arc::downgrade(p),
                    })
                    .collect()
            } else {
                Vec::new()
            };
            server.set_peers(placement_peers);
        }
        let names: Vec<(usize, String)> = live
            .iter()
            .map(|(i, s)| (*i, s.name().to_string()))
            .collect();
        drop(slots);
        self.router.lock().rebuild(&names);
    }

    pub fn backend(&self) -> &Arc<BackendServer> {
        &self.backend
    }

    pub fn hub(&self) -> &Arc<Mutex<ReplicationHub>> {
        &self.hub
    }

    /// The shared L2 tier, if configured.
    pub fn l2(&self) -> Option<Arc<ResultCache>> {
        self.l2.clone()
    }

    pub fn node_count(&self) -> usize {
        self.slots.lock().len()
    }

    pub fn alive_count(&self) -> usize {
        self.slots.lock().iter().filter(|s| s.server.is_some()).count()
    }

    /// The node in slot `idx`, if alive.
    pub fn node(&self, idx: usize) -> Option<Arc<CacheServer>> {
        self.slots.lock().get(idx).and_then(|s| s.server.clone())
    }

    /// All live nodes, slot order.
    pub fn nodes(&self) -> Vec<Arc<CacheServer>> {
        self.slots
            .lock()
            .iter()
            .filter_map(|s| s.server.clone())
            .collect()
    }

    /// Routes `session` through the front door: affinity first, consistent
    /// hash otherwise. Returns the slot index and the server.
    pub fn route(&self, session: u64) -> Result<(usize, Arc<CacheServer>)> {
        let idx = self
            .router
            .lock()
            .place(session)
            .ok_or_else(|| Error::catalog("fleet has no live nodes"))?;
        let server = self
            .node(idx)
            .ok_or_else(|| Error::catalog(format!("routed session to dead slot {idx}")))?;
        Ok((idx, server))
    }

    /// Pure consistent-hash placement for `session` (no affinity) — what a
    /// brand-new session would get.
    pub fn ring_node(&self, session: u64) -> Option<usize> {
        self.router.lock().ring_node(session)
    }

    /// Kills the node in slot `idx`: detaches its hub subscriptions
    /// (tombstoned, so the dead node stops pinning distribution
    /// truncation), drops the server, evicts its sessions, and rewires the
    /// survivors. Returns how many sessions were evicted for rerouting.
    pub fn crash_node(&self, idx: usize) -> Result<usize> {
        let server = {
            let mut slots = self.slots.lock();
            let slot = slots
                .get_mut(idx)
                .ok_or_else(|| Error::catalog(format!("no fleet slot {idx}")))?;
            slot.server
                .take()
                .ok_or_else(|| Error::catalog(format!("slot {idx} already crashed")))?
        };
        self.hub.lock().detach_target(&server.db);
        let evicted = self.router.lock().evict_node(idx);
        // Placements that routed fragments to the victim are now invalid
        // fleet-wide: bump the shared topology version so every node's plan
        // cache discards them (exactly like a catalog version bump).
        self.topology.fetch_add(1, Ordering::AcqRel);
        self.rewire();
        Ok(evicted)
    }

    /// Cold-rejoins slot `idx`: a brand-new server (fresh shadow DB, empty
    /// caches) provisioned from scratch — its cached-view subscriptions
    /// bulk-populate from a consistent backend snapshot, so it converges
    /// bit-exactly with peers as soon as the hub drains.
    pub fn rejoin_node(&self, idx: usize) -> Result<Arc<CacheServer>> {
        let name = {
            let slots = self.slots.lock();
            let slot = slots
                .get(idx)
                .ok_or_else(|| Error::catalog(format!("no fleet slot {idx}")))?;
            if slot.server.is_some() {
                return Err(Error::catalog(format!("slot {idx} is already alive")));
            }
            slot.name.clone()
        };
        let server = self.spawn(&name)?;
        self.slots.lock()[idx].server = Some(server.clone());
        // A rejoin changes the placement space too (the returned node's
        // views are routable again): old single-site plans must re-optimize.
        self.topology.fetch_add(1, Ordering::AcqRel);
        self.rewire();
        Ok(server)
    }

    /// The LSN past the last transaction fully applied to every live
    /// subscription of node `idx` — its replication progress. `None` for a
    /// crashed slot or a node with no cached views.
    pub fn applied_lsn(&self, idx: usize) -> Option<Lsn> {
        let server = self.node(idx)?;
        self.hub.lock().applied_lsn_for_target(&server.db)
    }

    /// Read-but-unapplied transaction backlog of node `idx`.
    pub fn lag_txns(&self, idx: usize) -> Option<u64> {
        let server = self.node(idx)?;
        self.hub.lock().lag_txns_for_target(&server.db)
    }

    /// Sessions rerouted by crashes so far.
    pub fn reroutes(&self) -> u64 {
        self.router.lock().reroutes()
    }

    /// The fleet-wide placement-topology version (bumped by crash/rejoin).
    pub fn topology_version(&self) -> u64 {
        self.topology.load(Ordering::Acquire)
    }

    /// Turns the adaptive advisor on fleet-wide: every live node gets its
    /// own [`AdaptiveAdvisor`] (independent windows — nodes see different
    /// session slices) plus fragment caching, and nodes rejoining later
    /// inherit the same configuration.
    pub fn enable_advisor(&self, cfg: AdvisorConfig) {
        *self.advisor_cfg.lock() = Some(cfg.clone());
        for node in self.nodes() {
            node.set_fragment_caching(true);
            node.set_advisor(Some(Arc::new(AdaptiveAdvisor::new(cfg.clone()))));
        }
    }

    /// Closes one fleet advisor epoch: ticks every live node's advisor
    /// (view create/drop + local L1↔fragment rebalance), then runs the
    /// cross-node step — the slot with the most L1 pressure this epoch
    /// (evictions + admission rejects) is fed a damped budget step from the
    /// slot with the least, when the imbalance exceeds 2×. Returns all
    /// decision lines of the epoch.
    pub fn advisor_tick(&self) -> Vec<String> {
        let live: Vec<(usize, Arc<CacheServer>)> = {
            let slots = self.slots.lock();
            slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.server.clone().map(|srv| (i, srv)))
                .collect()
        };
        let mut log: Vec<String> = Vec::new();
        for (_, node) in &live {
            log.extend(node.advisor_tick());
        }
        let Some(cfg) = self.advisor_cfg.lock().clone() else {
            return log;
        };
        let mut marks = self.advisor_marks.lock();
        marks.resize(self.node_count(), 0);
        let mut pressures: Vec<(usize, u64)> = Vec::new();
        for (i, node) in &live {
            let s = node.result_cache.stats();
            let now = s.evictions + s.admission_rejects;
            pressures.push((*i, now.saturating_sub(marks[*i])));
            marks[*i] = now;
        }
        drop(marks);
        if pressures.len() < 2 {
            return log;
        }
        let &(hi, d_hi) = pressures.iter().max_by_key(|(_, d)| *d).unwrap();
        let &(lo, d_lo) = pressures.iter().min_by_key(|(_, d)| *d).unwrap();
        // 2× hysteresis margin, and only when the starved node actually
        // thrashed this epoch.
        if hi == lo || d_hi < 2 * d_lo.max(1) {
            return log;
        }
        let (Some(donor), Some(taker)) = (self.node(lo), self.node(hi)) else {
            return log;
        };
        let donor_budget = donor.result_cache.budget();
        let step = ((donor_budget as f64 * cfg.rebalance_step) as u64)
            .min(donor_budget.saturating_sub(cfg.min_budget));
        if step > 0 {
            donor.result_cache.set_budget(donor_budget - step);
            let taker_budget = taker.result_cache.budget();
            taker.result_cache.set_budget(taker_budget + step);
            log.push(format!(
                "advisor: fleet rebalance {step}B {}→{} (L1 pressure Δ {d_lo} vs {d_hi})",
                donor.name(),
                taker.name()
            ));
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(names: &[&str], vnodes: usize) -> Router {
        let mut r = Router::new(vnodes);
        let alive: Vec<(usize, String)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (i, n.to_string()))
            .collect();
        r.rebuild(&alive);
        r
    }

    #[test]
    fn ring_placement_is_deterministic_and_total() {
        let a = ring_of(&["cache0", "cache1", "cache2", "cache3"], 32);
        let b = ring_of(&["cache0", "cache1", "cache2", "cache3"], 32);
        for s in 0..1000u64 {
            assert_eq!(a.ring_node(s), b.ring_node(s));
            assert!(a.ring_node(s).unwrap() < 4);
        }
    }

    #[test]
    fn ring_spreads_sessions_across_nodes() {
        let r = ring_of(&["cache0", "cache1", "cache2", "cache3"], 32);
        let mut counts = [0usize; 4];
        for s in 0..4000u64 {
            counts[r.ring_node(s).unwrap()] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c > 400,
                "node {i} got {c}/4000 sessions — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_sessions() {
        let full = ring_of(&["cache0", "cache1", "cache2", "cache3"], 32);
        // cache2 crashes: rebuild without it, same names for the rest.
        let mut reduced = Router::new(32);
        reduced.rebuild(&[
            (0, "cache0".into()),
            (1, "cache1".into()),
            (3, "cache3".into()),
        ]);
        let mut moved = 0;
        for s in 0..4000u64 {
            let before = full.ring_node(s).unwrap();
            let after = reduced.ring_node(s).unwrap();
            if before != 2 {
                assert_eq!(before, after, "session {s} moved though its node survived");
            } else {
                assert_ne!(after, 2);
                moved += 1;
            }
        }
        assert!(moved > 0, "some sessions must have lived on cache2");
    }

    #[test]
    fn affinity_pins_survive_other_nodes_crashing() {
        let mut r = ring_of(&["cache0", "cache1", "cache2"], 32);
        // Pin every session once.
        let placements: Vec<(u64, usize)> =
            (0..300u64).map(|s| (s, r.place(s).unwrap())).collect();
        // Crash cache1.
        r.rebuild(&[(0, "cache0".into()), (2, "cache2".into())]);
        let evicted = r.evict_node(1);
        assert!(evicted > 0);
        assert_eq!(r.reroutes(), evicted as u64);
        for (s, before) in placements {
            let after = r.place(s).unwrap();
            if before != 1 {
                assert_eq!(before, after, "pinned session {s} must not move");
            } else {
                assert_ne!(after, 1, "session {s} must leave the dead node");
            }
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
