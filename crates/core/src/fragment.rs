//! Intermediate-result (fragment) caching: memoized join/aggregate
//! subplan results with full replication-currency tracking.
//!
//! The engine's [`mtc_engine::FragmentMemo`] hook fires on every local
//! `HashJoin`/`HashAggregate` subtree root during compiled execution. This
//! module supplies the cache-server side of that hook: a gateway that
//! stores drained fragment rows in a dedicated [`ResultCache`] keyed by
//! the *normalized compiled-plan fingerprint* (operator shape with
//! parameter slots abstracted, plus the resolved parameter values), and
//! stamps each entry with the same currency lineage the statement-level
//! result cache uses:
//!
//! * **commit LSN** — the minimum applied-watermark LSN over every cached
//!   view the fragment scanned, taken from the *same immutable snapshot*
//!   the query executed against. A fragment is exactly as fresh as the
//!   laggiest view it read.
//! * **invalidation tables** — the backend *source* tables behind those
//!   views (via [`ViewMeta::base_object`]), so the replication hub's
//!   publisher-side invalidation stream and locally forwarded DML raise
//!   the same watermarks that flush statement results.
//! * **catalog version** — DDL (new views, drops) flushes fragments like
//!   it flushes plans and statement results.
//!
//! A fragment scanning any object without a replication watermark (a
//! shadow table populated by some non-replicated path) is never admitted:
//! we could not invalidate it correctly, so we refuse to remember it.
//!
//! Serving a memoized fragment is *not* a staleness upgrade: the memo
//! answers with rows computed from replicated local data, which lags the
//! backend by design (§4); invalidation keeps the memo no staler than the
//! local views themselves.

use mtc_engine::{FragmentMemo, QueryResult};
use mtc_storage::DbSnapshot;
use mtc_types::{normalize_ident, Row, Schema};

use crate::result_cache::ResultCache;

/// Per-execution fragment-memo gateway: borrows the server's fragment
/// cache and the snapshot the query scans, so admitted entries carry the
/// snapshot's watermarks (never the live subscription state, which may
/// have advanced past what this execution observed).
pub struct FragmentGateway<'a> {
    cache: &'a ResultCache,
    snap: &'a DbSnapshot,
    catalog_version: u64,
    now_ms: i64,
}

impl<'a> FragmentGateway<'a> {
    pub fn new(
        cache: &'a ResultCache,
        snap: &'a DbSnapshot,
        catalog_version: u64,
        now_ms: i64,
    ) -> FragmentGateway<'a> {
        FragmentGateway {
            cache,
            snap,
            catalog_version,
            now_ms,
        }
    }

    /// Backend source table behind one scanned object: the base table of a
    /// cached view, or the object itself when it is not a view (then it IS
    /// the replicated name the hub publishes invalidations under).
    fn source_table(&self, object: &str) -> String {
        let base = self
            .snap
            .catalog
            .view(object)
            .and_then(|v| v.base_object().map(str::to_string));
        normalize_ident(&base.unwrap_or_else(|| object.to_string()))
    }
}

impl FragmentMemo for FragmentGateway<'_> {
    fn lookup(&self, key: &str) -> Option<Vec<Row>> {
        // No currency bound: the memo may be exactly as stale as the local
        // views themselves (bounded statements bypass the plan cache and
        // re-route before execution, so a bound never reaches a fragment).
        self.cache
            .lookup(key, "", self.catalog_version, None, self.now_ms)
            .map(|r| r.rows)
    }

    fn admit(&self, key: &str, objects: &[String], rows: &[Row], work: f64) {
        let mut tables = Vec::with_capacity(objects.len());
        let mut commit_lsn = u64::MAX;
        for obj in objects {
            // Refuse to memoize anything we cannot invalidate: every
            // scanned object must carry a replication watermark.
            let Some(mark) = self.snap.watermark(obj) else {
                return;
            };
            commit_lsn = commit_lsn.min(mark.lsn.0);
            tables.push(self.source_table(obj));
        }
        if commit_lsn == u64::MAX {
            // Constant fragment scanning nothing: not worth an entry.
            return;
        }
        tables.sort();
        tables.dedup();
        // The admission rule wants the recomputation cost in the result's
        // metrics (`local_work`): that is what a future hit saves.
        let mut result = QueryResult {
            schema: Schema::new(vec![]),
            rows: rows.to_vec(),
            metrics: Default::default(),
        };
        result.metrics.local_work = work;
        self.cache.admit(
            key,
            "",
            &result,
            tables,
            commit_lsn,
            self.now_ms,
            self.catalog_version,
        );
    }
}
