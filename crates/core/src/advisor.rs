//! Cache-design advisor (§7: "there are currently no tools to help a DBA
//! define a caching strategy by analyzing a workload ... such a design tool
//! would be highly desirable").
//!
//! Given a workload trace (SQL text + relative frequency), the advisor
//! scores each base table by how much *read* work touches it versus how
//! much *write* traffic it receives, and recommends select-project cached
//! views (projecting exactly the referenced columns) for the tables where
//! offloading pays. Stored procedures whose statements are read-only and
//! fully covered by the recommended views are suggested for copying.

use std::collections::{BTreeMap, BTreeSet};

use mtc_sql::{Select, Statement, TableRef};
use mtc_storage::Database;
use mtc_types::Result;

/// One workload entry: a statement and its relative frequency.
#[derive(Debug, Clone)]
pub struct WorkloadEntry {
    pub sql: String,
    pub frequency: f64,
}

/// A recommended cached view.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    pub view_name: String,
    /// `CREATE MATERIALIZED VIEW …` definition text, ready to run against a
    /// cache server.
    pub create_sql: String,
    /// Estimated read work units per unit time offloaded by this view.
    pub benefit: f64,
    /// Estimated replication apply work per unit time it costs.
    pub maintenance: f64,
}

/// Advisor configuration.
#[derive(Debug, Clone)]
pub struct AdvisorOptions {
    /// Only recommend views whose benefit exceeds `min_benefit_ratio` times
    /// their maintenance cost.
    pub min_benefit_ratio: f64,
}

impl Default for AdvisorOptions {
    fn default() -> AdvisorOptions {
        AdvisorOptions {
            min_benefit_ratio: 2.0,
        }
    }
}

#[derive(Default)]
struct TableTraffic {
    read_freq: f64,
    write_freq: f64,
    columns: BTreeSet<String>,
}

/// Analyzes a workload against the backend catalog and recommends cached
/// views.
pub fn recommend(
    db: &Database,
    workload: &[WorkloadEntry],
    options: &AdvisorOptions,
) -> Result<Vec<Recommendation>> {
    let mut traffic: BTreeMap<String, TableTraffic> = BTreeMap::new();

    for entry in workload {
        let statements = match mtc_sql::parse_statements(&entry.sql) {
            Ok(s) => s,
            Err(_) => continue, // skip unparseable trace entries
        };
        for stmt in statements {
            match &stmt {
                Statement::Select(sel) => {
                    record_select(db, sel, entry.frequency, &mut traffic);
                }
                Statement::Insert { table, .. }
                | Statement::Update { table, .. }
                | Statement::Delete { table, .. } => {
                    traffic.entry(table.clone()).or_default().write_freq +=
                        entry.frequency;
                }
                Statement::Exec { proc, .. } => {
                    if let Some(def) = db.catalog.procedure(proc) {
                        for s in &def.body {
                            match s {
                                Statement::Select(sel) => {
                                    record_select(db, sel, entry.frequency, &mut traffic)
                                }
                                Statement::Insert { table, .. }
                                | Statement::Update { table, .. }
                                | Statement::Delete { table, .. } => {
                                    traffic.entry(table.clone()).or_default().write_freq +=
                                        entry.frequency;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    let mut recs = Vec::new();
    for (table, t) in &traffic {
        if t.read_freq <= 0.0 {
            continue;
        }
        let Ok(base) = db.table_ref(table) else {
            continue;
        };
        let rows = db
            .catalog
            .stats(table)
            .map(|s| s.row_count as f64)
            .unwrap_or(1000.0);
        // Benefit: read frequency × per-query scan work saved.
        let benefit = t.read_freq * rows;
        // Maintenance: write frequency × per-change apply work.
        let maintenance = t.write_freq * 3.0;
        if benefit < options.min_benefit_ratio * maintenance.max(1.0) {
            continue;
        }
        // Project referenced columns plus the primary key (required for
        // replication apply).
        let mut cols: BTreeSet<String> = t
            .columns
            .iter()
            .filter(|c| base.schema().contains(c))
            .cloned()
            .collect();
        for &pk in base.primary_key() {
            cols.insert(base.schema().column(pk).name.clone());
        }
        // Keep schema order.
        let ordered: Vec<String> = base
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .filter(|c| cols.contains(c))
            .collect();
        let view_name = format!("cv_{table}");
        recs.push(Recommendation {
            create_sql: format!(
                "CREATE MATERIALIZED VIEW {view_name} AS SELECT {} FROM {table}",
                ordered.join(", ")
            ),
            view_name,
            benefit,
            maintenance,
        });
    }
    recs.sort_by(|a, b| b.benefit.total_cmp(&a.benefit));
    Ok(recs)
}

fn record_select(
    db: &Database,
    sel: &Select,
    freq: f64,
    traffic: &mut BTreeMap<String, TableTraffic>,
) {
    fn tables(t: &TableRef, out: &mut Vec<String>) {
        match t {
            TableRef::Table { name, .. } => out.push(name.clone()),
            TableRef::Join { left, right, .. } => {
                tables(left, out);
                tables(right, out);
            }
        }
    }
    let mut names = Vec::new();
    for t in &sel.from {
        tables(t, &mut names);
    }
    // Column references anywhere in the statement, assigned to whichever
    // table's schema contains them.
    let mut cols: Vec<String> = Vec::new();
    if let Some(w) = &sel.selection {
        cols.extend(w.columns().iter().map(|c| c.to_string()));
    }
    for item in &sel.projection {
        if let mtc_sql::SelectItem::Expr { expr, .. } = item {
            cols.extend(expr.columns().iter().map(|c| c.to_string()));
        }
    }
    for g in &sel.group_by {
        cols.extend(g.columns().iter().map(|c| c.to_string()));
    }
    for o in &sel.order_by {
        cols.extend(o.expr.columns().iter().map(|c| c.to_string()));
    }
    for name in names {
        let entry = traffic.entry(name.clone()).or_default();
        entry.read_freq += freq;
        if let Ok(t) = db.table_ref(&name) {
            let wildcard = sel
                .projection
                .iter()
                .any(|i| matches!(i, mtc_sql::SelectItem::Wildcard));
            if wildcard {
                for c in t.schema().columns() {
                    entry.columns.insert(c.name.clone());
                }
            }
            for c in &cols {
                let suffix = c.rsplit('.').next().unwrap_or(c);
                if t.schema().contains(suffix) {
                    entry.columns.insert(suffix.to_string());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_storage::RowChange;
    use mtc_types::{row, Column, DataType, Schema};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            "item",
            Schema::new(vec![
                Column::not_null("i_id", DataType::Int),
                Column::new("i_title", DataType::Str),
                Column::new("i_cost", DataType::Float),
                Column::new("i_desc", DataType::Str),
            ]),
            &["i_id".into()],
        )
        .unwrap();
        db.create_table(
            "cart",
            Schema::new(vec![
                Column::not_null("sc_id", DataType::Int),
                Column::new("sc_total", DataType::Float),
            ]),
            &["sc_id".into()],
        )
        .unwrap();
        let changes: Vec<_> = (1..=5000)
            .map(|i| RowChange::Insert {
                table: "item".into(),
                row: row![i, format!("t{i}"), 1.0, "d"],
            })
            .collect();
        db.apply(0, changes).unwrap();
        db.analyze();
        db
    }

    #[test]
    fn read_heavy_table_recommended_write_heavy_not() {
        let db = db();
        let workload = vec![
            WorkloadEntry {
                sql: "SELECT i_title FROM item WHERE i_id = @id".into(),
                frequency: 100.0,
            },
            WorkloadEntry {
                sql: "UPDATE cart SET sc_total = 1 WHERE sc_id = @id".into(),
                frequency: 100.0,
            },
            WorkloadEntry {
                sql: "SELECT sc_total FROM cart WHERE sc_id = @id".into(),
                frequency: 1.0,
            },
        ];
        let recs = recommend(&db, &workload, &AdvisorOptions::default()).unwrap();
        assert_eq!(recs.len(), 1, "{recs:?}");
        assert_eq!(recs[0].view_name, "cv_item");
        assert!(recs[0].create_sql.contains("i_id"), "{}", recs[0].create_sql);
        assert!(recs[0].create_sql.contains("i_title"));
        assert!(
            !recs[0].create_sql.contains("i_desc"),
            "unreferenced column must not be projected: {}",
            recs[0].create_sql
        );
    }

    #[test]
    fn recommended_sql_parses() {
        let db = db();
        let workload = vec![WorkloadEntry {
            sql: "SELECT i_title, i_cost FROM item WHERE i_cost < 10".into(),
            frequency: 50.0,
        }];
        let recs = recommend(&db, &workload, &AdvisorOptions::default()).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(mtc_sql::parse_statement(&recs[0].create_sql).is_ok());
    }

    #[test]
    fn unparseable_entries_are_skipped() {
        let db = db();
        let workload = vec![WorkloadEntry {
            sql: "THIS IS NOT SQL".into(),
            frequency: 1000.0,
        }];
        let recs = recommend(&db, &workload, &AdvisorOptions::default()).unwrap();
        assert!(recs.is_empty());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::{BackendServer, Connection};

    /// The §7 workflow end to end: trace the live workload on the backend,
    /// feed the trace to the advisor, get cached-view DDL out.
    #[test]
    fn advisor_consumes_a_live_statement_trace() {
        let backend = BackendServer::new("b");
        backend
            .run_script(
                "CREATE TABLE item (i_id INT NOT NULL PRIMARY KEY, i_title VARCHAR, i_extra VARCHAR);
                 CREATE TABLE scratch (s_id INT NOT NULL PRIMARY KEY, s_v INT);
                 GRANT SELECT ON item TO app;
                 GRANT INSERT ON scratch TO app;
                 GRANT UPDATE ON scratch TO app;",
            )
            .unwrap();
        let rows: Vec<String> = (1..=2000)
            .map(|i| format!("INSERT INTO item VALUES ({i}, 't{i}', 'x')"))
            .collect();
        backend.run_script(&rows.join(";")).unwrap();
        backend.analyze();

        backend.start_statement_trace();
        let conn = Connection::connect_as(backend.clone(), "app");
        for i in 1..=40 {
            conn.query(&format!("SELECT i_title FROM item WHERE i_id = {i}"))
                .unwrap();
        }
        conn.query("INSERT INTO scratch VALUES (1, 0)").unwrap();
        for _ in 0..30 {
            conn.query("UPDATE scratch SET s_v = s_v + 1 WHERE s_id = 1")
                .unwrap();
        }
        let trace = backend.stop_statement_trace();
        assert!(trace.len() >= 2);
        // Identical statements aggregate by count.
        let update_entry = trace
            .iter()
            .find(|e| e.sql.starts_with("UPDATE scratch"))
            .expect("update traced");
        assert_eq!(update_entry.frequency, 30.0);

        let recs = recommend(&backend.db.read(), &trace, &AdvisorOptions::default()).unwrap();
        assert_eq!(recs.len(), 1, "{recs:?}");
        assert_eq!(recs[0].view_name, "cv_item");
        assert!(!recs[0].create_sql.contains("i_extra"));
        // Tracing is off again: no further growth.
        conn.query("SELECT i_title FROM item WHERE i_id = 1").unwrap();
        assert!(backend.stop_statement_trace().is_empty());
    }
}
