//! Cache-design advisor (§7: "there are currently no tools to help a DBA
//! define a caching strategy by analyzing a workload ... such a design tool
//! would be highly desirable").
//!
//! Given a workload trace (SQL text + relative frequency), the advisor
//! scores each base table by how much *read* work touches it versus how
//! much *write* traffic it receives, and recommends select-project cached
//! views (projecting exactly the referenced columns) for the tables where
//! offloading pays. Stored procedures whose statements are read-only and
//! fully covered by the recommended views are suggested for copying.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mtc_util::sync::Mutex;

use mtc_sql::{parse_statement, Select, Statement, TableRef};
use mtc_storage::Database;
use mtc_types::Result;

/// One workload entry: a statement and its relative frequency.
#[derive(Debug, Clone)]
pub struct WorkloadEntry {
    pub sql: String,
    pub frequency: f64,
}

/// A recommended cached view.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    pub view_name: String,
    /// `CREATE MATERIALIZED VIEW …` definition text, ready to run against a
    /// cache server.
    pub create_sql: String,
    /// The projected columns (referenced + primary key), in schema order.
    pub columns: Vec<String>,
    /// Supporting indexes for the view's backing table, as
    /// `(index_name, column)` — one per non-key column the workload
    /// filters on (the paper's "all indexes on the cache servers were
    /// identical to the backend"; without them a point query on a non-key
    /// column costs a full local scan and the optimizer keeps routing it
    /// to the backend).
    pub indexes: Vec<(String, String)>,
    /// Estimated read work units per unit time offloaded by this view.
    pub benefit: f64,
    /// Estimated replication apply work per unit time it costs.
    pub maintenance: f64,
}

/// Advisor configuration.
#[derive(Debug, Clone)]
pub struct AdvisorOptions {
    /// Only recommend views whose benefit exceeds `min_benefit_ratio` times
    /// their maintenance cost.
    pub min_benefit_ratio: f64,
}

impl Default for AdvisorOptions {
    fn default() -> AdvisorOptions {
        AdvisorOptions {
            min_benefit_ratio: 2.0,
        }
    }
}

#[derive(Default)]
struct TableTraffic {
    read_freq: f64,
    write_freq: f64,
    columns: BTreeSet<String>,
    /// Columns appearing in WHERE clauses — candidates for supporting
    /// indexes on the cached view's backing table.
    filter_columns: BTreeSet<String>,
}

/// Per-table read/write traffic of a workload trace, with proc bodies
/// expanded through the catalog. Shared by the offline [`recommend`] pass
/// and the online advisor's cold-view detection.
fn gather_traffic(db: &Database, workload: &[WorkloadEntry]) -> BTreeMap<String, TableTraffic> {
    let mut traffic: BTreeMap<String, TableTraffic> = BTreeMap::new();

    for entry in workload {
        let statements = match mtc_sql::parse_statements(&entry.sql) {
            Ok(s) => s,
            Err(_) => continue, // skip unparseable trace entries
        };
        for stmt in statements {
            match &stmt {
                Statement::Select(sel) => {
                    record_select(db, sel, entry.frequency, &mut traffic);
                }
                Statement::Insert { table, .. }
                | Statement::Update { table, .. }
                | Statement::Delete { table, .. } => {
                    traffic.entry(table.clone()).or_default().write_freq +=
                        entry.frequency;
                }
                Statement::Exec { proc, .. } => {
                    if let Some(def) = db.catalog.procedure(proc) {
                        for s in &def.body {
                            match s {
                                Statement::Select(sel) => {
                                    record_select(db, sel, entry.frequency, &mut traffic)
                                }
                                Statement::Insert { table, .. }
                                | Statement::Update { table, .. }
                                | Statement::Delete { table, .. } => {
                                    traffic.entry(table.clone()).or_default().write_freq +=
                                        entry.frequency;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    traffic
}

/// Analyzes a workload against the backend catalog and recommends cached
/// views.
pub fn recommend(
    db: &Database,
    workload: &[WorkloadEntry],
    options: &AdvisorOptions,
) -> Result<Vec<Recommendation>> {
    let traffic = gather_traffic(db, workload);
    let mut recs = Vec::new();
    for (table, t) in &traffic {
        if t.read_freq <= 0.0 {
            continue;
        }
        let Ok(base) = db.table_ref(table) else {
            continue;
        };
        let rows = db
            .catalog
            .stats(table)
            .map(|s| s.row_count as f64)
            .unwrap_or(1000.0);
        // Benefit: read frequency × per-query scan work saved.
        let benefit = t.read_freq * rows;
        // Maintenance: write frequency × per-change apply work.
        let maintenance = t.write_freq * 3.0;
        if benefit < options.min_benefit_ratio * maintenance.max(1.0) {
            continue;
        }
        // Project referenced columns plus the primary key (required for
        // replication apply).
        let mut cols: BTreeSet<String> = t
            .columns
            .iter()
            .filter(|c| base.schema().contains(c))
            .cloned()
            .collect();
        for &pk in base.primary_key() {
            cols.insert(base.schema().column(pk).name.clone());
        }
        // Keep schema order.
        let ordered: Vec<String> = base
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .filter(|c| cols.contains(c))
            .collect();
        let view_name = format!("cv_{table}");
        let pk_names: BTreeSet<String> = base
            .primary_key()
            .iter()
            .map(|&i| base.schema().column(i).name.clone())
            .collect();
        let indexes: Vec<(String, String)> = ordered
            .iter()
            .filter(|c| t.filter_columns.contains(*c) && !pk_names.contains(*c))
            .map(|c| (format!("ix_{view_name}_{c}"), c.clone()))
            .collect();
        recs.push(Recommendation {
            create_sql: format!(
                "CREATE MATERIALIZED VIEW {view_name} AS SELECT {} FROM {table}",
                ordered.join(", ")
            ),
            columns: ordered,
            indexes,
            view_name,
            benefit,
            maintenance,
        });
    }
    recs.sort_by(|a, b| b.benefit.total_cmp(&a.benefit));
    Ok(recs)
}

fn record_select(
    db: &Database,
    sel: &Select,
    freq: f64,
    traffic: &mut BTreeMap<String, TableTraffic>,
) {
    fn tables(t: &TableRef, out: &mut Vec<String>) {
        match t {
            TableRef::Table { name, .. } => out.push(name.clone()),
            TableRef::Join { left, right, .. } => {
                tables(left, out);
                tables(right, out);
            }
        }
    }
    let mut names = Vec::new();
    for t in &sel.from {
        tables(t, &mut names);
    }
    // Column references anywhere in the statement, assigned to whichever
    // table's schema contains them.
    let mut cols: Vec<String> = Vec::new();
    let mut where_cols: Vec<String> = Vec::new();
    if let Some(w) = &sel.selection {
        cols.extend(w.columns().iter().map(|c| c.to_string()));
        where_cols.extend(w.columns().iter().map(|c| c.to_string()));
    }
    for item in &sel.projection {
        if let mtc_sql::SelectItem::Expr { expr, .. } = item {
            cols.extend(expr.columns().iter().map(|c| c.to_string()));
        }
    }
    for g in &sel.group_by {
        cols.extend(g.columns().iter().map(|c| c.to_string()));
    }
    for o in &sel.order_by {
        cols.extend(o.expr.columns().iter().map(|c| c.to_string()));
    }
    for name in names {
        let entry = traffic.entry(name.clone()).or_default();
        entry.read_freq += freq;
        if let Ok(t) = db.table_ref(&name) {
            let wildcard = sel
                .projection
                .iter()
                .any(|i| matches!(i, mtc_sql::SelectItem::Wildcard));
            if wildcard {
                for c in t.schema().columns() {
                    entry.columns.insert(c.name.clone());
                }
            }
            for c in &cols {
                let suffix = c.rsplit('.').next().unwrap_or(c);
                if t.schema().contains(suffix) {
                    entry.columns.insert(suffix.to_string());
                }
            }
            for c in &where_cols {
                let suffix = c.rsplit('.').next().unwrap_or(c);
                if t.schema().contains(suffix) {
                    entry.filter_columns.insert(suffix.to_string());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Online adaptive advisor
// ---------------------------------------------------------------------------

/// Configuration of the online [`AdaptiveAdvisor`].
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Offline scoring knobs reused per epoch (benefit/maintenance ratio).
    pub options: AdvisorOptions,
    /// At most this many cached views are created per epoch, so one hot
    /// phase cannot blow up replication churn in a single tick.
    pub max_creates_per_epoch: usize,
    /// An advisor-created view must be cold (no reads on its base table)
    /// for this many consecutive epochs before it is dropped.
    pub drop_patience: u32,
    /// A freshly created view is immune to dropping for this many epochs,
    /// and a freshly dropped view cannot be re-created for the same span —
    /// the hysteresis that stops create/drop flapping at a phase boundary.
    pub grace_epochs: u32,
    /// Fraction of the donor cache's budget moved per rebalance decision.
    pub rebalance_step: f64,
    /// Neither cache tier is ever shrunk below this floor.
    pub min_budget: u64,
}

impl Default for AdvisorConfig {
    fn default() -> AdvisorConfig {
        AdvisorConfig {
            options: AdvisorOptions::default(),
            max_creates_per_epoch: 2,
            drop_patience: 3,
            grace_epochs: 2,
            rebalance_step: 0.25,
            min_budget: 16 * 1024,
        }
    }
}

/// Lifetime counters of one advisor instance — every decision class it can
/// take, plus the suppressions (hysteresis at work is observable, not
/// silent).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AdvisorStats {
    /// Epochs closed by [`AdaptiveAdvisor::tick`].
    pub epochs: u64,
    /// Cached views created at runtime.
    pub views_created: u64,
    /// Existing cached views widened (dropped and re-created with extra
    /// columns) because the working set's column footprint grew.
    pub views_widened: u64,
    /// Supporting indexes created on advisor-managed views.
    pub indexes_created: u64,
    /// Advisor-created views dropped again after going cold.
    pub views_dropped: u64,
    /// Creations withheld by hysteresis (recently dropped) or the per-epoch
    /// limit.
    pub creates_suppressed: u64,
    /// Drops withheld by the grace period or remaining patience.
    pub drops_suppressed: u64,
    /// L1 ↔ fragment budget rebalance decisions taken.
    pub budget_moves: u64,
    /// Total bytes of budget moved by those decisions.
    pub bytes_rebalanced: u64,
}

/// An advisor-created view under observation.
#[derive(Debug)]
struct TrackedView {
    table: String,
    age: u32,
    cold: u32,
}

/// Counter snapshot of one cache tier at the previous epoch boundary, so a
/// tick reasons about *this epoch's* deltas, not lifetime totals.
#[derive(Debug, Default, Clone, Copy)]
struct TierMark {
    hits: u64,
    pressure: u64, // evictions + admission rejects
}

impl TierMark {
    fn of(s: &crate::result_cache::ResultCacheStats) -> TierMark {
        TierMark {
            hits: s.hits,
            pressure: s.evictions + s.admission_rejects,
        }
    }
}

#[derive(Default)]
struct AdvisorInner {
    /// Observation window: statement text → occurrences since last tick.
    window: BTreeMap<String, f64>,
    /// Views this advisor created and still owns.
    tracked: BTreeMap<String, TrackedView>,
    /// view name → epochs since the advisor dropped it (re-create
    /// hysteresis).
    recently_dropped: BTreeMap<String, u32>,
    stmt_mark: TierMark,
    frag_mark: TierMark,
    stats: AdvisorStats,
    log: VecDeque<String>,
}

/// Cap on distinct statements per window: beyond it, new texts are
/// ignored until the next tick (the hot set is long since inside).
const WINDOW_CAP: usize = 4096;
/// Decision-log lines retained for `explain` output.
const LOG_CAP: usize = 64;

/// The online cache advisor: attach with [`crate::CacheServer::set_advisor`],
/// then close epochs with [`crate::CacheServer::advisor_tick`] (the bench
/// harness ticks every N interactions; a real deployment would tick on a
/// timer). Each tick re-runs the offline [`recommend`] analysis over the
/// statements observed since the last tick and acts on it: cached views
/// are created through the ordinary DDL + bulk-populate path, cold
/// advisor-created views are dropped, and the statement/fragment cache
/// byte budgets are re-partitioned toward the tier showing both hits and
/// pressure. Every decision — and every hysteresis suppression — is
/// logged as an `advisor:` line.
pub struct AdaptiveAdvisor {
    cfg: AdvisorConfig,
    inner: Mutex<AdvisorInner>,
}

impl AdaptiveAdvisor {
    pub fn new(cfg: AdvisorConfig) -> AdaptiveAdvisor {
        AdaptiveAdvisor {
            cfg,
            inner: Mutex::new(AdvisorInner::default()),
        }
    }

    /// Records one executed statement into the current window.
    pub fn observe(&self, sql: &str) {
        let mut inner = self.inner.lock();
        if inner.window.len() >= WINDOW_CAP && !inner.window.contains_key(sql) {
            return;
        }
        *inner.window.entry(sql.to_string()).or_insert(0.0) += 1.0;
    }

    /// Lifetime decision counters.
    pub fn stats(&self) -> AdvisorStats {
        self.inner.lock().stats
    }

    /// The last `n` decision-log lines, oldest first.
    pub fn log_tail(&self, n: usize) -> Vec<String> {
        let inner = self.inner.lock();
        inner
            .log
            .iter()
            .skip(inner.log.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Creates the supporting indexes of a freshly created or widened view
    /// — without them, point queries on non-key columns cost a full local
    /// scan and the optimizer keeps routing them to the backend.
    fn build_indexes(
        &self,
        server: &crate::CacheServer,
        view: &str,
        indexes: &[(String, String)],
        epoch_log: &mut Vec<String>,
    ) {
        for (index, col) in indexes {
            match server.create_index_on_view(index, view, &[col.clone()]) {
                Ok(()) => {
                    self.inner.lock().stats.indexes_created += 1;
                    epoch_log.push(format!("advisor: index {index} on {view}({col})"));
                }
                Err(e) => {
                    epoch_log.push(format!("advisor: index {index} failed: {e}"));
                }
            }
        }
    }

    /// Closes the current epoch against `server`; returns this epoch's
    /// decision lines. See the type-level docs for what a tick does.
    pub fn tick(&self, server: &crate::CacheServer) -> Vec<String> {
        let mut epoch_log: Vec<String> = Vec::new();
        // Drain the window and advance hysteresis clocks under the lock;
        // all server-side actions run with it released (observe() from
        // concurrent sessions must never wait on replication DDL).
        let window = {
            let mut inner = self.inner.lock();
            inner.stats.epochs += 1;
            let window: Vec<WorkloadEntry> = std::mem::take(&mut inner.window)
                .into_iter()
                .map(|(sql, frequency)| WorkloadEntry { sql, frequency })
                .collect();
            for since in inner.recently_dropped.values_mut() {
                *since += 1;
            }
            let grace = self.cfg.grace_epochs;
            inner.recently_dropped.retain(|_, since| *since <= grace);
            window
        };

        let backend = server.backend();
        let traffic = {
            let db = backend.db.read();
            gather_traffic(&db, &window)
        };
        let recs = {
            let db = backend.db.read();
            recommend(&db, &window, &self.cfg.options).unwrap_or_default()
        };

        // Base tables already covered by SOME cached view on this server
        // (static-deployed or advisor-created), with the columns that view
        // actually carries: never create a second view over the same table,
        // but DO widen one whose column footprint the workload outgrew.
        let covered: BTreeMap<String, (String, BTreeSet<String>)> = {
            let db = server.db.read();
            db.catalog
                .views()
                .filter(|v| v.is_cached)
                .filter_map(|v| {
                    let base = v.base_object().map(mtc_types::normalize_ident)?;
                    let cols: BTreeSet<String> = db
                        .table_ref(&v.name)
                        .map(|t| {
                            t.schema().columns().iter().map(|c| c.name.clone()).collect()
                        })
                        .unwrap_or_default();
                    Some((base, (v.name.clone(), cols)))
                })
                .collect()
        };

        // --- Create / widen phase -----------------------------------------
        let mut created = 0usize;
        for rec in &recs {
            let table = mtc_types::normalize_ident(
                rec.view_name.strip_prefix("cv_").unwrap_or(&rec.view_name),
            );
            if let Some((view, existing)) = covered.get(&table) {
                // The table is served locally. If this epoch's statements
                // reference columns the view doesn't carry (the phase shift
                // changed the column footprint, not just the table set),
                // those statements are silently routing remote: widen the
                // view — drop and re-create with the union — under the same
                // per-epoch creation budget.
                let missing: Vec<String> = rec
                    .columns
                    .iter()
                    .filter(|c| !existing.contains(*c))
                    .cloned()
                    .collect();
                if missing.is_empty() {
                    continue; // fully covered — nothing to decide
                }
                if created >= self.cfg.max_creates_per_epoch {
                    let mut inner = self.inner.lock();
                    inner.stats.creates_suppressed += 1;
                    epoch_log.push(format!(
                        "advisor: suppress widen {view} (epoch limit {})",
                        self.cfg.max_creates_per_epoch
                    ));
                    continue;
                }
                let merged: BTreeSet<String> =
                    existing.union(&rec.columns.iter().cloned().collect()).cloned().collect();
                let ordered: Vec<String> = {
                    let db = backend.db.read();
                    match db.table_ref(&table) {
                        Ok(t) => t
                            .schema()
                            .columns()
                            .iter()
                            .map(|c| c.name.clone())
                            .filter(|c| merged.contains(c))
                            .collect(),
                        Err(_) => continue,
                    }
                };
                let select = format!("SELECT {} FROM {table}", ordered.join(", "));
                let outcome = server
                    .drop_cached_view(view)
                    .and_then(|()| server.create_cached_view(view, &select));
                match outcome {
                    Ok(()) => {
                        created += 1;
                        {
                            let mut inner = self.inner.lock();
                            inner.stats.views_widened += 1;
                            if let Some(t) = inner.tracked.get_mut(view) {
                                t.cold = 0;
                            }
                        }
                        epoch_log.push(format!(
                            "advisor: widen {view} (+{})",
                            missing.join(", +")
                        ));
                        // The re-created backing table lost its indexes:
                        // rebuild the supporting ones for this window.
                        self.build_indexes(server, view, &rec.indexes, &mut epoch_log);
                    }
                    Err(e) => {
                        epoch_log.push(format!("advisor: widen {view} failed: {e}"));
                    }
                }
                continue;
            }
            let mut inner = self.inner.lock();
            if inner.recently_dropped.contains_key(&rec.view_name) {
                inner.stats.creates_suppressed += 1;
                epoch_log.push(format!(
                    "advisor: suppress create {} (dropped {} epochs ago, hysteresis)",
                    rec.view_name, inner.recently_dropped[&rec.view_name]
                ));
                continue;
            }
            if created >= self.cfg.max_creates_per_epoch {
                inner.stats.creates_suppressed += 1;
                epoch_log.push(format!(
                    "advisor: suppress create {} (epoch limit {})",
                    rec.view_name, self.cfg.max_creates_per_epoch
                ));
                continue;
            }
            drop(inner);
            let Ok(Statement::CreateView { query, .. }) = parse_statement(&rec.create_sql)
            else {
                continue;
            };
            match server.create_cached_view(&rec.view_name, &query.to_string()) {
                Ok(()) => {
                    created += 1;
                    {
                        let mut inner = self.inner.lock();
                        inner.stats.views_created += 1;
                        inner.tracked.insert(
                            rec.view_name.clone(),
                            TrackedView {
                                table: table.clone(),
                                age: 0,
                                cold: 0,
                            },
                        );
                    }
                    epoch_log.push(format!(
                        "advisor: create {} (benefit {:.0}, maintenance {:.0})",
                        rec.view_name, rec.benefit, rec.maintenance
                    ));
                    self.build_indexes(server, &rec.view_name, &rec.indexes, &mut epoch_log);
                }
                Err(e) => {
                    epoch_log.push(format!(
                        "advisor: create {} failed: {e}",
                        rec.view_name
                    ));
                }
            }
        }

        // --- Drop phase ---------------------------------------------------
        let mut to_drop: Vec<String> = Vec::new();
        {
            let mut inner = self.inner.lock();
            let cfg = &self.cfg;
            let AdvisorInner { tracked, stats, .. } = &mut *inner;
            let mut suppressed: Vec<String> = Vec::new();
            for (view, t) in tracked.iter_mut() {
                t.age += 1;
                let reads = traffic.get(&t.table).map(|x| x.read_freq).unwrap_or(0.0);
                if reads > 0.0 {
                    t.cold = 0;
                    continue;
                }
                t.cold += 1;
                if t.age <= cfg.grace_epochs || t.cold < cfg.drop_patience {
                    stats.drops_suppressed += 1;
                    suppressed.push(format!(
                        "advisor: suppress drop {view} (cold {}/{} epochs, age {})",
                        t.cold, cfg.drop_patience, t.age
                    ));
                } else {
                    to_drop.push(view.clone());
                }
            }
            epoch_log.extend(suppressed);
        }
        for view in to_drop {
            match server.drop_cached_view(&view) {
                Ok(()) => {
                    let mut inner = self.inner.lock();
                    inner.stats.views_dropped += 1;
                    inner.tracked.remove(&view);
                    inner.recently_dropped.insert(view.clone(), 0);
                    epoch_log.push(format!(
                        "advisor: drop {view} (cold {} epochs)",
                        self.cfg.drop_patience
                    ));
                }
                Err(e) => {
                    epoch_log.push(format!("advisor: drop {view} failed: {e}"));
                    self.inner.lock().tracked.remove(&view);
                }
            }
        }

        // --- Budget rebalance ---------------------------------------------
        // Per-epoch deltas of each tier. The tier that shows BOTH more hits
        // and real pressure (evictions / admission rejects) this epoch is
        // starved; feed it from the other tier, one damped step at a time.
        if server.fragment_cache.is_enabled() {
            let stmt_now = TierMark::of(&server.result_cache.stats());
            let frag_now = TierMark::of(&server.fragment_cache.stats());
            let mut inner = self.inner.lock();
            let d_stmt_hits = stmt_now.hits.saturating_sub(inner.stmt_mark.hits);
            let d_frag_hits = frag_now.hits.saturating_sub(inner.frag_mark.hits);
            let d_stmt_pressure = stmt_now.pressure.saturating_sub(inner.stmt_mark.pressure);
            let d_frag_pressure = frag_now.pressure.saturating_sub(inner.frag_mark.pressure);
            inner.stmt_mark = stmt_now;
            inner.frag_mark = frag_now;
            drop(inner);
            // 1.5× margin: a near-tie never moves bytes back and forth.
            let rebalance = if d_frag_pressure > 0
                && d_frag_hits as f64 > 1.5 * d_stmt_hits as f64
            {
                Some((&server.result_cache, &server.fragment_cache, "L1->fragment"))
            } else if d_stmt_pressure > 0 && d_stmt_hits as f64 > 1.5 * d_frag_hits as f64 {
                Some((&server.fragment_cache, &server.result_cache, "fragment->L1"))
            } else {
                None
            };
            if let Some((donor, taker, dir)) = rebalance {
                let step = ((donor.budget() as f64 * self.cfg.rebalance_step) as u64)
                    .min(donor.budget().saturating_sub(self.cfg.min_budget));
                if step > 0 {
                    donor.set_budget(donor.budget() - step);
                    taker.set_budget(taker.budget() + step);
                    let mut inner = self.inner.lock();
                    inner.stats.budget_moves += 1;
                    inner.stats.bytes_rebalanced += step;
                    epoch_log.push(format!(
                        "advisor: rebalance {step}B {dir} (hits Δ stmt {d_stmt_hits} frag {d_frag_hits}, pressure Δ stmt {d_stmt_pressure} frag {d_frag_pressure})"
                    ));
                }
            }
        }

        let mut inner = self.inner.lock();
        for line in &epoch_log {
            if inner.log.len() >= LOG_CAP {
                inner.log.pop_front();
            }
            inner.log.push_back(line.clone());
        }
        epoch_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_storage::RowChange;
    use mtc_types::{row, Column, DataType, Schema};

    pub(super) fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            "item",
            Schema::new(vec![
                Column::not_null("i_id", DataType::Int),
                Column::new("i_title", DataType::Str),
                Column::new("i_cost", DataType::Float),
                Column::new("i_desc", DataType::Str),
            ]),
            &["i_id".into()],
        )
        .unwrap();
        db.create_table(
            "cart",
            Schema::new(vec![
                Column::not_null("sc_id", DataType::Int),
                Column::new("sc_total", DataType::Float),
            ]),
            &["sc_id".into()],
        )
        .unwrap();
        let changes: Vec<_> = (1..=5000)
            .map(|i| RowChange::Insert {
                table: "item".into(),
                row: row![i, format!("t{i}"), 1.0, "d"],
            })
            .collect();
        db.apply(0, changes).unwrap();
        db.analyze();
        db
    }

    #[test]
    fn read_heavy_table_recommended_write_heavy_not() {
        let db = db();
        let workload = vec![
            WorkloadEntry {
                sql: "SELECT i_title FROM item WHERE i_id = @id".into(),
                frequency: 100.0,
            },
            WorkloadEntry {
                sql: "UPDATE cart SET sc_total = 1 WHERE sc_id = @id".into(),
                frequency: 100.0,
            },
            WorkloadEntry {
                sql: "SELECT sc_total FROM cart WHERE sc_id = @id".into(),
                frequency: 1.0,
            },
        ];
        let recs = recommend(&db, &workload, &AdvisorOptions::default()).unwrap();
        assert_eq!(recs.len(), 1, "{recs:?}");
        assert_eq!(recs[0].view_name, "cv_item");
        assert!(recs[0].create_sql.contains("i_id"), "{}", recs[0].create_sql);
        assert!(recs[0].create_sql.contains("i_title"));
        assert!(
            !recs[0].create_sql.contains("i_desc"),
            "unreferenced column must not be projected: {}",
            recs[0].create_sql
        );
    }

    #[test]
    fn recommended_sql_parses() {
        let db = db();
        let workload = vec![WorkloadEntry {
            sql: "SELECT i_title, i_cost FROM item WHERE i_cost < 10".into(),
            frequency: 50.0,
        }];
        let recs = recommend(&db, &workload, &AdvisorOptions::default()).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(mtc_sql::parse_statement(&recs[0].create_sql).is_ok());
    }

    #[test]
    fn unparseable_entries_are_skipped() {
        let db = db();
        let workload = vec![WorkloadEntry {
            sql: "THIS IS NOT SQL".into(),
            frequency: 1000.0,
        }];
        let recs = recommend(&db, &workload, &AdvisorOptions::default()).unwrap();
        assert!(recs.is_empty());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::{BackendServer, Connection};

    /// The §7 workflow end to end: trace the live workload on the backend,
    /// feed the trace to the advisor, get cached-view DDL out.
    #[test]
    fn advisor_consumes_a_live_statement_trace() {
        let backend = BackendServer::new("b");
        backend
            .run_script(
                "CREATE TABLE item (i_id INT NOT NULL PRIMARY KEY, i_title VARCHAR, i_extra VARCHAR);
                 CREATE TABLE scratch (s_id INT NOT NULL PRIMARY KEY, s_v INT);
                 GRANT SELECT ON item TO app;
                 GRANT INSERT ON scratch TO app;
                 GRANT UPDATE ON scratch TO app;",
            )
            .unwrap();
        let rows: Vec<String> = (1..=2000)
            .map(|i| format!("INSERT INTO item VALUES ({i}, 't{i}', 'x')"))
            .collect();
        backend.run_script(&rows.join(";")).unwrap();
        backend.analyze();

        backend.start_statement_trace();
        let conn = Connection::connect_as(backend.clone(), "app");
        for i in 1..=40 {
            conn.query(&format!("SELECT i_title FROM item WHERE i_id = {i}"))
                .unwrap();
        }
        conn.query("INSERT INTO scratch VALUES (1, 0)").unwrap();
        for _ in 0..30 {
            conn.query("UPDATE scratch SET s_v = s_v + 1 WHERE s_id = 1")
                .unwrap();
        }
        let trace = backend.stop_statement_trace();
        assert!(trace.len() >= 2);
        // Identical statements aggregate by count.
        let update_entry = trace
            .iter()
            .find(|e| e.sql.starts_with("UPDATE scratch"))
            .expect("update traced");
        assert_eq!(update_entry.frequency, 30.0);

        let recs = recommend(&backend.db.read(), &trace, &AdvisorOptions::default()).unwrap();
        assert_eq!(recs.len(), 1, "{recs:?}");
        assert_eq!(recs[0].view_name, "cv_item");
        assert!(!recs[0].create_sql.contains("i_extra"));
        // Tracing is off again: no further growth.
        conn.query("SELECT i_title FROM item WHERE i_id = 1").unwrap();
        assert!(backend.stop_statement_trace().is_empty());
    }
}

#[cfg(test)]
mod scoring_tests {
    use super::*;

    #[test]
    fn scoring_is_reads_times_rows_versus_writes_times_apply_cost() {
        // benefit = read_freq × row_count, maintenance = write_freq × 3:
        // the exact quantities the create/drop threshold compares.
        let db = super::tests::db();
        let workload = vec![
            WorkloadEntry {
                sql: "SELECT i_title FROM item WHERE i_id = @id".into(),
                frequency: 40.0,
            },
            WorkloadEntry {
                sql: "UPDATE item SET i_cost = 1 WHERE i_id = @id".into(),
                frequency: 7.0,
            },
        ];
        let recs = recommend(&db, &workload, &AdvisorOptions::default()).unwrap();
        assert_eq!(recs.len(), 1);
        let rec = &recs[0];
        assert_eq!(rec.benefit, 40.0 * 5000.0, "read_freq x row_count");
        assert_eq!(rec.maintenance, 7.0 * 3.0, "write_freq x apply cost");

        // The threshold is benefit >= ratio × maintenance: push the ratio
        // above benefit/maintenance and the same workload yields nothing.
        let strict = AdvisorOptions {
            min_benefit_ratio: (40.0 * 5000.0) / (7.0 * 3.0) + 1.0,
        };
        assert!(recommend(&db, &workload, &strict).unwrap().is_empty());
    }

    #[test]
    fn filter_columns_become_supporting_indexes_except_the_key() {
        let db = super::tests::db();
        let workload = vec![
            WorkloadEntry {
                sql: "SELECT i_cost FROM item WHERE i_title = 'rust'".into(),
                frequency: 30.0,
            },
            WorkloadEntry {
                sql: "SELECT i_title FROM item WHERE i_id = @id".into(),
                frequency: 30.0,
            },
        ];
        let recs = recommend(&db, &workload, &AdvisorOptions::default()).unwrap();
        assert_eq!(recs.len(), 1);
        // i_title is filtered on and not the key: it gets an index. i_id is
        // the primary key of the backing table: no redundant index.
        assert_eq!(
            recs[0].indexes,
            vec![("ix_cv_item_i_title".to_string(), "i_title".to_string())],
            "{:?}",
            recs[0]
        );
    }
}

#[cfg(test)]
mod deploy_tests {
    use super::*;
    use crate::{BackendServer, CacheServer};
    use mtc_replication::ReplicationHub;
    use mtc_util::sync::Mutex as SyncMutex;
    use std::sync::Arc;

    fn backend() -> Arc<BackendServer> {
        let backend = BackendServer::new("b");
        backend
            .run_script(
                "CREATE TABLE item (i_id INT NOT NULL PRIMARY KEY, i_title VARCHAR, i_cost FLOAT)",
            )
            .unwrap();
        let rows: Vec<String> = (1..=500)
            .map(|i| format!("INSERT INTO item VALUES ({i}, 't{i}', {i}.5)"))
            .collect();
        backend.run_script(&rows.join(";")).unwrap();
        backend.analyze();
        backend
    }

    /// Satellite proof of the §7 loop: recommendations deploy through the
    /// ordinary DDL path and the traced workload is then answered locally —
    /// including point queries on a non-key column, which need the
    /// recommended supporting index to win the local-vs-remote cost race.
    #[test]
    fn recommended_views_deploy_and_answer_the_workload_locally() {
        let backend = backend();
        let workload = vec![
            WorkloadEntry {
                sql: "SELECT i_title FROM item WHERE i_id = @id".into(),
                frequency: 50.0,
            },
            WorkloadEntry {
                sql: "SELECT i_id, i_cost FROM item WHERE i_title = @t".into(),
                frequency: 50.0,
            },
        ];
        let recs = recommend(&backend.db.read(), &workload, &AdvisorOptions::default()).unwrap();
        assert_eq!(recs.len(), 1, "{recs:?}");

        let hub = Arc::new(SyncMutex::new(ReplicationHub::new(backend.db.clone())));
        let cache = CacheServer::create("c", backend, hub);
        for rec in &recs {
            let Ok(Statement::CreateView { query, .. }) = parse_statement(&rec.create_sql)
            else {
                panic!("recommendation must parse: {}", rec.create_sql);
            };
            cache.create_cached_view(&rec.view_name, &query.to_string()).unwrap();
            for (index, col) in &rec.indexes {
                cache
                    .create_index_on_view(index, &rec.view_name, &[col.clone()])
                    .unwrap();
            }
        }

        for (sql, expect) in [
            ("SELECT i_title FROM item WHERE i_id = 7", "t7"),
            ("SELECT i_title FROM item WHERE i_title = 't9'", "t9"),
        ] {
            let r = cache.execute(sql, &Default::default(), "dbo").unwrap();
            assert_eq!(r.rows.len(), 1, "{sql}");
            assert_eq!(r.rows[0][0], mtc_types::Value::str(expect), "{sql}");
            assert_eq!(
                r.metrics.remote_rtts, 0,
                "the deployed view + index must answer `{sql}` locally"
            );
        }
    }

    /// The widen path: a view created for a narrow column footprint is
    /// dropped and re-created with the union when the observed workload
    /// outgrows it, and the widened statement then routes locally.
    #[test]
    fn tick_widens_a_view_when_the_column_footprint_grows() {
        let backend = backend();
        let hub = Arc::new(SyncMutex::new(ReplicationHub::new(backend.db.clone())));
        let cache = CacheServer::create("c", backend, hub);
        cache
            .create_cached_view("cv_item", "SELECT i_id, i_title FROM item")
            .unwrap();

        let advisor = Arc::new(AdaptiveAdvisor::new(AdvisorConfig::default()));
        cache.set_advisor(Some(advisor.clone()));
        // The observed phase needs i_cost, which cv_item doesn't carry.
        for _ in 0..20 {
            cache
                .execute(
                    "SELECT i_cost FROM item WHERE i_id = 3",
                    &Default::default(),
                    "dbo",
                )
                .unwrap();
        }
        let decisions = cache.advisor_tick();
        assert!(
            decisions.iter().any(|l| l.starts_with("advisor: widen cv_item (+i_cost")),
            "{decisions:?}"
        );
        assert_eq!(advisor.stats().views_widened, 1);

        let r = cache
            .execute("SELECT i_cost FROM item WHERE i_id = 3", &Default::default(), "dbo")
            .unwrap();
        assert_eq!(r.metrics.remote_rtts, 0, "widened view must serve locally");
        assert_eq!(r.rows[0][0], mtc_types::Value::Float(3.5));
    }
}
