//! The backend database server.

use std::collections::BTreeMap;
use std::sync::Arc;

use mtc_util::sync::{Mutex, RwLock};

use mtc_engine::eval::Bindings;
use mtc_engine::{
    bind_select, execute, ExecContext, OptimizerOptions, QueryResult, RemoteExecutor,
};
use mtc_replication::{Clock, WallClock};
use mtc_sql::{parse_statement, parse_statements, Permission, Select, Statement, TableRef};
use mtc_storage::{Database, ProcedureDef, RowChange, ViewMeta};
use mtc_types::{Column, Error, Result, Row, Schema};

use crate::dml::{compile_dml, derive_view_changes, DML_STATEMENT_OVERHEAD, WORK_PER_CHANGE};
use crate::plan_cache::{param_signature, CachedPlan, PlanCache};
use crate::procs::{bind_proc_args, parse_proc_body};
use crate::stats::SharedServerStats;

/// The backend server: database of record, local execution of everything,
/// eager materialized-view maintenance, and the replication publisher.
pub struct BackendServer {
    name: String,
    pub db: Arc<RwLock<Database>>,
    pub options: OptimizerOptions,
    pub clock: Arc<dyn Clock>,
    /// Live execution counters (relaxed atomics — no lock on the hot path;
    /// read with `stats.snapshot()`).
    pub stats: SharedServerStats,
    /// Compiled-plan cache keyed by statement text + parameter signature,
    /// invalidated by catalog version (see [`crate::plan_cache`]).
    pub plan_cache: PlanCache,
    /// Statement trace for the cache advisor: normalized statement text →
    /// execution count. `None` when tracing is off.
    trace: Mutex<Option<BTreeMap<String, u64>>>,
}

impl BackendServer {
    pub fn new(name: &str) -> Arc<BackendServer> {
        BackendServer::with_clock(name, Arc::new(WallClock))
    }

    pub fn with_clock(name: &str, clock: Arc<dyn Clock>) -> Arc<BackendServer> {
        Arc::new(BackendServer {
            name: name.to_string(),
            db: Arc::new(RwLock::new(Database::new(name))),
            options: OptimizerOptions::default(),
            clock,
            stats: SharedServerStats::default(),
            plan_cache: PlanCache::default(),
            trace: Mutex::new(None),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs a multi-statement script as `dbo` (setup convenience).
    pub fn run_script(&self, sql: &str) -> Result<()> {
        for stmt in parse_statements(sql)? {
            self.execute_statement(&stmt, &Bindings::new(), "dbo")?;
        }
        Ok(())
    }

    /// Parses and executes one statement.
    pub fn execute(&self, sql: &str, params: &Bindings, principal: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        if let Some(trace) = self.trace.lock().as_mut() {
            *trace.entry(stmt.to_string()).or_insert(0) += 1;
        }
        self.execute_statement(&stmt, params, principal)
    }

    /// Starts recording a workload trace (normalized statement text and
    /// counts) for the cache advisor — the paper's §7 workflow: observe the
    /// workload on the backend, then decide what to cache.
    pub fn start_statement_trace(&self) {
        *self.trace.lock() = Some(BTreeMap::new());
    }

    /// Stops tracing and returns the trace as advisor workload entries.
    pub fn stop_statement_trace(&self) -> Vec<crate::advisor::WorkloadEntry> {
        self.trace
            .lock()
            .take()
            .unwrap_or_default()
            .into_iter()
            .map(|(sql, n)| crate::advisor::WorkloadEntry {
                sql,
                frequency: n as f64,
            })
            .collect()
    }

    /// Executes a parsed statement.
    pub fn execute_statement(
        &self,
        stmt: &Statement,
        params: &Bindings,
        principal: &str,
    ) -> Result<QueryResult> {
        match stmt {
            Statement::Select(sel) => self.execute_select(sel, params, principal),
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => {
                let perm = match stmt {
                    Statement::Insert { .. } => Permission::Insert,
                    Statement::Update { .. } => Permission::Update,
                    _ => Permission::Delete,
                };
                self.db
                    .read()
                    .catalog
                    .check_permission(principal, table, perm)?;
                self.execute_dml(stmt, params)
            }
            Statement::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                let cols: Vec<Column> = columns
                    .iter()
                    .map(|c| {
                        if c.not_null {
                            Column::not_null(&c.name, c.dtype)
                        } else {
                            Column::new(&c.name, c.dtype)
                        }
                    })
                    .collect();
                self.db
                    .write()
                    .create_table(name, Schema::new(cols), primary_key)?;
                Ok(QueryResult::default())
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            } => {
                self.db.write().create_index(name, table, columns, *unique)?;
                Ok(QueryResult::default())
            }
            Statement::CreateView {
                name,
                materialized,
                query,
            } => {
                if *materialized {
                    self.create_materialized_view(name, query)?;
                } else {
                    self.db.write().catalog.create_view(ViewMeta {
                        name: name.clone(),
                        definition: query.clone(),
                        materialized: false,
                        is_cached: false,
                    })?;
                }
                Ok(QueryResult::default())
            }
            Statement::DropTable { name } => {
                self.db.write().drop_table(name)?;
                Ok(QueryResult::default())
            }
            Statement::DropView { name } => {
                let mut db = self.db.write();
                let meta = db.catalog.drop_view(name)?;
                if meta.materialized && db.has_table(name) {
                    db.drop_table(name)?;
                }
                Ok(QueryResult::default())
            }
            Statement::Grant {
                permission,
                object,
                principal: grantee,
            } => {
                self.db.write().catalog.grant(grantee, object, *permission);
                Ok(QueryResult::default())
            }
            Statement::Exec { proc, args } => self.execute_proc(proc, args, params, principal),
        }
    }

    /// Runs a SELECT entirely locally (the backend is the data of record).
    ///
    /// Plans come from the parameterized plan cache when a compiled plan
    /// for this statement text + parameter signature is resident and still
    /// valid at the current catalog version; otherwise the statement is
    /// bound, optimized, compiled and cached. Permission checks run on
    /// every execution, cached or not.
    pub fn execute_select(
        &self,
        sel: &Select,
        params: &Bindings,
        principal: &str,
    ) -> Result<QueryResult> {
        let db = self.db.read();
        check_select_permissions(&db, sel, principal)?;
        let key = sel.to_string();
        let sig = param_signature(params);
        let version = db.catalog.version();
        let ctx = ExecContext {
            db: &db,
            remote: None,
            params,
            work: &self.options.cost,
            parallel: None,
        };
        let result = match self.plan_cache.lookup(&key, &sig, version, 0) {
            Some(hit) => mtc_engine::execute_compiled(&hit.compiled, &ctx)?,
            None => {
                let plan = bind_select(sel, &db)?;
                let opt = mtc_engine::optimize(plan, &db, &self.options)?;
                let cached = self.plan_cache.insert(
                    &key,
                    &sig,
                    CachedPlan {
                        compiled: mtc_engine::compile(&opt.physical)?,
                        est_cost: opt.est_cost,
                        est_rows: opt.est_rows,
                        catalog_version: version,
                        topology_version: 0,
                    },
                );
                mtc_engine::execute_compiled(&cached.compiled, &ctx)?
            }
        };
        self.stats.record_query(&result.metrics, result.rows.len());
        Ok(result)
    }

    /// Compiles and applies a DML statement as one transaction, including
    /// eager maintenance of select-project materialized views.
    pub fn execute_dml(&self, stmt: &Statement, params: &Bindings) -> Result<QueryResult> {
        let mut db = self.db.write();
        let (mut changes, locate_work) = compile_dml(stmt, &db, params, &self.options)?;
        let derived = derive_view_changes(&db, &changes)?;
        let affected = changes.len();
        changes.extend(derived);
        if !changes.is_empty() {
            db.apply(self.clock.now_ms(), changes.clone())?;
        }
        drop(db);
        // Statement overhead (parse/lock/log-flush/commit) + target lookup
        // + per-row write and index maintenance.
        let work =
            DML_STATEMENT_OVERHEAD + locate_work + WORK_PER_CHANGE * changes.len() as f64;
        self.stats.record_dml(work);
        let mut result = QueryResult::default();
        result.metrics.local_rows = affected as u64;
        result.metrics.local_work = work;
        Ok(result)
    }

    /// Registers a stored procedure.
    pub fn create_procedure(&self, name: &str, params: &[&str], body_sql: &str) -> Result<()> {
        let params: Vec<String> = params.iter().map(|p| mtc_types::normalize_ident(p)).collect();
        let body = parse_proc_body(name, &params, body_sql)?;
        self.db.write().catalog.create_procedure(ProcedureDef {
            name: name.to_string(),
            params,
            body,
        })
    }

    /// Executes a stored procedure; the result is that of its last SELECT.
    pub fn execute_proc(
        &self,
        proc: &str,
        args: &[(String, mtc_sql::Expr)],
        caller_params: &Bindings,
        principal: &str,
    ) -> Result<QueryResult> {
        let def = self
            .db
            .read()
            .catalog
            .procedure(proc)
            .cloned()
            .ok_or_else(|| Error::catalog(format!("procedure `{proc}` not found")))?;
        let bound = bind_proc_args(&def, args, caller_params)?;
        self.stats.procs.inc();
        let mut last = QueryResult::default();
        let mut accumulated = mtc_engine::ExecMetrics::default();
        for stmt in &def.body {
            let r = self.execute_statement(stmt, &bound, principal)?;
            accumulated.absorb(&r.metrics);
            if matches!(stmt, Statement::Select(_)) {
                last = r;
            }
        }
        last.metrics = accumulated;
        Ok(last)
    }

    /// Creates a materialized view: backing table + initial population.
    /// Select-project views are maintained eagerly on every transaction;
    /// anything else must be refreshed with
    /// [`BackendServer::refresh_materialized_view`].
    pub fn create_materialized_view(&self, name: &str, definition: &Select) -> Result<()> {
        let (schema, rows) = {
            let db = self.db.read();
            let plan = bind_select(definition, &db)?;
            let opt = mtc_engine::optimize(plan, &db, &self.options)?;
            let ctx = ExecContext {
                db: &db,
                remote: None,
                params: &Bindings::new(),
                work: &self.options.cost,
                parallel: None,
            };
            let result = execute(&opt.physical, &ctx)?;
            (result.schema, result.rows)
        };
        // Primary key: the base table's key columns when fully projected.
        let pk = {
            let db = self.db.read();
            base_pk_if_projected(&db, definition, &schema)
        };
        let mut db = self.db.write();
        db.create_table(name, schema, &pk)?;
        let changes: Vec<RowChange> = rows
            .into_iter()
            .map(|row| RowChange::Insert {
                table: name.to_string(),
                row,
            })
            .collect();
        db.apply_unlogged(&changes)?;
        db.catalog.create_view(ViewMeta {
            name: name.to_string(),
            definition: definition.clone(),
            materialized: true,
            is_cached: false,
        })?;
        db.analyze_table(name);
        Ok(())
    }

    /// Recomputes a materialized view and applies (and logs) the diff —
    /// needed for join/aggregate views, which are not maintained eagerly.
    pub fn refresh_materialized_view(&self, name: &str) -> Result<usize> {
        let definition = self
            .db
            .read()
            .catalog
            .view(name)
            .filter(|v| v.materialized)
            .map(|v| v.definition.clone())
            .ok_or_else(|| Error::catalog(format!("materialized view `{name}` not found")))?;
        let fresh: Vec<Row> = {
            let db = self.db.read();
            let plan = bind_select(&definition, &db)?;
            let opt = mtc_engine::optimize(plan, &db, &self.options)?;
            let ctx = ExecContext {
                db: &db,
                remote: None,
                params: &Bindings::new(),
                work: &self.options.cost,
                parallel: None,
            };
            execute(&opt.physical, &ctx)?.rows
        };
        let mut db = self.db.write();
        let current: Vec<Row> = db.table_ref(name)?.scan().cloned().collect();
        let fresh_set: std::collections::HashSet<Row> = fresh.iter().cloned().collect();
        let current_set: std::collections::HashSet<Row> = current.iter().cloned().collect();
        let mut changes = Vec::new();
        for row in &current {
            if !fresh_set.contains(row) {
                changes.push(RowChange::Delete {
                    table: name.to_string(),
                    row: row.clone(),
                });
            }
        }
        for row in &fresh {
            if !current_set.contains(row) {
                changes.push(RowChange::Insert {
                    table: name.to_string(),
                    row: row.clone(),
                });
            }
        }
        let n = changes.len();
        if n > 0 {
            db.apply(self.clock.now_ms(), changes)?;
        }
        Ok(n)
    }

    /// Recomputes optimizer statistics for all tables.
    pub fn analyze(&self) {
        self.db.write().analyze();
    }

    /// The backend's current commit LSN (head of its transaction log).
    /// Cache servers compare this against their applied LSNs to measure
    /// replication lag in transactions.
    pub fn commit_lsn(&self) -> mtc_storage::Lsn {
        self.db.read().log().head()
    }

    /// Optimizes a SELECT and returns its physical plan text (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let Statement::Select(sel) = parse_statement(sql)? else {
            return Err(Error::plan("EXPLAIN supports SELECT statements"));
        };
        let db = self.db.read();
        let plan = bind_select(&sel, &db)?;
        let opt = mtc_engine::optimize(plan, &db, &self.options)?;
        let cached = self
            .plan_cache
            .contains_sql(&sel.to_string(), db.catalog.version(), 0);
        let cs = self.plan_cache.stats();
        Ok(format!(
            "estimated cost: {:.1}\nestimated rows: {:.0}\nplan cache: {} (hits {}, misses {}, invalidations {})\n{}",
            opt.est_cost,
            opt.est_rows,
            if cached { "cached" } else { "cold" },
            cs.hits,
            cs.misses,
            cs.invalidations,
            opt.physical.explain()
        ))
    }
}

/// The backend acts as the remote executor for cache servers: shipped SQL
/// is re-parsed and re-optimized here, exactly as in the paper.
impl RemoteExecutor for BackendServer {
    fn execute_remote(&self, sql: &str, params: &Bindings) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(sel) => self.execute_select(&sel, params, "dbo"),
            other => self.execute_statement(&other, params, "dbo"),
        }
    }
}

/// Checks SELECT permission on every object named in the FROM clause.
pub(crate) fn check_select_permissions(
    db: &Database,
    sel: &Select,
    principal: &str,
) -> Result<()> {
    fn objects(t: &TableRef, out: &mut Vec<String>) {
        match t {
            TableRef::Table { name, .. } => out.push(name.clone()),
            TableRef::Join { left, right, .. } => {
                objects(left, out);
                objects(right, out);
            }
        }
    }
    let mut names = Vec::new();
    for t in &sel.from {
        objects(t, &mut names);
    }
    for name in names {
        let local = name.rsplit('.').next().unwrap_or(&name);
        db.catalog
            .check_permission(principal, local, Permission::Select)?;
    }
    Ok(())
}

/// If the view projects the base table's full primary key, reuse it as the
/// backing table's key; otherwise fall back to a hidden rowid.
fn base_pk_if_projected(db: &Database, definition: &Select, out_schema: &Schema) -> Vec<String> {
    let [TableRef::Table { name, .. }] = definition.from.as_slice() else {
        return vec![];
    };
    let Ok(base) = db.table_ref(name) else {
        return vec![];
    };
    let pk_names: Vec<String> = base
        .primary_key()
        .iter()
        .map(|&i| base.schema().column(i).name.clone())
        .collect();
    if !pk_names.is_empty() && pk_names.iter().all(|c| out_schema.contains(c)) {
        pk_names
    } else {
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_types::Value;

    fn backend() -> Arc<BackendServer> {
        let b = BackendServer::new("backend");
        b.run_script(
            "CREATE TABLE item (i_id INT NOT NULL PRIMARY KEY, i_title VARCHAR, i_cost FLOAT);
             CREATE INDEX ix_item_cost ON item (i_cost);
             INSERT INTO item VALUES (1, 'rust in action', 30.0), (2, 'the art of sql', 20.0), (3, 'cheap book', 5.0);",
        )
        .unwrap();
        b.analyze();
        b
    }

    #[test]
    fn script_and_select() {
        let b = backend();
        let r = b
            .execute("SELECT i_id FROM item WHERE i_cost < 25 ORDER BY i_id ASC", &Bindings::new(), "dbo")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn dml_roundtrip_and_log() {
        let b = backend();
        let r = b
            .execute("UPDATE item SET i_cost = 50 WHERE i_id = 3", &Bindings::new(), "dbo")
            .unwrap();
        assert_eq!(r.metrics.local_rows, 1);
        let r = b
            .execute("SELECT i_cost FROM item WHERE i_id = 3", &Bindings::new(), "dbo")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Float(50.0));
        // The DML was logged for replication.
        assert!(b.db.read().log().len() >= 2);
    }

    #[test]
    fn permissions_enforced() {
        let b = backend();
        let err = b
            .execute("SELECT i_id FROM item", &Bindings::new(), "app")
            .unwrap_err();
        assert_eq!(err.kind(), "permission");
        b.run_script("GRANT SELECT ON item TO app").unwrap();
        assert!(b.execute("SELECT i_id FROM item", &Bindings::new(), "app").is_ok());
        let err = b
            .execute("DELETE FROM item WHERE i_id = 1", &Bindings::new(), "app")
            .unwrap_err();
        assert_eq!(err.kind(), "permission");
    }

    #[test]
    fn procedures_execute_with_args() {
        let b = backend();
        b.create_procedure(
            "getItem",
            &["id"],
            "SELECT i_title, i_cost FROM item WHERE i_id = @id",
        )
        .unwrap();
        let r = b
            .execute("EXEC getItem @id = 2", &Bindings::new(), "dbo")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::str("the art of sql"));
    }

    #[test]
    fn materialized_view_eagerly_maintained() {
        let b = backend();
        b.run_script("CREATE MATERIALIZED VIEW cheap AS SELECT i_id, i_cost FROM item WHERE i_cost <= 10")
            .unwrap();
        assert_eq!(b.db.read().table_ref("cheap").unwrap().row_count(), 1);
        b.run_script("INSERT INTO item VALUES (4, 'pamphlet', 2.0)").unwrap();
        assert_eq!(b.db.read().table_ref("cheap").unwrap().row_count(), 2);
        b.run_script("UPDATE item SET i_cost = 99 WHERE i_id = 3").unwrap();
        assert_eq!(b.db.read().table_ref("cheap").unwrap().row_count(), 1);
    }

    #[test]
    fn aggregate_view_refreshes_manually() {
        let b = backend();
        b.create_materialized_view(
            "cost_by_title",
            &match parse_statement("SELECT i_title, SUM(i_cost) AS total FROM item GROUP BY i_title").unwrap() {
                Statement::Select(s) => s,
                _ => panic!(),
            },
        )
        .unwrap();
        assert_eq!(b.db.read().table_ref("cost_by_title").unwrap().row_count(), 3);
        b.run_script("INSERT INTO item VALUES (9, 'rust in action', 1.0)").unwrap();
        // Aggregates are not eagerly maintained...
        assert_eq!(b.db.read().table_ref("cost_by_title").unwrap().row_count(), 3);
        // ...until refreshed, which logs the diff for replication.
        let log_before = b.db.read().log().len();
        let changed = b.refresh_materialized_view("cost_by_title").unwrap();
        assert!(changed >= 1);
        assert!(b.db.read().log().len() > log_before);
    }

    #[test]
    fn remote_executor_roundtrip() {
        let b = backend();
        let r = b
            .execute_remote("SELECT COUNT(*) AS n FROM item", &Bindings::new())
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn drop_view_removes_backing_table() {
        let b = backend();
        b.run_script("CREATE MATERIALIZED VIEW cheap AS SELECT i_id FROM item WHERE i_cost <= 10")
            .unwrap();
        b.run_script("DROP VIEW cheap").unwrap();
        assert!(b.db.read().table_ref("cheap").is_err());
        assert!(b.db.read().catalog.view("cheap").is_none());
    }
}
