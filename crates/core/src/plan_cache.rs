//! Parameterized plan cache.
//!
//! SQL Server answers the TPC-W mix almost entirely from its procedure /
//! plan cache: a parameterized statement is compiled once — including the
//! ChoosePlan dynamic plans of §5.1 — and re-executed with fresh parameter
//! values. This module gives our servers the same hot path:
//!
//! * **Key** — the normalized statement text (`Select::to_string()`, which
//!   canonicalizes identifiers) plus a *parameter signature*: the sorted
//!   `name=type` list of the bound parameters. The same text bound with
//!   `@x` as an `INT` and as a `VARCHAR` occupies two entries, exactly like
//!   SQL Server's cache keyed on parameter types.
//! * **Value** — the [`CompiledQuery`] (ordinals resolved, constants
//!   folded, parameters slotted) produced by `mtc_engine::compile`,
//!   stamped with the catalog version it was optimized under. Dynamic
//!   ChoosePlan plans cache as-is: their startup predicates re-evaluate on
//!   every execution, so one cached entry serves all parameter values.
//! * **Invalidation** — versioned. Every plan-relevant metadata change
//!   (CREATE/DROP TABLE, CREATE INDEX, view creation/removal, statistics
//!   refresh) bumps [`mtc_storage::Catalog::version`]; a lookup that finds
//!   a plan stamped with an older version discards it, counts an
//!   invalidation, and forces re-optimization. Stale plans are therefore
//!   never executed.
//!
//! # Concurrency
//!
//! The cache is **sharded**: keys hash to one of several independently
//! locked shards (large caches get eight; tiny caches collapse to one so
//! the LRU bound stays exact), and concurrent sessions probing different
//! statements take different locks. Counters are relaxed atomics shared by
//! all shards, so bumping a hit count never serializes two sessions. LRU
//! eviction is per shard — each shard bounds its own slice of the
//! capacity, which bounds the whole.
//!
//! Plans for statements carrying a `WITH FRESHNESS` bound are **never
//! cached**: their routing depends on replication staleness at execution
//! time, not just on metadata (see `CacheServer::execute_select`).
//!
//! Permission checks still run on every execution, cached or not — the
//! cache stores *plans*, not authorization decisions — and they run
//! **before** the shard lock is taken (see `CacheServer::execute_select`
//! and `BackendServer::execute_select`), so a slow authorization path can
//! never stall other sessions' cache probes, and a denied principal never
//! touches LRU state.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use mtc_util::atomic::Counter;
use mtc_util::sync::Mutex;

use mtc_engine::{Bindings, CompiledQuery};
use mtc_types::Value;

/// Observable plan-cache counters, surfaced through `CacheStats` consumers
/// (server stats APIs and `EXPLAIN` output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing usable (includes invalidations).
    pub misses: u64,
    /// Entries discarded because the catalog version moved past them.
    pub invalidations: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// One cached, compiled, ready-to-execute plan.
pub struct CachedPlan {
    /// The compiled plan: execute via `mtc_engine::execute_compiled`.
    pub compiled: CompiledQuery,
    /// Optimizer cost estimate at compile time (for EXPLAIN).
    pub est_cost: f64,
    /// Optimizer cardinality estimate at compile time (for EXPLAIN).
    pub est_rows: f64,
    /// Catalog version this plan was optimized under.
    pub catalog_version: u64,
    /// Fleet placement-topology version this plan was optimized under.
    /// Multi-site placements reference specific peers; a node crash or
    /// rejoin bumps the fleet topology version, so plans that might route
    /// fragments to a vanished (or newly-returned) peer are discarded
    /// exactly like catalog-stale plans. Single-node servers pin this at 0.
    pub topology_version: u64,
}

type Key = (String, String);

#[derive(Default)]
struct Shard {
    entries: HashMap<Key, Arc<CachedPlan>>,
    /// LRU order, least-recently-used first.
    order: Vec<Key>,
}

/// Shared relaxed counters — no shard lock needed to bump or read them.
#[derive(Default)]
struct SharedStats {
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
    insertions: Counter,
    evictions: Counter,
}

/// A bounded, versioned, sharded cache of compiled plans keyed by
/// `(statement text, parameter signature)`.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Capacity bound of each shard (total capacity / shard count).
    shard_capacity: usize,
    stats: SharedStats,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new(512)
    }
}

impl PlanCache {
    /// A cache bounded to ~`capacity` resident plans. Caches big enough to
    /// see concurrency get eight shards; tiny (test-sized) caches collapse
    /// to one shard so the LRU bound is exact.
    pub fn new(capacity: usize) -> PlanCache {
        let capacity = capacity.max(1);
        let n_shards = if capacity < 64 { 1 } else { 8 };
        PlanCache {
            shards: (0..n_shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: (capacity / n_shards).max(1),
            stats: SharedStats::default(),
        }
    }

    fn shard_of(&self, key: &Key) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up a plan for `(sql, sig)` valid at `current_version` and
    /// placement-topology version `topology`.
    ///
    /// A resident plan stamped with an older catalog *or topology* version
    /// is discarded (counted as an invalidation *and* a miss) so a stale
    /// plan can never be executed. Only the key's shard is locked.
    pub fn lookup(
        &self,
        sql: &str,
        sig: &str,
        current_version: u64,
        topology: u64,
    ) -> Option<Arc<CachedPlan>> {
        let key = (sql.to_string(), sig.to_string());
        let mut shard = self.shard_of(&key).lock();
        match shard.entries.get(&key) {
            Some(plan)
                if plan.catalog_version == current_version
                    && plan.topology_version == topology =>
            {
                let plan = plan.clone();
                // Move to the back of the LRU order.
                if let Some(pos) = shard.order.iter().position(|k| *k == key) {
                    shard.order.remove(pos);
                    shard.order.push(key);
                }
                drop(shard);
                self.stats.hits.inc();
                Some(plan)
            }
            Some(_) => {
                shard.entries.remove(&key);
                if let Some(pos) = shard.order.iter().position(|k| *k == key) {
                    shard.order.remove(pos);
                }
                drop(shard);
                self.stats.invalidations.inc();
                self.stats.misses.inc();
                None
            }
            None => {
                drop(shard);
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Inserts a freshly compiled plan, evicting the least-recently-used
    /// entry of the key's shard if that shard is full.
    pub fn insert(&self, sql: &str, sig: &str, plan: CachedPlan) -> Arc<CachedPlan> {
        let key = (sql.to_string(), sig.to_string());
        let plan = Arc::new(plan);
        let mut shard = self.shard_of(&key).lock();
        let mut evicted = false;
        if !shard.entries.contains_key(&key) && shard.entries.len() >= self.shard_capacity {
            if !shard.order.is_empty() {
                let victim = shard.order.remove(0);
                shard.entries.remove(&victim);
                evicted = true;
            }
        }
        if let Some(pos) = shard.order.iter().position(|k| *k == key) {
            shard.order.remove(pos);
        }
        shard.order.push(key.clone());
        shard.entries.insert(key, plan.clone());
        drop(shard);
        if evicted {
            self.stats.evictions.inc();
        }
        self.stats.insertions.inc();
        plan
    }

    /// Non-counting peek used by EXPLAIN: is *any* plan for this statement
    /// text resident and valid at `current_version` (regardless of which
    /// parameter signature it was compiled for)?
    pub fn contains_sql(&self, sql: &str, current_version: u64, topology: u64) -> bool {
        self.shards.iter().any(|shard| {
            shard.lock().entries.iter().any(|((s, _), p)| {
                s == sql && p.catalog_version == current_version && p.topology_version == topology
            })
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.get(),
            misses: self.stats.misses.get(),
            invalidations: self.stats.invalidations.get(),
            insertions: self.stats.insertions.get(),
            evictions: self.stats.evictions.get(),
            entries: self.len() as u64,
        }
    }

    /// Drops every cached plan (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.entries.clear();
            shard.order.clear();
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The parameter signature of a binding set: sorted `name=type` pairs.
/// `Bindings` is a `BTreeMap`, so iteration order is already canonical.
pub fn param_signature(params: &Bindings) -> String {
    let mut out = String::new();
    for (name, value) in params {
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(name);
        out.push('=');
        out.push_str(type_tag(value));
    }
    out
}

fn type_tag(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) => "int",
        Value::Float(_) => "float",
        Value::Str(_) => "str",
        Value::Timestamp(_) => "ts",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_engine::{bind_select, compile, optimize, OptimizerOptions};
    use mtc_sql::{parse_statement, Statement};
    use mtc_storage::Database;
    use mtc_types::{row, Column, DataType, Schema};

    fn db() -> Database {
        let mut db = Database::new("t");
        db.create_table(
            "item",
            Schema::new(vec![
                Column::not_null("i_id", DataType::Int),
                Column::new("i_cost", DataType::Float),
            ]),
            &["i_id".into()],
        )
        .unwrap();
        db.apply(
            0,
            (1..=10)
                .map(|i| mtc_storage::RowChange::Insert {
                    table: "item".into(),
                    row: row![i, i as f64],
                })
                .collect(),
        )
        .unwrap();
        db.analyze();
        db
    }

    fn plan_for(db: &Database, sql: &str) -> CachedPlan {
        let Statement::Select(sel) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let plan = bind_select(&sel, db).unwrap();
        let opt = optimize(plan, db, &OptimizerOptions::default()).unwrap();
        CachedPlan {
            compiled: compile(&opt.physical).unwrap(),
            est_cost: opt.est_cost,
            est_rows: opt.est_rows,
            catalog_version: db.catalog.version(),
            topology_version: 0,
        }
    }

    #[test]
    fn hit_miss_and_signature_separation() {
        let db = db();
        let cache = PlanCache::new(8);
        let sql = "SELECT i_id FROM item WHERE i_id <= @n";
        let v = db.catalog.version();
        assert!(cache.lookup(sql, "n=int", v, 0).is_none());
        cache.insert(sql, "n=int", plan_for(&db, sql));
        assert!(cache.lookup(sql, "n=int", v, 0).is_some());
        // A different parameter signature is a different entry.
        assert!(cache.lookup(sql, "n=str", v, 0).is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn version_mismatch_invalidates() {
        let mut db = db();
        let cache = PlanCache::new(8);
        let sql = "SELECT i_id FROM item WHERE i_id <= 5";
        cache.insert(sql, "", plan_for(&db, sql));
        let v0 = db.catalog.version();
        assert!(cache.lookup(sql, "", v0, 0).is_some());
        // Metadata changes; the cached plan must not survive.
        db.create_index("ix_cost", "item", &["i_cost".into()], false)
            .unwrap();
        let v1 = db.catalog.version();
        assert!(v1 > v0);
        assert!(cache.lookup(sql, "", v1, 0).is_none());
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn topology_mismatch_invalidates() {
        let db = db();
        let cache = PlanCache::new(8);
        let sql = "SELECT i_id FROM item WHERE i_id <= 5";
        cache.insert(sql, "", plan_for(&db, sql));
        let v = db.catalog.version();
        assert!(cache.lookup(sql, "", v, 0).is_some());
        assert!(cache.contains_sql(sql, v, 0));
        // A fleet topology change (crash/rejoin) must discard the plan even
        // though the catalog version is unchanged: its placement may route
        // fragments to a peer that no longer exists.
        assert!(!cache.contains_sql(sql, v, 1));
        assert!(cache.lookup(sql, "", v, 1).is_none());
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let db = db();
        let cache = PlanCache::new(2);
        assert_eq!(cache.shards.len(), 1, "tiny caches collapse to one shard");
        let v = db.catalog.version();
        let sql = "SELECT i_id FROM item";
        cache.insert("a", "", plan_for(&db, sql));
        cache.insert("b", "", plan_for(&db, sql));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup("a", "", v, 0).is_some());
        cache.insert("c", "", plan_for(&db, sql));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a", "", v, 0).is_some());
        assert!(cache.lookup("b", "", v, 0).is_none(), "LRU entry evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn signature_is_canonical() {
        let mut p = Bindings::new();
        p.insert("b".into(), Value::Int(1));
        p.insert("a".into(), Value::str("x"));
        assert_eq!(param_signature(&p), "a=str,b=int");
        assert_eq!(param_signature(&Bindings::new()), "");
    }

    #[test]
    fn sharded_cache_bounds_and_counts() {
        let db = db();
        let cache = PlanCache::new(512);
        assert_eq!(cache.shards.len(), 8);
        let v = db.catalog.version();
        let sql = "SELECT i_id FROM item";
        let plan = plan_for(&db, sql);
        for i in 0..100 {
            cache.insert(&format!("q{i}"), "", plan_for(&db, sql));
        }
        drop(plan);
        assert_eq!(cache.len(), 100, "well under capacity, nothing evicted");
        assert_eq!(cache.stats().insertions, 100);
        for i in 0..100 {
            assert!(cache.lookup(&format!("q{i}"), "", v, 0).is_some(), "q{i}");
        }
        assert_eq!(cache.stats().hits, 100);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 100, "clear preserves counters");
    }

    #[test]
    fn concurrent_probes_agree_with_serial_totals() {
        use std::sync::Arc as StdArc;
        let db = StdArc::new(db());
        let cache = StdArc::new(PlanCache::new(512));
        let v = db.catalog.version();
        let sql = "SELECT i_id FROM item";
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = cache.clone();
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let key = format!("t{t}-q{i}");
                        assert!(cache.lookup(&key, "", v, 0).is_none());
                        cache.insert(&key, "", plan_for(&db, sql));
                        assert!(cache.lookup(&key, "", v, 0).is_some());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.insertions, 200);
        assert_eq!(s.hits, 200);
        assert_eq!(s.misses, 200);
        assert_eq!(s.entries, 200);
    }
}
