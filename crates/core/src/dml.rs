//! DML compilation: INSERT/UPDATE/DELETE statements → row-change lists,
//! plus eager maintenance of select-project materialized views on the
//! backend (so cached views defined over backend MVs replicate correctly).

use mtc_engine::eval::{eval, Bindings};
use mtc_engine::{bind_select, execute, ExecContext, OptimizerOptions};
use mtc_replication::Article;
use mtc_sql::{Expr, InsertSource, Select, SelectItem, Statement, TableRef};
use mtc_storage::{Database, RowChange};
use mtc_types::{Error, Result, Row, Value};

/// Work units per changed row: base-table write plus secondary-index
/// maintenance.
pub const WORK_PER_CHANGE: f64 = 10.0;

/// Fixed work units per DML statement executed on the backend: statement
/// parse/optimize, lock acquisition, write-ahead-log flush and commit. A
/// logged durable write costs far more than an in-memory row read — this
/// constant is what keeps the paper's update-dominated Ordering workload
/// backend-bound even when every read is cached (§6.2.1); see
/// EXPERIMENTS.md ("Methodology") for the calibration discussion.
pub const DML_STATEMENT_OVERHEAD: f64 = 100.0;

/// Compiles a DML statement into the row changes it performs, evaluating
/// expressions against current data, plus the *work* spent locating target
/// rows (update/delete targets are found through the query engine, so a
/// point update pays an index seek, not a table scan). Does not apply
/// anything.
pub fn compile_dml(
    stmt: &Statement,
    db: &Database,
    params: &Bindings,
    options: &OptimizerOptions,
) -> Result<(Vec<RowChange>, f64)> {
    match stmt {
        Statement::Insert {
            table,
            columns,
            source,
        } => compile_insert(table, columns, source, db, params, options),
        Statement::Update {
            table,
            assignments,
            selection,
        } => compile_update(table, assignments, selection.as_ref(), db, params, options),
        Statement::Delete { table, selection } => {
            compile_delete(table, selection.as_ref(), db, params, options)
        }
        other => Err(Error::execution(format!(
            "not a DML statement: {other}"
        ))),
    }
}

fn compile_insert(
    table: &str,
    columns: &[String],
    source: &InsertSource,
    db: &Database,
    params: &Bindings,
    options: &OptimizerOptions,
) -> Result<(Vec<RowChange>, f64)> {
    let t = db.table_ref(table)?;
    let schema = t.schema().clone();
    let col_indices: Vec<usize> = if columns.is_empty() {
        (0..schema.len()).collect()
    } else {
        columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?
    };

    let mut locate_work = 0.0f64;
    let value_rows: Vec<Row> = match source {
        InsertSource::Values(rows) => {
            let empty = Row::new(vec![]);
            let empty_schema = mtc_types::Schema::empty();
            let mut out = Vec::with_capacity(rows.len());
            for exprs in rows {
                if exprs.len() != col_indices.len() {
                    return Err(Error::execution(format!(
                        "INSERT expects {} values, got {}",
                        col_indices.len(),
                        exprs.len()
                    )));
                }
                let vals: Vec<Value> = exprs
                    .iter()
                    .map(|e| eval(e, &empty, &empty_schema, params))
                    .collect::<Result<_>>()?;
                out.push(Row::new(vals));
            }
            out
        }
        InsertSource::Query(select) => {
            let plan = bind_select(select, db)?;
            let opt = mtc_engine::optimize(plan, db, options)?;
            let ctx = ExecContext {
                db,
                remote: None,
                params,
                work: &options.cost,
                parallel: None,
            };
            let result = execute(&opt.physical, &ctx)?;
            if result.schema.len() != col_indices.len() {
                return Err(Error::execution(format!(
                    "INSERT ... SELECT arity mismatch: {} vs {}",
                    col_indices.len(),
                    result.schema.len()
                )));
            }
            locate_work += result.metrics.local_work;
            result.rows
        }
    };

    let mut changes = Vec::with_capacity(value_rows.len());
    for vals in value_rows {
        let mut full = vec![Value::Null; schema.len()];
        for (i, &ci) in col_indices.iter().enumerate() {
            full[ci] = vals[i].clone();
        }
        changes.push(RowChange::Insert {
            table: t.name().to_string(),
            row: Row::new(full),
        });
    }
    Ok((changes, locate_work))
}

/// Locates the rows a DML statement targets, through the full query engine
/// (binder → optimizer → executor), so sargable predicates use index seeks.
/// Returns the matched (full) rows and the work spent finding them.
fn matching_rows(
    table: &str,
    selection: Option<&Expr>,
    db: &Database,
    params: &Bindings,
    options: &OptimizerOptions,
) -> Result<(Vec<Row>, f64)> {
    let select = Select {
        projection: vec![SelectItem::Wildcard],
        from: vec![TableRef::Table {
            name: table.to_string(),
            alias: None,
        }],
        selection: selection.cloned(),
        ..Select::default()
    };
    let plan = bind_select(&select, db)?;
    let opt = mtc_engine::optimize(plan, db, options)?;
    let ctx = ExecContext {
        db,
        remote: None,
        params,
        work: &options.cost,
        parallel: None,
    };
    let result = execute(&opt.physical, &ctx)?;
    Ok((result.rows, result.metrics.local_work))
}

fn compile_update(
    table: &str,
    assignments: &[(String, Expr)],
    selection: Option<&Expr>,
    db: &Database,
    params: &Bindings,
    options: &OptimizerOptions,
) -> Result<(Vec<RowChange>, f64)> {
    let t = db.table_ref(table)?;
    let schema = t.schema().clone();
    let (targets, locate_work) = matching_rows(table, selection, db, params, options)?;
    let mut changes = Vec::with_capacity(targets.len());
    for before in targets {
        let mut after = before.clone();
        for (col, expr) in assignments {
            let idx = schema.index_of(col)?;
            // Assignments see the *before* image, as SQL requires.
            after.0[idx] = eval(expr, &before, &schema, params)?;
        }
        changes.push(RowChange::Update {
            table: t.name().to_string(),
            before,
            after,
        });
    }
    Ok((changes, locate_work))
}

fn compile_delete(
    table: &str,
    selection: Option<&Expr>,
    db: &Database,
    params: &Bindings,
    options: &OptimizerOptions,
) -> Result<(Vec<RowChange>, f64)> {
    let t = db.table_ref(table)?;
    let (targets, locate_work) = matching_rows(table, selection, db, params, options)?;
    Ok((
        targets
            .into_iter()
            .map(|row| RowChange::Delete {
                table: t.name().to_string(),
                row,
            })
            .collect(),
        locate_work,
    ))
}

/// Derives the maintenance changes for every *select-project* materialized
/// view affected by `changes`, so they commit in the same transaction (the
/// backend maintains its materialized views eagerly).
pub fn derive_view_changes(db: &Database, changes: &[RowChange]) -> Result<Vec<RowChange>> {
    let mut derived = Vec::new();
    for view in db.catalog.materialized_views() {
        // Skip views without a local backing table (shadow copies) and
        // cached views (maintained by replication, not locally).
        if view.is_cached {
            continue;
        }
        let Ok(backing) = db.table_ref(&view.name) else {
            continue;
        };
        if backing.is_shadow() {
            continue;
        }
        let Some(base) = view.base_object() else {
            continue; // join/aggregate views refresh manually
        };
        let Ok(source) = db.table_ref(base) else {
            continue;
        };
        let schema = source.schema();
        let Ok(article) = Article::from_select(&view.name, &view.definition, schema) else {
            continue;
        };
        for change in changes {
            if mtc_types::normalize_ident(change.table()) != mtc_types::normalize_ident(base) {
                continue;
            }
            match change {
                RowChange::Insert { row, .. } => {
                    if article.matches(row, schema)? {
                        derived.push(RowChange::Insert {
                            table: view.name.clone(),
                            row: article.project(row, schema)?,
                        });
                    }
                }
                RowChange::Delete { row, .. } => {
                    if article.matches(row, schema)? {
                        derived.push(RowChange::Delete {
                            table: view.name.clone(),
                            row: article.project(row, schema)?,
                        });
                    }
                }
                RowChange::Update { before, after, .. } => {
                    let was = article.matches(before, schema)?;
                    let is = article.matches(after, schema)?;
                    match (was, is) {
                        (true, true) => derived.push(RowChange::Update {
                            table: view.name.clone(),
                            before: article.project(before, schema)?,
                            after: article.project(after, schema)?,
                        }),
                        (true, false) => derived.push(RowChange::Delete {
                            table: view.name.clone(),
                            row: article.project(before, schema)?,
                        }),
                        (false, true) => derived.push(RowChange::Insert {
                            table: view.name.clone(),
                            row: article.project(after, schema)?,
                        }),
                        (false, false) => {}
                    }
                }
            }
        }
    }
    Ok(derived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_sql::parse_statement;
    use mtc_types::{row, Column, DataType, Schema};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            "item",
            Schema::new(vec![
                Column::not_null("i_id", DataType::Int),
                Column::new("i_title", DataType::Str),
                Column::new("i_cost", DataType::Float),
            ]),
            &["i_id".into()],
        )
        .unwrap();
        db.apply(
            0,
            vec![
                RowChange::Insert {
                    table: "item".into(),
                    row: row![1, "a", 10.0],
                },
                RowChange::Insert {
                    table: "item".into(),
                    row: row![2, "b", 20.0],
                },
            ],
        )
        .unwrap();
        db
    }

    fn compile(db: &Database, sql: &str) -> Vec<RowChange> {
        let stmt = parse_statement(sql).unwrap();
        let (changes, _work) = compile_dml(
            &stmt,
            db,
            &Bindings::new(),
            &OptimizerOptions::default(),
        )
        .unwrap();
        changes
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let db = db();
        let ch = compile(&db, "INSERT INTO item (i_id, i_title) VALUES (3, 'c')");
        assert_eq!(ch.len(), 1);
        let RowChange::Insert { row, .. } = &ch[0] else {
            panic!()
        };
        assert_eq!(row[2], Value::Null);
    }

    #[test]
    fn update_sees_before_image() {
        let db = db();
        let ch = compile(&db, "UPDATE item SET i_cost = i_cost * 2 WHERE i_id = 2");
        assert_eq!(ch.len(), 1);
        let RowChange::Update { after, .. } = &ch[0] else {
            panic!()
        };
        assert_eq!(after[2], Value::Float(40.0));
    }

    #[test]
    fn delete_matches_predicate() {
        let db = db();
        let ch = compile(&db, "DELETE FROM item WHERE i_cost > 15");
        assert_eq!(ch.len(), 1);
        assert!(matches!(&ch[0], RowChange::Delete { row, .. } if row[0] == Value::Int(2)));
    }

    #[test]
    fn insert_select_copies_rows() {
        let mut db = db();
        db.create_table(
            "item2",
            Schema::new(vec![
                Column::not_null("i_id", DataType::Int),
                Column::new("i_title", DataType::Str),
            ]),
            &["i_id".into()],
        )
        .unwrap();
        db.analyze();
        let ch = compile(&db, "INSERT INTO item2 SELECT i_id, i_title FROM item");
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn derive_view_changes_select_project() {
        let mut db = db();
        db.create_table(
            "cheap_items",
            Schema::new(vec![
                Column::not_null("i_id", DataType::Int),
                Column::new("i_cost", DataType::Float),
            ]),
            &["i_id".into()],
        )
        .unwrap();
        let mtc_sql::Statement::Select(def) =
            parse_statement("SELECT i_id, i_cost FROM item WHERE i_cost <= 15").unwrap()
        else {
            panic!()
        };
        db.catalog
            .create_view(mtc_storage::ViewMeta {
                name: "cheap_items".into(),
                definition: def,
                materialized: true,
                is_cached: false,
            })
            .unwrap();
        // An update that moves a row out of the view.
        let base_change = RowChange::Update {
            table: "item".into(),
            before: row![1, "a", 10.0],
            after: row![1, "a", 99.0],
        };
        let derived = derive_view_changes(&db, &[base_change]).unwrap();
        assert_eq!(derived.len(), 1);
        assert!(matches!(&derived[0], RowChange::Delete { table, .. } if table == "cheap_items"));
    }
}
