//! The MTCache cache server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use mtc_util::sync::Mutex;

use mtc_engine::eval::Bindings;
use mtc_engine::{
    bind_select, execute, ExecContext, OptimizerOptions, PeerSite, PlacementEnv, QueryResult,
};
use mtc_replication::{Article, Clock, ReplicationHub, SubscriptionId};
use mtc_sql::{parse_statement, Select, Statement, TableRef};
use mtc_storage::{DbSnapshot, Lsn, ProcedureDef, SnapshotDb, ViewMeta};
use mtc_types::{Column, Error, Result, Schema};

use crate::backend::{check_select_permissions, BackendServer};
use crate::fragment::FragmentGateway;
use crate::plan_cache::{param_signature, CachedPlan, PlanCache};
use crate::result_cache::{RemoteGateway, ResultCache, ResultCacheConfig};
use crate::stats::SharedServerStats;

/// An MTCache server: shadow database + cached views + transparent routing.
pub struct CacheServer {
    name: String,
    /// The shadow database: backend catalog/statistics, empty shadow
    /// tables, plus populated backing tables for cached views. Read state
    /// is an epoch-published [`DbSnapshot`]: queries execute against an
    /// immutable LSN-stamped image and never block on (or observe a torn)
    /// replication apply.
    pub db: Arc<SnapshotDb>,
    backend: Arc<BackendServer>,
    hub: Arc<Mutex<ReplicationHub>>,
    /// (view name, subscription) pairs owned by this cache server.
    subscriptions: Mutex<Vec<(String, SubscriptionId)>>,
    pub options: OptimizerOptions,
    pub clock: Arc<dyn Clock>,
    /// Live execution counters (relaxed atomics — no lock on the hot path;
    /// read with `stats.snapshot()`).
    pub stats: SharedServerStats,
    /// Compiled-plan cache keyed by statement text + parameter signature,
    /// invalidated by the shadow catalog's version (see
    /// [`crate::plan_cache`]). Statements with currency bounds bypass it.
    pub plan_cache: PlanCache,
    /// Currency-aware remote **result** cache (see
    /// [`crate::result_cache`]): materialized answers of shipped remote
    /// subqueries, keyed by SQL text + bound parameter values, invalidated
    /// through the replication stream and by locally forwarded DML.
    /// Shared (`Arc`) because the replication hub holds it as an
    /// [`mtc_replication::InvalidationSink`].
    pub result_cache: Arc<ResultCache>,
    /// Intermediate-result (fragment) cache: memoized local join/aggregate
    /// subplan results keyed by compiled-plan fingerprint, with the same
    /// currency lineage as statement results (see [`crate::fragment`]).
    /// Disabled by default — [`CacheServer::set_fragment_caching`] turns it
    /// on. Shared (`Arc`) because the replication hub holds it as a second
    /// [`mtc_replication::InvalidationSink`] on this server's database.
    pub fragment_cache: Arc<ResultCache>,
    /// Fleet wiring: the peer-shared L2 result-cache tier, probed on L1
    /// misses and written through on backend fetches. `None` outside a
    /// fleet (single-node behaviour unchanged).
    l2: Mutex<Option<Arc<ResultCache>>>,
    /// Fleet wiring: peer nodes' L1 result caches. A write forwarded
    /// through THIS node invalidates them synchronously — before the DML
    /// statement returns — so no peer can serve a pre-write result to a
    /// reader that has already seen the write's LSN.
    peer_caches: Mutex<Vec<Arc<ResultCache>>>,
    /// Fleet wiring: peer nodes this server may *place plan fragments on*
    /// (multi-site placement). Weak — a crashed peer must not be kept alive
    /// by its neighbours' placement wiring.
    peers: Mutex<Vec<PeerHandle>>,
    /// Fleet-wide placement-topology version, shared by every node of a
    /// fleet and bumped on crash/rejoin. Plan-cache entries are stamped
    /// with it exactly like the catalog version, so a plan that routes a
    /// fragment to a vanished peer is discarded, never executed.
    /// Single-node servers keep their private counter pinned at 0.
    topology: Mutex<Arc<AtomicU64>>,
    /// The attached online advisor, if any: observes this server's
    /// statement stream and, on [`CacheServer::advisor_tick`], adapts the
    /// cached-view set and cache budgets (see [`crate::advisor`]).
    advisor: Mutex<Option<Arc<crate::advisor::AdaptiveAdvisor>>>,
}

/// A named, weakly-held peer a cache server can route plan fragments to.
pub struct PeerHandle {
    pub name: String,
    pub server: Weak<CacheServer>,
}

impl CacheServer {
    /// Sets up a cache server against `backend` (the two-script setup of
    /// §4: shadow database now, cached views later). The `hub` is the
    /// replication distributor configured for this backend.
    pub fn create(
        name: &str,
        backend: Arc<BackendServer>,
        hub: Arc<Mutex<ReplicationHub>>,
    ) -> Arc<CacheServer> {
        Self::create_with_result_cache(name, backend, hub, ResultCache::default())
    }

    /// Like [`create`](CacheServer::create), but with an explicitly
    /// configured result cache (budget sweeps, tests).
    pub fn create_with_result_cache(
        name: &str,
        backend: Arc<BackendServer>,
        hub: Arc<Mutex<ReplicationHub>>,
        result_cache: ResultCache,
    ) -> Arc<CacheServer> {
        let result_cache = Arc::new(result_cache);
        // The fragment cache starts with the statement cache's budget but
        // disabled; the adaptive advisor (or a test) enables it and
        // re-partitions the budgets at runtime.
        let fragment_cache = Arc::new(ResultCache::new(ResultCacheConfig::with_budget(
            result_cache.budget(),
        )));
        fragment_cache.set_enabled(false);
        let shadow = backend.db.read().shadow_clone();
        let db = Arc::new(SnapshotDb::new(shadow));
        // The replication stream doubles as the invalidation stream: every
        // replicated transaction that reaches this server's database also
        // flushes dependent cached results (see `crate::result_cache`) —
        // statement-level answers and memoized fragments alike.
        hub.lock()
            .register_invalidation_sink(&db, result_cache.clone());
        hub.lock()
            .register_invalidation_sink(&db, fragment_cache.clone());
        Arc::new(CacheServer {
            name: name.to_string(),
            db,
            clock: backend.clock.clone(),
            backend,
            hub,
            subscriptions: Mutex::new(Vec::new()),
            options: OptimizerOptions::default(),
            stats: SharedServerStats::default(),
            plan_cache: PlanCache::default(),
            result_cache,
            fragment_cache,
            l2: Mutex::new(None),
            peer_caches: Mutex::new(Vec::new()),
            peers: Mutex::new(Vec::new()),
            topology: Mutex::new(Arc::new(AtomicU64::new(0))),
            advisor: Mutex::new(None),
        })
    }

    /// Turns intermediate-result (fragment) caching on or off. Off (the
    /// default), queries execute exactly as before — no memo probes, no
    /// admissions, metrics unchanged.
    pub fn set_fragment_caching(&self, on: bool) {
        self.fragment_cache.set_enabled(on);
    }

    /// Attaches (or detaches, with `None`) an online advisor. The advisor
    /// observes every statement executed through [`CacheServer::execute`]
    /// and adapts on [`CacheServer::advisor_tick`].
    pub fn set_advisor(&self, advisor: Option<Arc<crate::advisor::AdaptiveAdvisor>>) {
        *self.advisor.lock() = advisor;
    }

    /// The attached advisor, if any.
    pub fn advisor(&self) -> Option<Arc<crate::advisor::AdaptiveAdvisor>> {
        self.advisor.lock().clone()
    }

    /// Closes the current advisor epoch: the attached advisor consumes the
    /// observation window and this server's counters, then creates/drops
    /// cached views and re-partitions cache budgets. Returns the decision
    /// log lines of this epoch (empty without an advisor).
    pub fn advisor_tick(&self) -> Vec<String> {
        match self.advisor() {
            Some(a) => a.tick(self),
            None => Vec::new(),
        }
    }

    /// Attaches (or clears) the fleet's shared L2 result-cache tier.
    pub fn set_l2(&self, l2: Option<Arc<ResultCache>>) {
        *self.l2.lock() = l2;
    }

    /// The attached L2 tier, if any.
    pub fn l2(&self) -> Option<Arc<ResultCache>> {
        self.l2.lock().clone()
    }

    /// Replaces the set of peer L1 caches this node synchronously
    /// invalidates on forwarded writes (fleet membership changes reset it).
    pub fn set_peer_caches(&self, peers: Vec<Arc<ResultCache>>) {
        *self.peer_caches.lock() = peers;
    }

    /// Replaces the set of peers multi-site placement may route plan
    /// fragments to (fleet membership changes reset it).
    pub fn set_peers(&self, peers: Vec<PeerHandle>) {
        *self.peers.lock() = peers;
    }

    /// Attaches the fleet's shared placement-topology counter; every node
    /// of a fleet shares one, so a crash observed anywhere invalidates
    /// placement-bearing plans everywhere.
    pub fn set_topology(&self, topology: Arc<AtomicU64>) {
        *self.topology.lock() = topology;
    }

    /// The placement-topology version plans are currently stamped with.
    pub fn topology_version(&self) -> u64 {
        self.topology.lock().load(Ordering::Acquire)
    }

    /// Raises the invalidation watermark for `table` on this node's L1,
    /// every registered peer L1, and the shared L2 — synchronously, so by
    /// the time the forwarded write returns, no tier in the fleet can serve
    /// a result missing it to a reader at `required` or beyond.
    fn invalidate_write(&self, table: &str, required: u64) {
        self.result_cache.note_write(table, required);
        for peer in self.peer_caches.lock().iter() {
            peer.note_write(table, required);
        }
        if let Some(l2) = self.l2.lock().as_ref() {
            l2.note_write(table, required);
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn backend(&self) -> &Arc<BackendServer> {
        &self.backend
    }

    /// Creates a cached materialized view from a select-project definition
    /// over a backend table or materialized view, automatically creating
    /// the matching replication subscription and populating the view (§3).
    pub fn create_cached_view(&self, name: &str, definition_sql: &str) -> Result<()> {
        let Statement::Select(definition) = parse_statement(definition_sql)? else {
            return Err(Error::catalog("cached view definition must be a SELECT"));
        };
        let [TableRef::Table { name: source, .. }] = definition.from.as_slice() else {
            return Err(Error::catalog(
                "cached views must select from exactly one backend object",
            ));
        };
        let source = source.clone();

        // Resolve the source schema and key from the backend.
        let backend_db = self.backend.db.read();
        let source_table = backend_db.table_ref(&source)?;
        let source_schema = source_table.schema().clone();
        let source_pk: Vec<String> = source_table
            .primary_key()
            .iter()
            .map(|&i| source_schema.column(i).name.clone())
            .collect();
        drop(backend_db);

        let article = Article::from_select(name, &definition, &source_schema)?;

        // Backing table: the projected columns with their source types.
        let cols: Vec<Column> = article
            .columns
            .iter()
            .map(|c| {
                let idx = source_schema.index_of(c)?;
                Ok(source_schema.column(idx).clone())
            })
            .collect::<Result<_>>()?;
        let pk: Vec<String> = source_pk
            .iter()
            .filter(|c| article.columns.contains(c))
            .cloned()
            .collect();
        if pk.len() != source_pk.len() {
            return Err(Error::catalog(format!(
                "cached view `{name}` must project the source key columns {source_pk:?}"
            )));
        }
        {
            let mut db = self.db.write();
            db.create_table(name, Schema::new(cols), &pk)?;
            db.catalog.create_view(ViewMeta {
                name: name.to_string(),
                definition: definition.clone(),
                materialized: true,
                is_cached: true,
            })?;
        }

        // "When a cached view is created, we automatically create a
        // replication subscription matching the view" — this also bulk-
        // populates it.
        let sub = self.hub.lock().subscribe(
            article,
            self.db.clone(),
            name,
            self.clock.now_ms(),
        )?;
        self.subscriptions.lock().push((name.to_string(), sub));
        self.db.write().analyze_table(name);
        Ok(())
    }

    /// Drops a cached view at runtime: tombstones its replication
    /// subscription, removes the view and its backing table from the shadow
    /// database, and bumps the catalog version so every plan, statement
    /// result and memoized fragment compiled against the old catalog is
    /// discarded. The inverse of [`CacheServer::create_cached_view`] — the
    /// adaptive advisor's eviction path.
    pub fn drop_cached_view(&self, name: &str) -> Result<()> {
        let sub = {
            let mut subs = self.subscriptions.lock();
            let pos = subs.iter().position(|(v, _)| v == name).ok_or_else(|| {
                Error::catalog(format!("`{name}` is not a cached view of this server"))
            })?;
            subs.remove(pos).1
        };
        self.hub.lock().unsubscribe(sub);
        let mut db = self.db.write();
        db.catalog.drop_view(name)?; // bumps the catalog version
        db.drop_table(name)?;
        db.catalog.remove_stats(name);
        Ok(())
    }

    /// Copies a secondary index definition from the backend onto a cached
    /// view's backing table ("all indexes on the cache servers were
    /// identical to indexes on the backend server", §6.1).
    pub fn create_index_on_view(&self, index: &str, view: &str, columns: &[String]) -> Result<()> {
        self.db.write().create_index(index, view, columns, false)?;
        self.db.write().analyze_table(view);
        Ok(())
    }

    /// Copies a stored procedure from the backend so it runs mid-tier
    /// (§5.2: the DBA selectively copies procedures she wants local).
    pub fn copy_procedure(&self, name: &str) -> Result<()> {
        let def: ProcedureDef = self
            .backend
            .db
            .read()
            .catalog
            .procedure(name)
            .cloned()
            .ok_or_else(|| Error::catalog(format!("backend procedure `{name}` not found")))?;
        self.db.write().catalog.create_procedure(def)
    }

    /// Re-imports backend statistics and newly created backend procedures
    /// into the shadow catalog (§7's catalog-refresh future work).
    pub fn refresh_shadow_catalog(&self) -> Result<()> {
        let backend_db = self.backend.db.read();
        let mut db = self.db.write();
        db.catalog.import_stats_from(&backend_db.catalog);
        // Preserve fresher statistics for locally populated cached views.
        let views: Vec<String> = self
            .subscriptions
            .lock()
            .iter()
            .map(|(v, _)| v.clone())
            .collect();
        drop(backend_db);
        for v in views {
            db.analyze_table(&v);
        }
        Ok(())
    }

    /// Morsel-parallel context for one query execution, pinned to the
    /// snapshot the query scans. `None` unless `options.dop > 1`.
    fn parallel_ctx(&self, snap: &Arc<DbSnapshot>) -> Option<mtc_engine::ParallelCtx> {
        (self.options.dop > 1).then(|| {
            mtc_engine::ParallelCtx::new(
                snap.clone(),
                mtc_util::pool::WorkerPool::global().clone(),
                self.options.dop,
            )
        })
    }

    /// Parses and executes one statement with full transparency: queries
    /// are optimized here and run local/remote/mixed; DML and unknown
    /// procedures are forwarded to the backend.
    pub fn execute(&self, sql: &str, params: &Bindings, principal: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        if let Some(advisor) = self.advisor.lock().as_ref() {
            advisor.observe(sql);
        }
        self.execute_statement(&stmt, params, principal)
    }

    /// Statement dispatch (see [`CacheServer::execute`]).
    pub fn execute_statement(
        &self,
        stmt: &Statement,
        params: &Bindings,
        principal: &str,
    ) -> Result<QueryResult> {
        match stmt {
            Statement::Select(sel) => self.execute_select(sel, params, principal),
            // "All insert, delete and update requests against a shadow
            // table are immediately converted to remote ... and forwarded
            // to the backend server" (§5).
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. } => {
                // Permission check happens locally against the shadowed
                // catalog before forwarding.
                let perm = match stmt {
                    Statement::Insert { .. } => mtc_sql::Permission::Insert,
                    Statement::Update { .. } => mtc_sql::Permission::Update,
                    _ => mtc_sql::Permission::Delete,
                };
                self.db
                    .read()
                    .catalog
                    .check_permission(principal, table, perm)?;
                let result = self.backend.execute_statement(stmt, params, principal)?;
                // Our own forwarded write is visible on the backend *now*;
                // don't wait for the replication stream to tell us about it.
                // Entries over `table` must be at least as new as the head
                // AFTER this write to be served again — on this node, on
                // every fleet peer, and in the shared L2.
                self.invalidate_write(table, self.backend.commit_lsn().0);
                self.stats.dml.inc();
                self.stats.remote_calls.inc();
                self.stats.remote_work.add(result.metrics.local_work);
                let mut out = result;
                out.metrics.remote_work = out.metrics.local_work;
                out.metrics.local_work = 0.0;
                Ok(out)
            }
            Statement::Exec { proc, args } => {
                // Local if copied, transparently forwarded otherwise (§5.2).
                let local = self.db.read().catalog.procedure(proc).cloned();
                match local {
                    Some(def) => self.execute_local_proc(&def, args, params, principal),
                    None => {
                        let result =
                            self.backend.execute_proc(proc, args, params, principal)?;
                        // A forwarded procedure may have written on the
                        // backend: invalidate cached results over every
                        // table its body's DML touches.
                        if let Some(def) = self.backend.db.read().catalog.procedure(proc) {
                            let head = self.backend.commit_lsn().0;
                            for stmt in &def.body {
                                if let Statement::Insert { table, .. }
                                | Statement::Update { table, .. }
                                | Statement::Delete { table, .. } = stmt
                                {
                                    self.invalidate_write(table, head);
                                }
                            }
                        }
                        self.stats.procs.inc();
                        self.stats.remote_calls.inc();
                        self.stats.remote_work.add(result.metrics.local_work);
                        let mut out = result;
                        out.metrics.remote_work += out.metrics.local_work;
                        out.metrics.local_work = 0.0;
                        Ok(out)
                    }
                }
            }
            Statement::CreateView {
                name,
                materialized: true,
                query,
            } => {
                self.create_cached_view(name, &query.to_string())?;
                Ok(QueryResult::default())
            }
            Statement::Grant {
                permission,
                object,
                principal: grantee,
            } => {
                self.db.write().catalog.grant(grantee, object, *permission);
                Ok(QueryResult::default())
            }
            other => Err(Error::catalog(format!(
                "run DDL against the backend server, not the cache: {other}"
            ))),
        }
    }

    /// Optimizes and executes a SELECT. The plan may be fully local, fully
    /// remote, or mixed; parameterized queries get dynamic plans; in a
    /// fleet, fragments may be placed on peer nodes' cached views.
    pub fn execute_select(
        &self,
        sel: &Select,
        params: &Bindings,
        principal: &str,
    ) -> Result<QueryResult> {
        self.select_impl(sel, params, principal, true)
    }

    /// Executes a plan fragment that a *peer's* multi-site placement routed
    /// to this node. Placement is disabled for the nested execution — a
    /// fragment never hops twice — so this terminates; everything else
    /// (plan cache, L1 result cache, backend fallback) behaves exactly like
    /// a session query. Runs as `dbo`, like backend-shipped SQL.
    pub fn execute_for_peer(&self, sql: &str, params: &Bindings) -> Result<QueryResult> {
        let Statement::Select(sel) = parse_statement(sql)? else {
            return Err(Error::plan("peers only ship SELECT fragments"));
        };
        self.select_impl(&sel, params, "dbo", false)
    }

    /// Upgraded placement peers: `(name, server)` for every live peer.
    fn live_peers(&self) -> Vec<(String, Arc<CacheServer>)> {
        self.peers
            .lock()
            .iter()
            .filter_map(|p| p.server.upgrade().map(|s| (p.name.clone(), s)))
            .collect()
    }

    fn select_impl(
        &self,
        sel: &Select,
        params: &Bindings,
        principal: &str,
        allow_placement: bool,
    ) -> Result<QueryResult> {
        let options = self.options.clone();
        let db = self.db.read();
        // Statements carrying a currency bound are never plan-cached: their
        // routing depends on replication staleness *at execution time*, not
        // just on metadata, so they re-optimize every invocation.
        let cacheable = sel.freshness_seconds.is_none();
        let key = sel.to_string();
        let sig = param_signature(params);
        let version = db.catalog.version();
        let topology = self.topology_version();
        // The statement's currency bound travels with the remote gateway:
        // a cached remote result is only served if its age satisfies it.
        let bound_ms = sel.freshness_seconds.map(|s| s as i64 * 1000);
        let l2 = self.l2.lock().clone();
        // Peers pinned for this statement: the placement DP costs their
        // snapshots, and the gateway routes peer-placed fragments to them.
        let peers = if allow_placement {
            self.live_peers()
        } else {
            Vec::new()
        };
        let mut gateway = RemoteGateway::new(
            &self.result_cache,
            &self.backend,
            version,
            bound_ms,
            self.clock.now_ms(),
        );
        if let Some(l2) = l2.as_deref() {
            gateway = gateway.with_l2(l2);
        }
        if !peers.is_empty() {
            gateway = gateway.with_peers(&peers);
        }

        // Fragment memo for this execution, pinned to the same snapshot the
        // query scans. `None` while fragment caching is disabled: the
        // engine then takes the exact pre-memo code path.
        let fragment = self.fragment_cache.is_enabled().then(|| {
            FragmentGateway::new(&self.fragment_cache, &db, version, self.clock.now_ms())
        });
        let memo = fragment
            .as_ref()
            .map(|f| f as &dyn mtc_engine::FragmentMemo);

        // Permission checks run on every execution, cached plan or not.
        let perm = check_select_permissions(&db, sel, principal);
        if cacheable && perm.is_ok() {
            if let Some(hit) = self.plan_cache.lookup(&key, &sig, version, topology) {
                let ctx = ExecContext {
                    db: &db,
                    remote: Some(&gateway),
                    params,
                    work: &options.cost,
                    parallel: self.parallel_ctx(&db),
                };
                let result = mtc_engine::execute_compiled_with_memo(&hit.compiled, &ctx, memo)?;
                self.stats.record_query(&result.metrics, result.rows.len());
                return Ok(result);
            }
        }

        // Blind forwarding (§7's pruned-shadow future work): a query naming
        // objects absent from this (possibly pruned) shadow catalog is
        // forwarded whole — the backend parses, authorizes and executes it.
        let plan = match perm.and_then(|()| bind_select(sel, &db)) {
            Ok(plan) => plan,
            Err(e) if e.kind() == "catalog" => {
                drop(db);
                let result = self.backend.execute_select(sel, params, principal)?;
                self.stats.queries.inc();
                self.stats.remote_calls.inc();
                self.stats.remote_work.add(result.metrics.local_work);
                let mut out = result;
                out.metrics.remote_work += out.metrics.local_work;
                out.metrics.local_work = 0.0;
                out.metrics.remote_calls += 1;
                return Ok(out);
            }
            Err(e) => return Err(e),
        };
        // Multi-site placement: every DataTransfer boundary is costed per
        // candidate site over its own link — here, each peer carrying a
        // relevant cached view (their published snapshots, pinned for the
        // duration of planning), or the backend.
        let peer_snaps: Vec<(String, Arc<DbSnapshot>)> = peers
            .iter()
            .map(|(name, s)| (name.clone(), s.db.read()))
            .collect();
        let env = self.placement_env(&options, &peer_snaps);
        let mut opt = mtc_engine::optimize_with_placement(plan.clone(), &db, &options, &env)?;

        // Freshness routing (§7 extension): if the statement carries a
        // staleness bound, check it against the cached views the chosen
        // plan *actually reads* (per-view staleness, not a server-wide
        // worst case). If any is too stale, the local plan is rejected and
        // the statement degrades gracefully to the backend — backend data
        // is always fresh. Queries without a bound are untouched.
        if let Some(decision) = self.currency_violation(&db, sel, &opt.physical) {
            let no_views = OptimizerOptions {
                enable_view_matching: false,
                ..options.clone()
            };
            opt = mtc_engine::optimize(plan, &db, &no_views)?;
            self.stats.freshness_fallbacks.inc();
            let _ = decision; // the routing reason is observable via explain()
        }
        let ctx = ExecContext {
            db: &db,
            remote: Some(&gateway),
            params,
            work: &options.cost,
            parallel: self.parallel_ctx(&db),
        };
        let result = if cacheable {
            // Compile once, cache (stamped with the catalog and topology
            // versions seen under this read lock), and execute the
            // compiled form.
            let cached = self.plan_cache.insert(
                &key,
                &sig,
                CachedPlan {
                    compiled: mtc_engine::compile(&opt.physical)?,
                    est_cost: opt.est_cost,
                    est_rows: opt.est_rows,
                    catalog_version: version,
                    topology_version: topology,
                },
            );
            mtc_engine::execute_compiled_with_memo(&cached.compiled, &ctx, memo)?
        } else {
            // Freshness-routed plan: computed fresh, executed, never cached.
            execute(&opt.physical, &ctx)?
        };
        self.stats.record_query(&result.metrics, result.rows.len());
        Ok(result)
    }

    /// The placement environment for one planning pass: the classic
    /// two-site space (here / backend over the modeled backend link) plus
    /// one site per pinned peer snapshot over the cheap peer link.
    fn placement_env<'a>(
        &self,
        options: &OptimizerOptions,
        peer_snaps: &'a [(String, Arc<DbSnapshot>)],
    ) -> PlacementEnv<'a> {
        let mut env = PlacementEnv::two_site(&options.cost);
        let link = options.cost.peer_link();
        for (name, snap) in peer_snaps {
            env.peers.push(PeerSite {
                name: name.clone(),
                db: snap,
                link,
            });
        }
        env
    }

    /// Runs a copied procedure locally: its queries go through this cache's
    /// optimizer (and may still touch the backend); its DML forwards.
    fn execute_local_proc(
        &self,
        def: &ProcedureDef,
        args: &[(String, mtc_sql::Expr)],
        caller_params: &Bindings,
        principal: &str,
    ) -> Result<QueryResult> {
        let bound = crate::procs::bind_proc_args(def, args, caller_params)?;
        self.stats.procs.inc();
        let mut last = QueryResult::default();
        let mut accumulated = mtc_engine::ExecMetrics::default();
        for stmt in &def.body {
            let r = self.execute_statement(stmt, &bound, principal)?;
            accumulated.absorb(&r.metrics);
            if matches!(stmt, Statement::Select(_)) {
                last = r;
            }
        }
        last.metrics = accumulated;
        Ok(last)
    }

    /// Prunes the shadow catalog down to what the cached views need (§7:
    /// "it would also be desirable to reduce the amount of shadowed catalog
    /// information by shadowing only the information relevant to the cached
    /// views \[and\] the tables they depend on"). Shadow tables that no
    /// cached view reads are dropped, along with their statistics; queries
    /// touching them fall back to blind forwarding.
    pub fn prune_shadow_catalog(&self) -> Result<Vec<String>> {
        let keep: std::collections::BTreeSet<String> = {
            let db = self.db.read();
            let mut keep: std::collections::BTreeSet<String> = db
                .catalog
                .views()
                .filter(|v| v.is_cached)
                .filter_map(|v| v.base_object().map(mtc_types::normalize_ident))
                .collect();
            // The cached views' own backing tables stay, of course.
            keep.extend(self.cached_views().into_iter().map(|v| mtc_types::normalize_ident(&v)));
            keep
        };
        let victims: Vec<String> = {
            let db = self.db.read();
            db.tables()
                .filter(|t| t.is_shadow() && !keep.contains(t.name()))
                .map(|t| t.name().to_string())
                .collect()
        };
        let mut db = self.db.write();
        for t in &victims {
            db.drop_table(t)?;
            db.catalog.remove_stats(t);
        }
        Ok(victims)
    }

    /// Optimizes a SELECT on this cache server and returns its physical
    /// plan text (EXPLAIN) — shows local/remote routing, DataTransfer
    /// boundaries, dynamic-plan guards, and (for currency-bounded
    /// statements) the freshness routing decision.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let Statement::Select(sel) = parse_statement(sql)? else {
            return Err(Error::plan("EXPLAIN supports SELECT statements"));
        };
        let db = self.db.read();
        let plan = bind_select(&sel, &db)?;
        // Mirror execute_select's placement space so EXPLAIN shows where
        // fragments would actually run.
        let peers = self.live_peers();
        let peer_snaps: Vec<(String, Arc<DbSnapshot>)> = peers
            .iter()
            .map(|(name, s)| (name.clone(), s.db.read()))
            .collect();
        let env = self.placement_env(&self.options, &peer_snaps);
        let mut opt = mtc_engine::optimize_with_placement(plan.clone(), &db, &self.options, &env)?;
        // Mirror execute_select's currency check so EXPLAIN shows the plan
        // that would actually run, with the routing reason spelled out.
        let mut routing = String::new();
        if let Some(bound_s) = sel.freshness_seconds {
            match self.currency_violation(&db, &sel, &opt.physical) {
                Some(d) => {
                    let no_views = OptimizerOptions {
                        enable_view_matching: false,
                        ..self.options.clone()
                    };
                    opt = mtc_engine::optimize(plan, &db, &no_views)?;
                    routing = format!(
                        "routing: backend fallback — cached view `{}` stale {}ms > bound {}ms (lag {} txns)\n",
                        d.view, d.staleness_ms, d.bound_ms, d.lag_txns
                    );
                }
                None => {
                    routing = format!("routing: local (currency bound {bound_s}s satisfied)\n");
                }
            }
        }
        let version = db.catalog.version();
        let cached = self
            .plan_cache
            .contains_sql(&sel.to_string(), version, self.topology_version());
        let cs = self.plan_cache.stats();
        // Result-cache visibility, mirroring the plan-cache line: per
        // remote subexpression, would the shipped SQL (probed with no bound
        // parameters, as EXPLAIN has none) be answered from the result
        // cache right now — and under this statement's currency bound?
        // Each fragment also names its chosen site, so multi-site placement
        // decisions are observable (`placed: cache2 (view ord_cache)`).
        let bound_ms = sel.freshness_seconds.map(|s| s as i64 * 1000);
        let now = self.clock.now_ms();
        for (site, sql) in remote_fragments(&opt.physical) {
            let served = self
                .result_cache
                .would_hit(&sql, "", version, bound_ms, now);
            routing.push_str(&format!(
                "routing: {}: {sql}\nplaced: {site}\n",
                if served { "remote(cached)" } else { "remote(fetched)" }
            ));
        }
        let rs = self.result_cache.stats();
        // Advisor visibility: the decision log of recent epochs, one
        // `advisor:` line per create/drop/rebalance, plus the live fragment
        // cache counters when intermediate-result caching is on.
        let mut advisor = String::new();
        if self.fragment_cache.is_enabled() {
            let fs = self.fragment_cache.stats();
            advisor.push_str(&format!(
                "fragment cache: {} entries, {} bytes (hits {}, misses {}, invalidations {})\n",
                fs.entries, fs.bytes, fs.hits, fs.misses, fs.invalidations
            ));
        }
        if let Some(a) = self.advisor() {
            for line in a.log_tail(8) {
                advisor.push_str(&line);
                advisor.push('\n');
            }
        }
        Ok(format!(
            "estimated cost: {:.1}\nestimated rows: {:.0}\nplan cache: {} (hits {}, misses {}, invalidations {})\nresult cache: {} entries, {} bytes (hits {}, misses {}, currency rejects {}, invalidations {})\n{advisor}{routing}{}",
            opt.est_cost,
            opt.est_rows,
            if cached { "cached" } else { "cold" },
            cs.hits,
            cs.misses,
            cs.invalidations,
            rs.entries,
            rs.bytes,
            rs.hits,
            rs.misses,
            rs.currency_rejects,
            rs.invalidations,
            opt.physical.explain()
        ))
    }

    /// Checks a statement's currency bound against the cached views its
    /// chosen plan actually reads — using the watermarks stamped on `snap`,
    /// the snapshot the query will *actually scan*, not the live
    /// subscription state (which may have advanced past what this snapshot
    /// contains). Returns the first violation (the reason the local plan
    /// must be rejected), or `None` when the plan is admissible — including
    /// for statements without a bound.
    fn currency_violation(
        &self,
        snap: &DbSnapshot,
        sel: &Select,
        physical: &mtc_engine::PhysicalPlan,
    ) -> Option<CurrencyDecision> {
        let bound_s = sel.freshness_seconds?;
        let bound_ms = (bound_s as i64) * 1000;
        let now = self.clock.now_ms();
        for obj in local_objects(physical) {
            if let Some(mark) = snap.watermark(&obj) {
                let staleness_ms = (now - mark.synced_through_ms).max(0);
                if staleness_ms > bound_ms {
                    let head = self.backend.db.read().log().head();
                    return Some(CurrencyDecision {
                        view: obj,
                        staleness_ms,
                        bound_ms,
                        lag_txns: head.0.saturating_sub(mark.lsn.0),
                    });
                }
            }
        }
        None
    }

    /// Replication staleness of one cached view, in milliseconds, as
    /// stamped on the currently published snapshot; `None` if `view` is not
    /// one of this server's cached views.
    pub fn staleness_of_view(&self, view: &str) -> Option<i64> {
        let mark = self.db.read().watermark(view)?;
        Some((self.clock.now_ms() - mark.synced_through_ms).max(0))
    }

    /// Replication lag of one cached view in *transactions*: backend commit
    /// LSN (log head) minus the applied LSN stamped on the currently
    /// published snapshot. `None` if `view` is not one of this server's
    /// cached views.
    pub fn lag_of_view(&self, view: &str) -> Option<u64> {
        let applied: Lsn = self.db.read().applied_lsn(view)?;
        let head = self.backend.db.read().log().head();
        Some(head.0.saturating_sub(applied.0))
    }

    /// Worst-case replication staleness over this server's cached views, as
    /// stamped on the currently published snapshot.
    pub fn max_staleness_ms(&self) -> i64 {
        let now = self.clock.now_ms();
        self.db
            .read()
            .watermarks()
            .values()
            .map(|m| (now - m.synced_through_ms).max(0))
            .max()
            .unwrap_or(0)
    }

    /// Names of the cached views this server maintains.
    pub fn cached_views(&self) -> Vec<String> {
        self.subscriptions
            .lock()
            .iter()
            .map(|(v, _)| v.clone())
            .collect()
    }
}

/// Why a currency-bounded statement's local plan was rejected: the cached
/// view it would read is further behind the backend than the statement
/// tolerates. Surfaced through `explain` ("routing: backend fallback — …").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurrencyDecision {
    /// The cached view that violated the bound.
    pub view: String,
    /// Observed staleness (publisher clock) when the statement was planned.
    pub staleness_ms: i64,
    /// The statement's `WITH FRESHNESS n SECONDS` bound, in milliseconds.
    pub bound_ms: i64,
    /// Backend-commit-LSN vs. applied-LSN backlog behind the violation, in
    /// transactions.
    pub lag_txns: u64,
}

/// `(site description, shipped SQL)` of every Remote node in a physical
/// plan, in plan order.
fn remote_fragments(plan: &mtc_engine::PhysicalPlan) -> Vec<(String, String)> {
    fn walk(p: &mtc_engine::PhysicalPlan, out: &mut Vec<(String, String)>) {
        if let mtc_engine::PhysicalPlan::Remote { sql, site, .. } = p {
            out.push((site.describe(), sql.clone()));
        }
        for c in p.children() {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// Local data objects a physical plan reads (cached views and their
/// indexes' tables).
fn local_objects(plan: &mtc_engine::PhysicalPlan) -> Vec<String> {
    use mtc_engine::PhysicalPlan as P;
    let mut out = Vec::new();
    fn walk(p: &mtc_engine::PhysicalPlan, out: &mut Vec<String>) {
        match p {
            P::SeqScan { object, .. }
            | P::ClusteredSeek { object, .. }
            | P::IndexSeek { object, .. }
            | P::ExtremeSeek { object, .. } => out.push(object.clone()),
            _ => {}
        }
        for c in p.children() {
            walk(c, out);
        }
    }
    walk(plan, &mut out);
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_replication::ManualClock;
    use mtc_types::Value;

    fn setup() -> (Arc<BackendServer>, Arc<Mutex<ReplicationHub>>, ManualClock) {
        let clock = ManualClock::new(0);
        let backend = BackendServer::with_clock("backend", Arc::new(clock.clone()));
        backend
            .run_script(
                "CREATE TABLE customer (cid INT NOT NULL PRIMARY KEY, cname VARCHAR, caddress VARCHAR);
                 GRANT SELECT ON customer TO app;
                 GRANT UPDATE ON customer TO app;",
            )
            .unwrap();
        let inserts: Vec<String> = (1..=2000)
            .map(|i| format!("INSERT INTO customer VALUES ({i}, 'c{i}', 'addr{i}')"))
            .collect();
        backend.run_script(&inserts.join(";")).unwrap();
        backend.analyze();
        let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
        (backend, hub, clock)
    }

    fn cache(backend: &Arc<BackendServer>, hub: &Arc<Mutex<ReplicationHub>>) -> Arc<CacheServer> {
        let c = CacheServer::create("cache1", backend.clone(), hub.clone());
        c.create_cached_view(
            "cust1000",
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 1000",
        )
        .unwrap();
        c
    }

    #[test]
    fn shadow_setup_and_view_population() {
        let (backend, hub, _clock) = setup();
        let c = cache(&backend, &hub);
        let db = c.db.read();
        assert!(db.table_ref("customer").unwrap().is_shadow());
        assert_eq!(db.table_ref("cust1000").unwrap().row_count(), 1000);
        assert_eq!(db.catalog.stats("customer").unwrap().row_count, 2000);
    }

    #[test]
    fn query_in_view_range_runs_locally() {
        let (backend, hub, _clock) = setup();
        let c = cache(&backend, &hub);
        let before = backend.stats.queries.get();
        let r = c
            .execute(
                "SELECT cname FROM customer WHERE cid = 42",
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("c42"));
        assert_eq!(r.metrics.remote_calls, 0, "fully local");
        assert_eq!(backend.stats.queries.get(), before, "backend untouched");
    }

    #[test]
    fn query_outside_view_range_goes_remote() {
        let (backend, hub, _clock) = setup();
        let c = cache(&backend, &hub);
        let r = c
            .execute(
                "SELECT cname FROM customer WHERE cid = 1500",
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("c1500"));
        assert_eq!(r.metrics.remote_calls, 1);
        assert!(r.metrics.remote_work > 0.0);
    }

    #[test]
    fn parameterized_query_switches_at_runtime() {
        let (backend, hub, _clock) = setup();
        let c = cache(&backend, &hub);
        let sql = "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid";
        // In-range parameter: local branch.
        let mut p = Bindings::new();
        p.insert("cid".into(), Value::Int(500));
        let r = c.execute(sql, &p, "app").unwrap();
        assert_eq!(r.rows.len(), 500);
        assert_eq!(r.metrics.remote_calls, 0, "guard true ⇒ local branch");
        // Out-of-range parameter: remote branch of the SAME query text.
        p.insert("cid".into(), Value::Int(1500));
        let r = c.execute(sql, &p, "app").unwrap();
        assert_eq!(r.rows.len(), 1500);
        assert_eq!(r.metrics.remote_calls, 1, "guard false ⇒ remote branch");
    }

    #[test]
    fn dml_transparently_forwards_and_replicates() {
        let (backend, hub, clock) = setup();
        let c = cache(&backend, &hub);
        c.execute(
            "UPDATE customer SET cname = 'renamed' WHERE cid = 7",
            &Bindings::new(),
            "app",
        )
        .unwrap();
        // The backend sees the change immediately.
        let r = backend
            .execute("SELECT cname FROM customer WHERE cid = 7", &Bindings::new(), "dbo")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("renamed"));
        // The cache sees it after replication propagates.
        clock.advance(500);
        hub.lock().pump(clock.now_ms()).unwrap();
        let r = c
            .execute("SELECT cname FROM customer WHERE cid = 7", &Bindings::new(), "app")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("renamed"));
    }

    #[test]
    fn permission_checked_locally_via_shadow() {
        let (backend, hub, _clock) = setup();
        let c = cache(&backend, &hub);
        let err = c
            .execute("DELETE FROM customer WHERE cid = 1", &Bindings::new(), "app")
            .unwrap_err();
        assert_eq!(err.kind(), "permission");
        let err = c
            .execute("SELECT cid FROM customer", &Bindings::new(), "nobody")
            .unwrap_err();
        assert_eq!(err.kind(), "permission");
    }

    #[test]
    fn cached_plan_hit_still_checks_permissions() {
        // The plan cache stores plans, not authorization decisions: a
        // resident, valid plan must not let an unauthorized principal
        // through. The check runs *before* the cache shard lock is taken,
        // so a denied probe also leaves the LRU state untouched.
        let (backend, hub, _clock) = setup();
        let c = cache(&backend, &hub);
        let sql = "SELECT cname FROM customer WHERE cid = 42";
        c.execute(sql, &Bindings::new(), "app").unwrap();
        let hits_before = c.plan_cache.stats().hits;
        // Same statement, unauthorized principal: denied despite the
        // resident plan, and the denial never counted as a cache probe.
        let err = c.execute(sql, &Bindings::new(), "nobody").unwrap_err();
        assert_eq!(err.kind(), "permission");
        let s = c.plan_cache.stats();
        assert_eq!(s.hits, hits_before, "denied probe never touched the cache");
        // The authorized principal still hits the cached plan.
        c.execute(sql, &Bindings::new(), "app").unwrap();
        assert_eq!(c.plan_cache.stats().hits, hits_before + 1);
    }

    #[test]
    fn procedures_local_vs_forwarded() {
        let (backend, hub, _clock) = setup();
        backend
            .create_procedure("getCustomer", &["id"], "SELECT cname FROM customer WHERE cid = @id")
            .unwrap();
        let c = cache(&backend, &hub);
        // Not copied: forwards.
        let r = c
            .execute("EXEC getCustomer @id = 3", &Bindings::new(), "dbo")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("c3"));
        assert_eq!(c.stats.remote_calls.get(), 1);
        // Copied: runs locally (and hits the cached view).
        c.copy_procedure("getCustomer").unwrap();
        let before_remote = c.stats.remote_calls.get();
        let r = c
            .execute("EXEC getCustomer @id = 3", &Bindings::new(), "dbo")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("c3"));
        assert_eq!(c.stats.remote_calls.get(), before_remote, "ran locally");
    }

    #[test]
    fn freshness_bound_bypasses_stale_cache() {
        let (backend, hub, clock) = setup();
        let c = cache(&backend, &hub);
        // Make the cache stale: a backend write, not yet replicated.
        backend
            .run_script("UPDATE customer SET cname = 'fresh!' WHERE cid = 5")
            .unwrap();
        clock.advance(60_000); // a minute passes without replication
        // Unbounded query happily reads stale data locally.
        let r = c
            .execute("SELECT cname FROM customer WHERE cid = 5", &Bindings::new(), "app")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("c5"), "stale but allowed");
        // A 10-second freshness bound routes to the backend.
        let r = c
            .execute(
                "SELECT cname FROM customer WHERE cid = 5 WITH FRESHNESS 10 SECONDS",
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("fresh!"));
        assert_eq!(r.metrics.remote_calls, 1);
        // After replication catches up, the bound is satisfiable locally.
        hub.lock().pump(clock.now_ms()).unwrap();
        hub.lock().pump(clock.now_ms()).unwrap();
        let r = c
            .execute(
                "SELECT cname FROM customer WHERE cid = 5 WITH FRESHNESS 10 SECONDS",
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("fresh!"));
        assert_eq!(r.metrics.remote_calls, 0, "fresh again ⇒ local");
    }

    #[test]
    fn freshness_is_checked_per_view_not_server_wide() {
        let (backend, hub, clock) = setup();
        backend
            .run_script(
                "CREATE TABLE product (p_id INT NOT NULL PRIMARY KEY, p_name VARCHAR);
                 INSERT INTO product VALUES (1, 'widget');
                 GRANT SELECT ON product TO app;",
            )
            .unwrap();
        backend.analyze();
        let c = CacheServer::create("cache_f", backend.clone(), hub.clone());
        // View A over customer.
        c.create_cached_view("cust_v", "SELECT cid, cname FROM customer WHERE cid <= 100")
            .unwrap();
        // Make A stale: an unreplicated customer write, then time passes.
        backend
            .run_script("UPDATE customer SET cname = 'x' WHERE cid = 1")
            .unwrap();
        clock.advance(60_000);
        // View B over product, created NOW — fresh by construction.
        c.create_cached_view("prod_v", "SELECT p_id, p_name FROM product")
            .unwrap();

        // A bounded query touching only the FRESH view stays local...
        let r = c
            .execute(
                "SELECT p_name FROM product WHERE p_id = 1 WITH FRESHNESS 10 SECONDS",
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert_eq!(r.metrics.remote_calls, 0, "fresh view satisfies the bound");
        // ...while the same bound on the STALE view's table goes remote.
        let r = c
            .execute(
                "SELECT cname FROM customer WHERE cid = 1 WITH FRESHNESS 10 SECONDS",
                &Bindings::new(),
                "app",
            )
            .unwrap();
        assert!(r.metrics.remote_calls > 0, "stale view must be bypassed");
        assert_eq!(r.rows[0][0], Value::str("x"), "and the answer is fresh");
    }

    #[test]
    fn cached_view_must_project_source_key() {
        let (backend, hub, _clock) = setup();
        let c = CacheServer::create("cache2", backend.clone(), hub.clone());
        let err = c
            .create_cached_view("bad", "SELECT cname FROM customer WHERE cid <= 10")
            .unwrap_err();
        assert_eq!(err.kind(), "catalog");
    }

    #[test]
    fn pruned_shadow_falls_back_to_blind_forwarding() {
        let (backend, hub, _clock) = setup();
        // A second backend table the cache will NOT cache.
        backend
            .run_script(
                "CREATE TABLE audit_log (al_id INT NOT NULL PRIMARY KEY, al_msg VARCHAR);
                 INSERT INTO audit_log VALUES (1, 'hello');
                 GRANT SELECT ON audit_log TO app;",
            )
            .unwrap();
        backend.analyze();
        let c = CacheServer::create("cache_p", backend.clone(), hub);
        c.create_cached_view(
            "cust1000",
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 1000",
        )
        .unwrap();
        // Before pruning, audit_log is shadowed and queries route normally.
        let r = c
            .execute("SELECT al_msg FROM audit_log WHERE al_id = 1", &Bindings::new(), "app")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("hello"));

        let dropped = c.prune_shadow_catalog().unwrap();
        assert!(dropped.contains(&"audit_log".to_string()), "{dropped:?}");
        assert!(
            !c.db.read().has_table("audit_log"),
            "shadow table pruned away"
        );
        // customer stays: a cached view depends on it.
        assert!(c.db.read().has_table("customer"));

        // The same query still answers, via blind forwarding.
        let r = c
            .execute("SELECT al_msg FROM audit_log WHERE al_id = 1", &Bindings::new(), "app")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::str("hello"));
        assert_eq!(r.metrics.remote_calls, 1);
        // Cached-view queries are unaffected.
        let r = c
            .execute("SELECT cname FROM customer WHERE cid = 3", &Bindings::new(), "app")
            .unwrap();
        assert_eq!(r.metrics.remote_calls, 0);
        // Backend permissions still apply to forwarded statements.
        let err = c
            .execute("SELECT al_msg FROM audit_log", &Bindings::new(), "nobody")
            .unwrap_err();
        assert_eq!(err.kind(), "permission");
    }

    #[test]
    fn truly_unknown_tables_still_error() {
        let (backend, hub, _clock) = setup();
        let c = CacheServer::create("cache_u", backend, hub);
        let err = c
            .execute("SELECT x FROM no_such_table", &Bindings::new(), "dbo")
            .unwrap_err();
        assert_eq!(err.kind(), "catalog");
    }

    #[test]
    fn two_caches_one_backend() {
        let (backend, hub, clock) = setup();
        let c1 = cache(&backend, &hub);
        let c2 = CacheServer::create("cache2", backend.clone(), hub.clone());
        c2.create_cached_view("cust500", "SELECT cid, cname, caddress FROM customer WHERE cid <= 500")
            .unwrap();
        backend
            .run_script("UPDATE customer SET cname = 'both' WHERE cid = 100")
            .unwrap();
        clock.advance(100);
        hub.lock().pump(clock.now_ms()).unwrap();
        for c in [&c1, &c2] {
            let r = c
                .execute("SELECT cname FROM customer WHERE cid = 100", &Bindings::new(), "dbo")
                .unwrap();
            assert_eq!(r.rows[0][0], Value::str("both"), "{}", c.name());
            assert_eq!(r.metrics.remote_calls, 0);
        }
    }
}
