//! Per-server execution statistics.

use mtc_engine::ExecMetrics;

/// Cumulative counters for one server, used by the experiments to derive
/// CPU loads and by operators to watch a deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// SELECT statements executed (including those arriving via EXEC).
    pub queries: u64,
    /// INSERT/UPDATE/DELETE statements executed here.
    pub dml: u64,
    /// Stored procedure calls dispatched here.
    pub procs: u64,
    /// Rows returned to clients.
    pub rows_returned: u64,
    /// Work units this server spent.
    pub local_work: f64,
    /// Work units spent on the backend on behalf of this server (only
    /// nonzero on cache servers).
    pub remote_work: f64,
    /// Remote round trips issued by this server.
    pub remote_calls: u64,
    /// Queries whose local plan was rejected because a cached view violated
    /// the statement's currency bound (graceful degradation to the backend).
    pub freshness_fallbacks: u64,
}

impl ServerStats {
    /// Folds one query's metrics into the counters.
    pub fn record_query(&mut self, m: &ExecMetrics, rows: usize) {
        self.queries += 1;
        self.rows_returned += rows as u64;
        self.local_work += m.local_work;
        self.remote_work += m.remote_work;
        self.remote_calls += m.remote_calls;
    }

    /// Folds a DML execution in.
    pub fn record_dml(&mut self, work: f64) {
        self.dml += 1;
        self.local_work += work;
    }

    /// Returns and clears the counters (used between experiment phases).
    pub fn take(&mut self) -> ServerStats {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_take() {
        let mut s = ServerStats::default();
        let m = ExecMetrics {
            local_work: 10.0,
            remote_work: 5.0,
            remote_calls: 1,
            ..Default::default()
        };
        s.record_query(&m, 3);
        s.record_dml(2.0);
        assert_eq!(s.queries, 1);
        assert_eq!(s.dml, 1);
        assert_eq!(s.rows_returned, 3);
        assert_eq!(s.local_work, 12.0);
        let taken = s.take();
        assert_eq!(taken.queries, 1);
        assert_eq!(s, ServerStats::default());
    }
}
