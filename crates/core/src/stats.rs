//! Per-server execution statistics.
//!
//! The live counters ([`SharedServerStats`]) are relaxed atomics so that
//! concurrent sessions never serialize on a stats mutex: recording a query
//! is a handful of independent `fetch_add`s. Consumers read a plain
//! [`ServerStats`] value via [`SharedServerStats::snapshot`] (or
//! [`SharedServerStats::take`] between experiment phases).

use mtc_engine::ExecMetrics;
use mtc_util::atomic::{Counter, FloatCounter};

/// Cumulative counters for one server, used by the experiments to derive
/// CPU loads and by operators to watch a deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// SELECT statements executed (including those arriving via EXEC).
    pub queries: u64,
    /// INSERT/UPDATE/DELETE statements executed here.
    pub dml: u64,
    /// Stored procedure calls dispatched here.
    pub procs: u64,
    /// Rows returned to clients.
    pub rows_returned: u64,
    /// Work units this server spent.
    pub local_work: f64,
    /// Work units spent on the backend on behalf of this server (only
    /// nonzero on cache servers).
    pub remote_work: f64,
    /// Remote statements this server consumed (shipped subqueries,
    /// forwarded DML/procedures) — counted whether the answer came over the
    /// wire or out of the result cache.
    pub remote_calls: u64,
    /// Network round trips actually *paid* to the backend — below
    /// `remote_calls` when the result cache answers from memory and when
    /// round-trip coalescing batches several remote subexpressions into one
    /// wire exchange.
    pub remote_rtts: u64,
    /// Rows shipped back from the backend.
    pub remote_rows: u64,
    /// Remote statements that rode along on another statement's round trip
    /// (batched siblings, single-flight followers) instead of paying one.
    pub coalesced_calls: u64,
    /// Queries whose local plan was rejected because a cached view violated
    /// the statement's currency bound (graceful degradation to the backend).
    pub freshness_fallbacks: u64,
}

/// The live, lock-free form of [`ServerStats`]: every field is a relaxed
/// atomic, so many sessions can record queries concurrently without a lock.
#[derive(Debug, Default)]
pub struct SharedServerStats {
    pub queries: Counter,
    pub dml: Counter,
    pub procs: Counter,
    pub rows_returned: Counter,
    pub local_work: FloatCounter,
    pub remote_work: FloatCounter,
    pub remote_calls: Counter,
    pub remote_rtts: Counter,
    pub remote_rows: Counter,
    pub coalesced_calls: Counter,
    pub freshness_fallbacks: Counter,
}

impl SharedServerStats {
    /// Folds one query's metrics into the counters.
    pub fn record_query(&self, m: &ExecMetrics, rows: usize) {
        self.queries.inc();
        self.rows_returned.add(rows as u64);
        self.local_work.add(m.local_work);
        self.remote_work.add(m.remote_work);
        self.remote_calls.add(m.remote_calls);
        self.remote_rtts.add(m.remote_rtts);
        self.remote_rows.add(m.remote_rows);
        self.coalesced_calls.add(m.coalesced_calls);
    }

    /// Folds a DML execution in.
    pub fn record_dml(&self, work: f64) {
        self.dml.inc();
        self.local_work.add(work);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            queries: self.queries.get(),
            dml: self.dml.get(),
            procs: self.procs.get(),
            rows_returned: self.rows_returned.get(),
            local_work: self.local_work.get(),
            remote_work: self.remote_work.get(),
            remote_calls: self.remote_calls.get(),
            remote_rtts: self.remote_rtts.get(),
            remote_rows: self.remote_rows.get(),
            coalesced_calls: self.coalesced_calls.get(),
            freshness_fallbacks: self.freshness_fallbacks.get(),
        }
    }

    /// Returns and clears the counters (used between experiment phases).
    pub fn take(&self) -> ServerStats {
        ServerStats {
            queries: self.queries.take(),
            dml: self.dml.take(),
            procs: self.procs.take(),
            rows_returned: self.rows_returned.take(),
            local_work: self.local_work.take(),
            remote_work: self.remote_work.take(),
            remote_calls: self.remote_calls.take(),
            remote_rtts: self.remote_rtts.take(),
            remote_rows: self.remote_rows.take(),
            coalesced_calls: self.coalesced_calls.take(),
            freshness_fallbacks: self.freshness_fallbacks.take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_take() {
        let s = SharedServerStats::default();
        let m = ExecMetrics {
            local_work: 10.0,
            remote_work: 5.0,
            remote_calls: 2,
            remote_rtts: 1,
            remote_rows: 7,
            coalesced_calls: 1,
            ..Default::default()
        };
        s.record_query(&m, 3);
        s.record_dml(2.0);
        let snap = s.snapshot();
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.dml, 1);
        assert_eq!(snap.rows_returned, 3);
        assert_eq!(snap.local_work, 12.0);
        assert_eq!(snap.remote_calls, 2);
        assert_eq!(snap.remote_rtts, 1, "one paid round trip");
        assert_eq!(snap.remote_rows, 7);
        assert_eq!(snap.coalesced_calls, 1);
        let taken = s.take();
        assert_eq!(taken.queries, 1);
        assert_eq!(s.snapshot(), ServerStats::default());
    }

    #[test]
    fn concurrent_recording_drops_nothing() {
        let s = std::sync::Arc::new(SharedServerStats::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let m = ExecMetrics {
                        local_work: 1.0,
                        ..Default::default()
                    };
                    for _ in 0..5_000 {
                        s.record_query(&m, 2);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.queries, 20_000);
        assert_eq!(snap.rows_returned, 40_000);
        assert_eq!(snap.local_work, 20_000.0);
    }
}
