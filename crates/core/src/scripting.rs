//! Shadow-database scripting (§4): "an automatically generated script that
//! configures the cache server and sets up the shadow database … contains
//! SQL commands to create a shadow database with tables, views, indexes and
//! permissions matching the target database on the backend server."
//!
//! [`script_shadow_database`] is that generator; running its output against
//! a fresh server recreates every table, index, virtual view and grant.
//! (Statistics are not expressible in SQL — the programmatic path,
//! [`mtc_storage::Database::shadow_clone`], carries them directly; a
//! scripted setup follows up with
//! [`crate::CacheServer::refresh_shadow_catalog`].)

use std::fmt::Write as _;

use mtc_storage::Database;

/// Generates the §4 shadow-database setup script from a backend database.
pub fn script_shadow_database(db: &Database) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- shadow database script for `{}`", db.name());

    for t in db.table_metas() {
        let cols: Vec<String> = t
            .schema
            .columns()
            .iter()
            .map(|c| {
                format!(
                    "{} {}{}",
                    c.name,
                    c.dtype.sql_name(),
                    if c.nullable { "" } else { " NOT NULL" }
                )
            })
            .collect();
        let pk = if t.primary_key.is_empty() {
            String::new()
        } else {
            format!(", PRIMARY KEY ({})", t.primary_key.join(", "))
        };
        let _ = writeln!(out, "CREATE TABLE {} ({}{});", t.name, cols.join(", "), pk);
    }

    for ix in db.index_metas() {
        let _ = writeln!(
            out,
            "CREATE {}INDEX {} ON {} ({});",
            if ix.unique { "UNIQUE " } else { "" },
            ix.name,
            ix.table,
            ix.columns.join(", ")
        );
    }

    // Virtual views script directly; materialized views become *cached*
    // views on the cache server, which the DBA's second script creates.
    for v in db.catalog.views() {
        if !v.materialized {
            let _ = writeln!(out, "CREATE VIEW {} AS {};", v.name, v.definition);
        }
    }

    for (principal, object, permission) in db.catalog.grants() {
        let _ = writeln!(
            out,
            "GRANT {} ON {object} TO {principal};",
            permission.sql()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackendServer;

    #[test]
    fn script_recreates_the_catalog_shape() {
        let source = BackendServer::new("src");
        source
            .run_script(
                "CREATE TABLE item (i_id INT NOT NULL PRIMARY KEY, i_title VARCHAR, i_cost FLOAT);
                 CREATE TABLE author (a_id INT NOT NULL PRIMARY KEY, a_name VARCHAR);
                 CREATE INDEX ix_item_title ON item (i_title);
                 CREATE UNIQUE INDEX ux_author_name ON author (a_name);
                 CREATE VIEW cheap AS SELECT i_id FROM item WHERE i_cost < 5;
                 GRANT SELECT ON item TO app;
                 GRANT UPDATE ON item TO app;",
            )
            .unwrap();

        let script = script_shadow_database(&source.db.read());
        // The script is plain SQL that a fresh server accepts.
        let replica = BackendServer::new("replica");
        replica.run_script(&script).unwrap();

        let src = source.db.read();
        let dst = replica.db.read();
        assert_eq!(src.table_metas(), dst.table_metas());
        assert_eq!(src.index_metas(), dst.index_metas());
        // Grants survived.
        assert!(dst
            .catalog
            .check_permission("app", "item", mtc_sql::Permission::Update)
            .is_ok());
        assert!(dst
            .catalog
            .check_permission("app", "author", mtc_sql::Permission::Select)
            .is_err());
        // Virtual view survived.
        assert!(dst.catalog.view("cheap").is_some());
    }

    #[test]
    fn script_round_trips_twice() {
        let source = BackendServer::new("src");
        source
            .run_script("CREATE TABLE t (a INT NOT NULL, b VARCHAR, PRIMARY KEY (a))")
            .unwrap();
        let s1 = script_shadow_database(&source.db.read());
        let replica = BackendServer::new("r");
        replica.run_script(&s1).unwrap();
        let s2 = script_shadow_database(&replica.db.read());
        // Same catalog → same script (modulo the db-name comment).
        let tail = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tail(&s1), tail(&s2));
    }
}
