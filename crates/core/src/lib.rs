//! MTCache: transparent mid-tier database caching.
//!
//! This crate assembles the substrates (storage, SQL, engine, replication)
//! into the paper's system:
//!
//! * [`BackendServer`] — the backend database server. Owns the database of
//!   record; executes every statement locally; maintains materialized views
//!   eagerly inside each transaction; publishes its commit log.
//! * [`CacheServer`] — an MTCache server. Its database is a **shadow** of
//!   the backend's (catalog + statistics, empty tables) plus the backing
//!   tables of **cached views** kept up to date by transactional
//!   replication. Queries are optimized locally and run local, remote or
//!   part-and-part on cost; all INSERT/UPDATE/DELETE are transparently
//!   forwarded to the backend; stored procedures run locally when copied,
//!   otherwise the call forwards.
//! * [`Connection`] — the application-facing handle. Applications are
//!   oblivious to which server they talk to; re-pointing a connection from
//!   backend to cache (the "ODBC re-route" of §4) requires no application
//!   change.
//!
//! Extensions from the paper's §7 future work are included: statement-level
//! `WITH FRESHNESS n SECONDS` bounds, shadow-catalog refresh, and a small
//! cache-design [`advisor`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mtc_util::sync::Mutex;
//! use mtcache::{BackendServer, CacheServer, Connection};
//! use mtc_replication::ReplicationHub;
//!
//! // A backend with data.
//! let backend = BackendServer::new("backend");
//! backend.run_script(
//!     "CREATE TABLE customer (cid INT NOT NULL PRIMARY KEY, cname VARCHAR);
//!      INSERT INTO customer VALUES (1, 'alice'), (2, 'bob');",
//! )?;
//! backend.analyze();
//!
//! // A cache server: shadow database + one cached view, populated and
//! // kept fresh by replication.
//! let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
//! let cache = CacheServer::create("cache1", backend.clone(), hub.clone());
//! cache.create_cached_view("cust1", "SELECT cid, cname FROM customer WHERE cid <= 1")?;
//!
//! // The application is oblivious: same code, either handle.
//! let conn = Connection::connect(cache);
//! let result = conn.query("SELECT cname FROM customer WHERE cid = 1")?;
//! assert_eq!(result.rows.len(), 1);
//! assert_eq!(result.metrics.remote_calls, 0); // answered from the cached view
//! # Ok::<(), mtc_types::Error>(())
//! ```

pub mod advisor;
pub mod backend;
pub mod cache;
pub mod connection;
pub mod dml;
pub mod fleet;
pub mod fragment;
pub mod plan_cache;
pub mod procs;
pub mod result_cache;
pub mod scripting;
pub mod stats;

pub use advisor::{AdaptiveAdvisor, AdvisorConfig, AdvisorStats};
pub use backend::BackendServer;
pub use cache::{CacheServer, CurrencyDecision, PeerHandle};
pub use fragment::FragmentGateway;
pub use connection::{Connection, ServerHandle};
pub use fleet::{fnv1a64, Fleet, FleetConfig, Router};
pub use plan_cache::{param_signature, CachedPlan, CacheStats, PlanCache};
pub use result_cache::{
    param_values_signature, PromotableResult, RemoteGateway, ResultCache, ResultCacheConfig,
    ResultCacheStats,
};
pub use scripting::script_shadow_database;
pub use stats::ServerStats;

pub use mtc_engine::{Bindings, QueryResult};
