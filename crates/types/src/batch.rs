//! Columnar row batches: the zero-copy unit of data flow in the streaming
//! executor.
//!
//! A [`RowBatch`] holds up to a pipeline batch of rows *column-wise*:
//! fixed-width `Value` variants (`Int`, `Float`, `Bool`, `Timestamp`) live
//! in dense typed vectors, strings as `Arc<str>` handles (cloning a string
//! cell bumps a refcount, never copies bytes), and heterogeneous columns
//! degrade to a `Mixed` vector of `Value`s with identical semantics.
//! Columns sit behind `Arc`s, so
//!
//! * projecting a plain column reference shares the column (no copy),
//! * blocking operators (DISTINCT, hash-agg/join builds) retain whole
//!   batches by `Arc` and reference rows as `(batch, row)` handles instead
//!   of cloning `Row`s, and
//! * a **selection vector** (`sel`) narrows a batch to its surviving rows
//!   without moving a byte — filters emit the same columns plus a list of
//!   live physical indices.
//!
//! Null handling: every column carries an optional null mask; a typed
//! column with nulls keeps placeholder slots so the dense vector stays
//! index-aligned. [`ColumnVec::value`] reconstructs the exact `Value` that
//! was stored — batches are bit-transparent, which the equivalence suite
//! (streaming ≡ materialized) depends on.
//!
//! Hashing and equality against column cells mirror [`Value`]'s `Hash` and
//! `Eq` exactly (numerics hash through their `f64` bit pattern so
//! `1 == 1.0` lands in the same bucket); unit tests below pin the parity.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::row::Row;
use crate::value::Value;

/// Initial accumulator for the column-major cell hashing below
/// (FNV-1a offset basis). Seed one `u64` per row with this, then fold each
/// key column in with [`ColumnVec::fold_hash_dense`] /
/// [`ColumnVec::fold_hash_at`].
pub const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x100_0000_01b3;

#[inline]
fn fnv_u8(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

/// Folds 8 bytes in one multiply instead of eight. These hashes only feed
/// *internal* lookup tables (DISTINCT / group-by), where the sole contract
/// is equal cells → equal hash; they are not FNV-1a byte-stream compatible
/// and never escape the process.
#[inline]
fn fnv_u64(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(FNV_PRIME)
}

/// Single source of truth for how one cell value folds into a row hash.
/// The typed column loops below must agree with this exactly — a `Mixed`
/// column holding `Int(5)` has to hash like an `Int` column cell, because
/// one group key may arrive typed in one batch and degraded in the next.
#[inline]
fn fold_value(h: u64, v: &Value) -> u64 {
    match v {
        Value::Null => fnv_u8(h, 0),
        Value::Bool(b) => fnv_u8(fnv_u8(h, 1), *b as u8),
        // Int folds through its f64 bit pattern so `1` and `1.0` land in
        // the same bucket, mirroring `Value::hash`.
        Value::Int(i) => fnv_u64(fnv_u8(h, 2), (*i as f64).to_bits()),
        Value::Float(f) => fnv_u64(fnv_u8(h, 2), f.to_bits()),
        Value::Str(s) => fold_str(h, s),
        Value::Timestamp(t) => fnv_u64(fnv_u8(h, 4), *t as u64),
    }
}

#[inline]
fn fold_str(h: u64, s: &str) -> u64 {
    let mut h = fnv_u8(h, 3);
    for &b in s.as_bytes() {
        h = fnv_u8(h, b);
    }
    // Length terminator so "ab","c" ≠ "a","bc" across adjacent columns.
    fnv_u64(h, s.len() as u64)
}

/// Typed column storage. `Mixed` is the fallback for columns whose cells do
/// not share one `Value` variant (e.g. a CASE expression producing strings
/// and ints); it preserves exact values.
#[derive(Debug, Clone)]
pub enum ColData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<Arc<str>>),
    Timestamp(Vec<i64>),
    Mixed(Vec<Value>),
}

impl ColData {
    fn len(&self) -> usize {
        match self {
            ColData::Int(v) | ColData::Timestamp(v) => v.len(),
            ColData::Float(v) => v.len(),
            ColData::Bool(v) => v.len(),
            ColData::Str(v) => v.len(),
            ColData::Mixed(v) => v.len(),
        }
    }
}

/// One column of a [`RowBatch`]: typed data plus an optional null mask.
/// `nulls == None` means no cell is NULL.
#[derive(Debug, Clone)]
pub struct ColumnVec {
    data: ColData,
    nulls: Option<Vec<bool>>,
}

impl ColumnVec {
    pub fn new(data: ColData, nulls: Option<Vec<bool>>) -> ColumnVec {
        if let Some(n) = &nulls {
            debug_assert_eq!(n.len(), data.len());
        }
        ColumnVec { data, nulls }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data(&self) -> &ColData {
        &self.data
    }

    /// The null mask, if any cell is NULL.
    pub fn null_mask(&self) -> Option<&[bool]> {
        self.nulls.as_deref()
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.nulls {
            Some(mask) => mask[i],
            None => false,
        }
    }

    /// Reconstructs the exact `Value` stored at `i`.
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColData::Int(v) => Value::Int(v[i]),
            ColData::Float(v) => Value::Float(v[i]),
            ColData::Bool(v) => Value::Bool(v[i]),
            ColData::Str(v) => Value::Str(v[i].clone()),
            ColData::Timestamp(v) => Value::Timestamp(v[i]),
            ColData::Mixed(v) => v[i].clone(),
        }
    }

    /// Hashes cell `i` exactly as `Value::hash` would hash the
    /// reconstructed value — without reconstructing it. Pinned against
    /// `Value`'s impl by a unit test.
    #[inline]
    pub fn write_hash<H: Hasher>(&self, i: usize, state: &mut H) {
        if self.is_null(i) {
            0u8.hash(state);
            return;
        }
        match &self.data {
            ColData::Int(v) => (2u8, (v[i] as f64).to_bits()).hash(state),
            ColData::Float(v) => (2u8, v[i].to_bits()).hash(state),
            ColData::Bool(v) => (1u8, v[i]).hash(state),
            ColData::Str(v) => (3u8, &v[i]).hash(state),
            ColData::Timestamp(v) => (4u8, v[i]).hash(state),
            ColData::Mixed(v) => v[i].hash(state),
        }
    }

    /// `true` iff the cell at `i` equals `other` under `Value` equality
    /// (Int/Float compare numerically, everything else by variant).
    #[inline]
    pub fn value_eq(&self, i: usize, other: &Value) -> bool {
        if self.is_null(i) {
            return other.is_null();
        }
        match (&self.data, other) {
            (ColData::Int(v), Value::Int(o)) => v[i] == *o,
            (ColData::Int(v), Value::Float(o)) => {
                (v[i] as f64).total_cmp(o) == std::cmp::Ordering::Equal
            }
            (ColData::Float(v), Value::Float(o)) => {
                v[i].total_cmp(o) == std::cmp::Ordering::Equal
            }
            (ColData::Float(v), Value::Int(o)) => {
                v[i].total_cmp(&(*o as f64)) == std::cmp::Ordering::Equal
            }
            (ColData::Bool(v), Value::Bool(o)) => v[i] == *o,
            (ColData::Str(v), Value::Str(o)) => *v[i] == **o,
            (ColData::Timestamp(v), Value::Timestamp(o)) => v[i] == *o,
            (ColData::Mixed(v), o) => v[i] == *o,
            _ => false,
        }
    }

    /// Compares two cells of (possibly different) columns under `Value`
    /// ordering semantics, without reconstructing either side when both are
    /// cells of the same typed column family.
    #[inline]
    pub fn cell_eq(&self, i: usize, other: &ColumnVec, j: usize) -> bool {
        match (self.is_null(i), other.is_null(j)) {
            (true, true) => return true,
            (false, false) => {}
            _ => return false,
        }
        match (&self.data, &other.data) {
            (ColData::Int(a), ColData::Int(b)) => a[i] == b[j],
            (ColData::Str(a), ColData::Str(b)) => a[i] == b[j],
            (ColData::Bool(a), ColData::Bool(b)) => a[i] == b[j],
            (ColData::Timestamp(a), ColData::Timestamp(b)) => a[i] == b[j],
            (ColData::Float(a), ColData::Float(b)) => {
                a[i].total_cmp(&b[j]) == std::cmp::Ordering::Equal
            }
            _ => other.value_eq(j, &self.value(i)),
        }
    }

    /// Folds every cell of this column into its row's hash accumulator,
    /// column-major: `hs[k]` absorbs cell `k`. Seed accumulators with
    /// [`HASH_SEED`]; equal cells (including `Int` vs numerically-equal
    /// `Float`, and typed vs `Mixed` storage) fold identically. One
    /// variant dispatch per *column*, not per cell.
    pub fn fold_hash_dense(&self, hs: &mut [u64]) {
        debug_assert_eq!(hs.len(), self.len());
        self.fold_rows(hs, |k| k)
    }

    /// As [`Self::fold_hash_dense`], but `hs[k]` absorbs the cell at
    /// physical index `idx[k]` — for batches narrowed by a selection
    /// vector.
    pub fn fold_hash_at(&self, idx: &[u32], hs: &mut [u64]) {
        debug_assert_eq!(hs.len(), idx.len());
        self.fold_rows(hs, |k| idx[k] as usize)
    }

    fn fold_rows(&self, hs: &mut [u64], phys: impl Fn(usize) -> usize) {
        let nulls = self.nulls.as_deref();
        macro_rules! fold {
            ($col:expr, $body:expr) => {{
                let col = $col;
                let f = $body;
                for (k, h) in hs.iter_mut().enumerate() {
                    let i = phys(k);
                    if nulls.is_some_and(|m| m[i]) {
                        *h = fnv_u8(*h, 0);
                    } else {
                        *h = f(*h, &col[i]);
                    }
                }
            }};
        }
        match &self.data {
            ColData::Int(v) => fold!(v, |h, x: &i64| fnv_u64(fnv_u8(h, 2), (*x as f64).to_bits())),
            ColData::Float(v) => fold!(v, |h, x: &f64| fnv_u64(fnv_u8(h, 2), x.to_bits())),
            ColData::Bool(v) => fold!(v, |h, x: &bool| fnv_u8(fnv_u8(h, 1), *x as u8)),
            ColData::Str(v) => fold!(v, |h, x: &Arc<str>| fold_str(h, x)),
            ColData::Timestamp(v) => fold!(v, |h, x: &i64| fnv_u64(fnv_u8(h, 4), *x as u64)),
            ColData::Mixed(v) => fold!(v, |h, x: &Value| fold_value(h, x)),
        }
    }

    /// Copies the cells at `idx` (physical indices) into a new dense
    /// column, in order.
    pub fn gather(&self, idx: &[u32]) -> ColumnVec {
        let nulls = self
            .nulls
            .as_ref()
            .map(|mask| idx.iter().map(|&i| mask[i as usize]).collect());
        let data = match &self.data {
            ColData::Int(v) => ColData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColData::Float(v) => ColData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColData::Bool(v) => ColData::Bool(idx.iter().map(|&i| v[i as usize]).collect()),
            ColData::Str(v) => {
                ColData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColData::Timestamp(v) => {
                ColData::Timestamp(idx.iter().map(|&i| v[i as usize]).collect())
            }
            ColData::Mixed(v) => {
                ColData::Mixed(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        ColumnVec { data, nulls }
    }
}

// ---------------------------------------------------------------------------
// Column builder
// ---------------------------------------------------------------------------

enum BuilderData {
    /// No non-null value seen yet; `usize` counts pushed (all-null) cells.
    Empty(usize),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<Arc<str>>),
    Timestamp(Vec<i64>),
    Mixed(Vec<Value>),
}

/// Incremental builder for one [`ColumnVec`]. Starts untyped; the first
/// non-null value picks the storage, and a later mismatching variant
/// degrades the whole column to `Mixed` (preserving every value exactly).
pub struct ColBuilder {
    data: BuilderData,
    nulls: Option<Vec<bool>>,
    len: usize,
    cap: usize,
}

impl ColBuilder {
    pub fn with_capacity(cap: usize) -> ColBuilder {
        ColBuilder {
            data: BuilderData::Empty(0),
            nulls: None,
            len: 0,
            cap,
        }
    }

    fn mark_null(&mut self, is_null: bool) {
        if is_null {
            match &mut self.nulls {
                Some(mask) => mask.push(true),
                None => {
                    let mut mask = vec![false; self.len];
                    mask.push(true);
                    self.nulls = Some(mask);
                }
            }
        } else if let Some(mask) = &mut self.nulls {
            mask.push(false);
        }
        self.len += 1;
    }

    /// Converts the current typed storage to `Mixed`, preserving values
    /// (null slots become `Value::Null`).
    fn degrade(&mut self) -> &mut Vec<Value> {
        let nulls = self.nulls.as_deref();
        let is_null = |i: usize| nulls.map(|m| m[i]).unwrap_or(false);
        let mixed: Vec<Value> = match &self.data {
            BuilderData::Empty(n) => vec![Value::Null; *n],
            BuilderData::Int(v) => v
                .iter()
                .enumerate()
                .map(|(i, x)| if is_null(i) { Value::Null } else { Value::Int(*x) })
                .collect(),
            BuilderData::Float(v) => v
                .iter()
                .enumerate()
                .map(|(i, x)| if is_null(i) { Value::Null } else { Value::Float(*x) })
                .collect(),
            BuilderData::Bool(v) => v
                .iter()
                .enumerate()
                .map(|(i, x)| if is_null(i) { Value::Null } else { Value::Bool(*x) })
                .collect(),
            BuilderData::Str(v) => v
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    if is_null(i) {
                        Value::Null
                    } else {
                        Value::Str(x.clone())
                    }
                })
                .collect(),
            BuilderData::Timestamp(v) => v
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    if is_null(i) {
                        Value::Null
                    } else {
                        Value::Timestamp(*x)
                    }
                })
                .collect(),
            BuilderData::Mixed(_) => unreachable!("degrade called on Mixed"),
        };
        self.data = BuilderData::Mixed(mixed);
        match &mut self.data {
            BuilderData::Mixed(v) => v,
            _ => unreachable!(),
        }
    }

    /// Pushes a borrowed value (string payloads are `Arc`-bumped, never
    /// copied).
    #[inline]
    pub fn push_ref(&mut self, v: &Value) {
        match (&mut self.data, v) {
            (_, Value::Null) => {
                match &mut self.data {
                    BuilderData::Empty(n) => *n += 1,
                    BuilderData::Int(v) | BuilderData::Timestamp(v) => v.push(0),
                    BuilderData::Float(v) => v.push(0.0),
                    BuilderData::Bool(v) => v.push(false),
                    BuilderData::Str(v) => v.push(Arc::from("")),
                    BuilderData::Mixed(v) => v.push(Value::Null),
                }
                self.mark_null(true);
                return;
            }
            (BuilderData::Int(col), Value::Int(x)) => col.push(*x),
            (BuilderData::Float(col), Value::Float(x)) => col.push(*x),
            (BuilderData::Bool(col), Value::Bool(x)) => col.push(*x),
            (BuilderData::Str(col), Value::Str(x)) => col.push(x.clone()),
            (BuilderData::Timestamp(col), Value::Timestamp(x)) => col.push(*x),
            (BuilderData::Mixed(col), x) => col.push(x.clone()),
            (BuilderData::Empty(0), x) => {
                let cap = self.cap;
                self.data = match x {
                    Value::Int(i) => {
                        let mut c = Vec::with_capacity(cap);
                        c.push(*i);
                        BuilderData::Int(c)
                    }
                    Value::Float(f) => {
                        let mut c = Vec::with_capacity(cap);
                        c.push(*f);
                        BuilderData::Float(c)
                    }
                    Value::Bool(b) => {
                        let mut c = Vec::with_capacity(cap);
                        c.push(*b);
                        BuilderData::Bool(c)
                    }
                    Value::Str(s) => {
                        let mut c: Vec<Arc<str>> = Vec::with_capacity(cap);
                        c.push(s.clone());
                        BuilderData::Str(c)
                    }
                    Value::Timestamp(t) => {
                        let mut c = Vec::with_capacity(cap);
                        c.push(*t);
                        BuilderData::Timestamp(c)
                    }
                    Value::Null => unreachable!("null handled above"),
                };
            }
            // Variant mismatch (or a leading run of nulls): degrade.
            (_, x) => self.degrade().push(x.clone()),
        }
        self.mark_null(false);
    }

    /// Pushes an owned value (moves string handles).
    #[inline]
    pub fn push(&mut self, v: Value) {
        match (&mut self.data, v) {
            (BuilderData::Str(col), Value::Str(x)) => {
                col.push(x);
                self.mark_null(false);
            }
            (BuilderData::Mixed(col), x) => {
                let null = x.is_null();
                col.push(x);
                self.mark_null(null);
            }
            (_, v) => self.push_ref(&v),
        }
    }

    pub fn finish(self) -> ColumnVec {
        let data = match self.data {
            BuilderData::Empty(n) => ColData::Mixed(vec![Value::Null; n]),
            BuilderData::Int(v) => ColData::Int(v),
            BuilderData::Float(v) => ColData::Float(v),
            BuilderData::Bool(v) => ColData::Bool(v),
            BuilderData::Str(v) => ColData::Str(v),
            BuilderData::Timestamp(v) => ColData::Timestamp(v),
            BuilderData::Mixed(v) => ColData::Mixed(v),
        };
        ColumnVec {
            data,
            nulls: self.nulls,
        }
    }
}

// ---------------------------------------------------------------------------
// RowBatch
// ---------------------------------------------------------------------------

/// A batch of rows stored column-wise with `Arc`-shared columns and an
/// optional selection vector (`sel`: live *physical* row indices, in
/// order). `Clone` is cheap: per-column refcount bumps plus the sel copy.
///
/// Width-0 batches (e.g. the `Nothing` leaf's single empty row) carry their
/// row count explicitly.
#[derive(Debug, Clone)]
pub struct RowBatch {
    cols: Vec<Arc<ColumnVec>>,
    rows: usize,
    sel: Option<Vec<u32>>,
}

impl RowBatch {
    pub fn from_cols(cols: Vec<Arc<ColumnVec>>) -> RowBatch {
        let rows = cols.first().map(|c| c.len()).unwrap_or(0);
        debug_assert!(cols.iter().all(|c| c.len() == rows), "ragged batch");
        RowBatch {
            cols,
            rows,
            sel: None,
        }
    }

    /// A width-0 batch of `n` (empty) rows.
    pub fn empty_rows(n: usize) -> RowBatch {
        RowBatch {
            cols: Vec::new(),
            rows: n,
            sel: None,
        }
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Live row count (after selection).
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical row count (before selection).
    pub fn phys_rows(&self) -> usize {
        self.rows
    }

    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    pub fn col(&self, c: usize) -> &ColumnVec {
        &self.cols[c]
    }

    pub fn col_arc(&self, c: usize) -> Arc<ColumnVec> {
        self.cols[c].clone()
    }

    /// Value at a *physical* row index.
    #[inline]
    pub fn value_at(&self, phys: usize, c: usize) -> Value {
        self.cols[c].value(phys)
    }

    /// Iterates live physical row indices in order.
    pub fn live(&self) -> LiveIndices<'_> {
        match &self.sel {
            Some(s) => LiveIndices::Sel(s.iter()),
            None => LiveIndices::Range(0..self.rows),
        }
    }

    /// Narrows to `sel` (physical indices, ascending subset of the current
    /// live set). Columns are shared, nothing is copied.
    pub fn with_sel(&self, sel: Vec<u32>) -> RowBatch {
        RowBatch {
            cols: self.cols.clone(),
            rows: self.rows,
            sel: Some(sel),
        }
    }

    /// Projects onto the given column indices: the output shares the
    /// selected columns (`Arc` bumps) and the selection vector — a pure
    /// metadata operation, no cell moves.
    pub fn project(&self, indices: &[usize]) -> RowBatch {
        RowBatch {
            cols: indices.iter().map(|&i| self.cols[i].clone()).collect(),
            rows: self.rows,
            sel: self.sel.clone(),
        }
    }

    /// Keeps only the first `n` live rows (TOP). Shares columns.
    pub fn take_first(self, n: usize) -> RowBatch {
        if n >= self.len() {
            return self;
        }
        let sel = match self.sel {
            Some(mut s) => {
                s.truncate(n);
                Some(s)
            }
            None if self.cols.is_empty() => {
                return RowBatch {
                    cols: self.cols,
                    rows: n,
                    sel: None,
                }
            }
            None => Some((0..n as u32).collect()),
        };
        RowBatch {
            cols: self.cols,
            rows: self.rows,
            sel,
        }
    }

    /// Densifies: drops the selection vector by gathering live rows into
    /// fresh columns. No-op (returns `self`) when already dense.
    pub fn compacted(self) -> RowBatch {
        let Some(sel) = self.sel else { return self };
        let cols = self
            .cols
            .iter()
            .map(|c| Arc::new(c.gather(&sel)))
            .collect();
        RowBatch {
            cols,
            rows: sel.len(),
            sel: None,
        }
    }

    /// The values of one physical row, in column order.
    pub fn values_iter(&self, phys: usize) -> impl Iterator<Item = Value> + '_ {
        self.cols.iter().map(move |c| c.value(phys))
    }

    /// Materializes the live rows as owned [`Row`]s, appending to `out`.
    /// Returns the estimated byte volume materialized.
    pub fn append_rows(&self, out: &mut Vec<Row>) -> u64 {
        let mut bytes = 0u64;
        out.reserve(self.len());
        for phys in self.live() {
            let row = Row::new(self.values_iter(phys).collect());
            bytes += row.estimated_width();
            out.push(row);
        }
        bytes
    }

    pub fn to_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len());
        self.append_rows(&mut out);
        out
    }

    /// Builds a dense batch by *moving* owned rows in (no value clones).
    /// `width` governs the column count when `rows` is empty.
    pub fn from_rows(rows: Vec<Row>, width: usize) -> RowBatch {
        let mut b = RowBatchBuilder::with_capacity(width, rows.len());
        for row in rows {
            b.push_row(row);
        }
        b.finish()
    }

    /// Estimated wire size of the live rows, for transfer costing.
    pub fn estimated_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for phys in self.live() {
            bytes += self
                .cols
                .iter()
                .map(|c| c.value(phys).estimated_width())
                .sum::<u64>();
        }
        bytes
    }
}

/// Iterator over a batch's live physical row indices.
pub enum LiveIndices<'a> {
    Sel(std::slice::Iter<'a, u32>),
    Range(std::ops::Range<usize>),
}

impl Iterator for LiveIndices<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            LiveIndices::Sel(it) => it.next().map(|&i| i as usize),
            LiveIndices::Range(r) => r.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            LiveIndices::Sel(it) => it.size_hint(),
            LiveIndices::Range(r) => r.size_hint(),
        }
    }
}

/// Builds a dense [`RowBatch`] row-at-a-time.
pub struct RowBatchBuilder {
    cols: Vec<ColBuilder>,
    rows: usize,
}

impl RowBatchBuilder {
    pub fn with_capacity(width: usize, cap: usize) -> RowBatchBuilder {
        RowBatchBuilder {
            cols: (0..width).map(|_| ColBuilder::with_capacity(cap)).collect(),
            rows: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a borrowed row (fixed-width cells copied, strings
    /// `Arc`-bumped — never a `Row` clone).
    #[inline]
    pub fn push_row_ref(&mut self, row: &Row) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (b, v) in self.cols.iter_mut().zip(row.values()) {
            b.push_ref(v);
        }
        self.rows += 1;
    }

    /// Appends a projection of a borrowed row: cell `cols[k]` of `row`
    /// feeds builder column `k`. Lets pruned scans build only the columns
    /// a query actually reads.
    #[inline]
    pub fn push_row_cols(&mut self, row: &Row, cols: &[usize]) {
        debug_assert_eq!(cols.len(), self.cols.len());
        for (b, &c) in self.cols.iter_mut().zip(cols) {
            b.push_ref(&row[c]);
        }
        self.rows += 1;
    }

    /// Appends an owned row, moving its values in.
    #[inline]
    pub fn push_row(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (b, v) in self.cols.iter_mut().zip(row.0) {
            b.push(v);
        }
        self.rows += 1;
    }

    /// Appends a row given as an iterator of owned values. The iterator
    /// must yield exactly `width` values.
    #[inline]
    pub fn push_values(&mut self, values: impl IntoIterator<Item = Value>) {
        let mut n = 0;
        let mut it = values.into_iter();
        for b in self.cols.iter_mut() {
            b.push(it.next().expect("row narrower than batch"));
            n += 1;
        }
        debug_assert!(it.next().is_none(), "row wider than batch");
        debug_assert_eq!(n, self.cols.len());
        self.rows += 1;
    }

    pub fn finish(self) -> RowBatch {
        let rows = self.rows;
        let cols: Vec<Arc<ColumnVec>> =
            self.cols.into_iter().map(|b| Arc::new(b.finish())).collect();
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        RowBatch {
            cols,
            rows,
            sel: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use std::collections::hash_map::DefaultHasher;

    fn value_battery() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-7),
            Value::Int(i64::MAX / 2),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(7.0),
            Value::Float(2.5),
            Value::str(""),
            Value::str("abc"),
            Value::Timestamp(42),
        ]
    }

    fn hash_value(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    fn hash_cell(c: &ColumnVec, i: usize) -> u64 {
        let mut h = DefaultHasher::new();
        c.write_hash(i, &mut h);
        h.finish()
    }

    /// Column-cell hashing must agree with `Value::hash` for every variant
    /// and every storage layout (typed and Mixed).
    #[test]
    fn cell_hash_matches_value_hash() {
        let battery = value_battery();
        // One column per value → typed storage.
        for v in &battery {
            let mut b = ColBuilder::with_capacity(1);
            b.push_ref(v);
            let c = b.finish();
            assert_eq!(hash_cell(&c, 0), hash_value(v), "typed {v:?}");
            assert!(c.value_eq(0, v), "typed eq {v:?}");
            assert_eq!(c.value(0), *v, "typed roundtrip {v:?}");
        }
        // All values in one column → Mixed storage.
        let mut b = ColBuilder::with_capacity(battery.len());
        for v in &battery {
            b.push_ref(v);
        }
        let c = b.finish();
        for (i, v) in battery.iter().enumerate() {
            assert_eq!(hash_cell(&c, i), hash_value(v), "mixed {v:?}");
            assert!(c.value_eq(i, v), "mixed eq {v:?}");
            assert_eq!(c.value(i), *v, "mixed roundtrip {v:?}");
        }
    }

    #[test]
    fn int_and_float_cells_hash_and_compare_numerically() {
        let mut bi = ColBuilder::with_capacity(1);
        bi.push(Value::Int(7));
        let ci = bi.finish();
        let mut bf = ColBuilder::with_capacity(1);
        bf.push(Value::Float(7.0));
        let cf = bf.finish();
        assert_eq!(hash_cell(&ci, 0), hash_cell(&cf, 0));
        assert!(ci.value_eq(0, &Value::Float(7.0)));
        assert!(cf.value_eq(0, &Value::Int(7)));
        assert!(ci.cell_eq(0, &cf, 0));
        assert!(!ci.value_eq(0, &Value::str("7")));
    }

    #[test]
    fn nulls_in_typed_columns_round_trip() {
        let mut b = ColBuilder::with_capacity(4);
        b.push(Value::Int(1));
        b.push(Value::Null);
        b.push(Value::Int(3));
        let c = b.finish();
        assert!(matches!(c.data(), ColData::Int(_)));
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(3));
        assert!(c.value_eq(1, &Value::Null));
        assert!(!c.value_eq(1, &Value::Int(0)));
        assert_eq!(hash_cell(&c, 1), hash_value(&Value::Null));
    }

    #[test]
    fn leading_nulls_then_typed_degrades_exactly() {
        let mut b = ColBuilder::with_capacity(3);
        b.push(Value::Null);
        b.push(Value::Int(2));
        b.push(Value::str("x"));
        let c = b.finish();
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(1), Value::Int(2));
        assert_eq!(c.value(2), Value::str("x"));
    }

    #[test]
    fn mixed_degradation_preserves_exact_variants() {
        // Int then Float must not silently coerce either side.
        let mut b = ColBuilder::with_capacity(2);
        b.push(Value::Int(1));
        b.push(Value::Float(2.5));
        b.push(Value::Timestamp(9));
        let c = b.finish();
        assert_eq!(c.value(0), Value::Int(1));
        assert!(matches!(c.value(0), Value::Int(_)));
        assert!(matches!(c.value(1), Value::Float(_)));
        assert!(matches!(c.value(2), Value::Timestamp(_)));
    }

    #[test]
    fn batch_roundtrip_and_selection() {
        let rows = vec![row![1, "a", 1.5], row![2, "b", 2.5], row![3, "c", 3.5]];
        let mut b = RowBatchBuilder::with_capacity(3, rows.len());
        for r in &rows {
            b.push_row_ref(r);
        }
        let batch = b.finish();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.to_rows(), rows);

        let narrowed = batch.with_sel(vec![0, 2]);
        assert_eq!(narrowed.len(), 2);
        assert_eq!(narrowed.to_rows(), vec![rows[0].clone(), rows[2].clone()]);

        let compact = narrowed.compacted();
        assert!(compact.sel().is_none());
        assert_eq!(compact.to_rows(), vec![rows[0].clone(), rows[2].clone()]);

        let top = batch.clone().take_first(1);
        assert_eq!(top.to_rows(), vec![rows[0].clone()]);
    }

    #[test]
    fn take_first_composes_with_selection() {
        let rows = vec![row![1], row![2], row![3], row![4]];
        let batch = RowBatch::from_rows(rows, 1).with_sel(vec![1, 2, 3]);
        let top = batch.take_first(2);
        assert_eq!(top.to_rows(), vec![row![2], row![3]]);
    }

    #[test]
    fn width_zero_batches_carry_row_counts() {
        let b = RowBatch::empty_rows(1);
        assert_eq!(b.width(), 0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.to_rows(), vec![Row::new(vec![])]);
        let t = b.take_first(0);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn from_rows_moves_values() {
        let rows = vec![row![1, "x"], row![2, "y"]];
        let batch = RowBatch::from_rows(rows.clone(), 2);
        assert_eq!(batch.to_rows(), rows);
        assert!(matches!(batch.col(0).data(), ColData::Int(_)));
        assert!(matches!(batch.col(1).data(), ColData::Str(_)));
    }

    #[test]
    fn append_rows_reports_bytes() {
        let batch = RowBatch::from_rows(vec![row![1, "abcd"]], 2);
        let mut out = Vec::new();
        let bytes = batch.append_rows(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(bytes, out[0].estimated_width());
        assert_eq!(bytes, 8 + 4);
    }

    #[test]
    fn fold_hash_is_storage_agnostic() {
        // Equal cells fold identically whether stored typed, as a
        // numerically equal other type, or degraded to Mixed — and via the
        // dense or indexed entry point.
        let vals = value_battery();
        let typed: Vec<ColumnVec> = vals
            .iter()
            .map(|v| {
                let mut b = ColBuilder::with_capacity(1);
                b.push_ref(v);
                b.finish()
            })
            .collect();
        let mixed = ColumnVec::new(ColData::Mixed(vals.clone()), None);
        for (i, col) in typed.iter().enumerate() {
            let mut a = [HASH_SEED];
            col.fold_hash_dense(&mut a);
            let mut b = [HASH_SEED; 1];
            mixed.fold_hash_at(&[i as u32], &mut b);
            assert_eq!(a[0], b[0], "typed vs mixed fold for {:?}", vals[i]);
            assert_eq!(a[0], fold_value(HASH_SEED, &vals[i]), "{:?}", vals[i]);
        }
        // Int 1 and Float 1.0 must land in the same bucket.
        assert_eq!(
            fold_value(HASH_SEED, &Value::Int(1)),
            fold_value(HASH_SEED, &Value::Float(1.0))
        );
    }

    #[test]
    fn fold_hash_handles_nulls_in_typed_columns() {
        let mut b = ColBuilder::with_capacity(3);
        b.push(Value::Int(7));
        b.push(Value::Null);
        b.push(Value::Int(7));
        let col = b.finish();
        let mut hs = [HASH_SEED; 3];
        col.fold_hash_dense(&mut hs);
        assert_eq!(hs[0], hs[2]);
        assert_eq!(hs[1], fold_value(HASH_SEED, &Value::Null));
        assert_ne!(hs[0], hs[1]);
    }

    #[test]
    fn project_shares_columns_and_selection() {
        let batch = RowBatch::from_rows(vec![row![1, "a", 10], row![2, "b", 20]], 3)
            .with_sel(vec![1]);
        let p = batch.project(&[2, 0]);
        assert_eq!(p.width(), 2);
        assert_eq!(p.to_rows(), vec![row![20, 2]]);
        assert!(Arc::ptr_eq(&p.col_arc(0), &batch.col_arc(2)));
        assert!(Arc::ptr_eq(&p.col_arc(1), &batch.col_arc(0)));
    }
}
