//! Compact binary encoding for the core data model, replacing the old
//! (never-exercised) `serde` derives with a format we control end to end.
//!
//! The format is the natural one for a replication wire path:
//!
//! * unsigned integers — LEB128 varint (7 bits per byte, little-endian);
//! * signed integers — zigzag-mapped then varint, so small negatives stay
//!   small;
//! * `f64` — 8 raw little-endian IEEE-754 bytes (bit-exact round trip,
//!   including negative zero and non-finite values);
//! * strings / sequences — varint length prefix, then payload;
//! * enums (`Value`, `DataType`) — one tag byte, then the payload.
//!
//! Everything implements [`BinCodec`], which provides `to_bytes` /
//! `from_bytes` plus streaming `encode_into` / `decode_from` for callers
//! (like `mtc-replication`'s wire frames) that pack many items into one
//! buffer. Decoding is strict: trailing bytes, truncated payloads, bad
//! tags and invalid UTF-8 are all errors, never panics.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::{Column, Schema};
use crate::value::{DataType, Value};

/// Cursor over a byte slice with strict bounds checking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn read_u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| Error::encoding("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::encoding(format!(
                "unexpected end of input: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn read_varint(&mut self) -> Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err(Error::encoding("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(Error::encoding("varint longer than 10 bytes"));
            }
        }
    }

    pub fn read_zigzag(&mut self) -> Result<i64> {
        let raw = self.read_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    pub fn read_f64(&mut self) -> Result<f64> {
        let bytes: [u8; 8] = self.read_bytes(8)?.try_into().expect("exact slice");
        Ok(f64::from_le_bytes(bytes))
    }

    pub fn read_str(&mut self) -> Result<&'a str> {
        let len = self.read_varint()? as usize;
        // Guard against hostile lengths before allocating/reading.
        if len > self.remaining() {
            return Err(Error::encoding(format!(
                "string length {len} exceeds remaining input {}",
                self.remaining()
            )));
        }
        std::str::from_utf8(self.read_bytes(len)?)
            .map_err(|e| Error::encoding(format!("invalid UTF-8 in string: {e}")))
    }
}

/// Append-only encoding helpers over a `Vec<u8>`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub fn write_zigzag(out: &mut Vec<u8>, v: i64) {
    write_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Binary encode/decode. `to_bytes`/`from_bytes` are whole-buffer
/// conveniences; the `*_into`/`*_from` pair streams.
pub trait BinCodec: Sized {
    fn encode_into(&self, out: &mut Vec<u8>);
    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self>;

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Strict decode: the buffer must contain exactly one value.
    fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(buf);
        let v = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(Error::encoding(format!(
                "{} trailing bytes after value",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

// --- Value ---------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_TIMESTAMP: u8 = 6;

impl BinCodec for Value {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(TAG_NULL),
            Value::Bool(false) => out.push(TAG_BOOL_FALSE),
            Value::Bool(true) => out.push(TAG_BOOL_TRUE),
            Value::Int(i) => {
                out.push(TAG_INT);
                write_zigzag(out, *i);
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                write_f64(out, *f);
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                write_str(out, s);
            }
            Value::Timestamp(t) => {
                out.push(TAG_TIMESTAMP);
                write_zigzag(out, *t);
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Value> {
        Ok(match r.read_u8()? {
            TAG_NULL => Value::Null,
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            TAG_INT => Value::Int(r.read_zigzag()?),
            TAG_FLOAT => Value::Float(r.read_f64()?),
            TAG_STR => Value::Str(Arc::from(r.read_str()?)),
            TAG_TIMESTAMP => Value::Timestamp(r.read_zigzag()?),
            tag => return Err(Error::encoding(format!("unknown Value tag {tag}"))),
        })
    }
}

// --- Row -----------------------------------------------------------------

impl BinCodec for Row {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for v in self.values() {
            v.encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Row> {
        let n = r.read_varint()? as usize;
        if n > r.remaining() {
            // Each value needs ≥ 1 byte; reject absurd counts early.
            return Err(Error::encoding(format!(
                "row arity {n} exceeds remaining input {}",
                r.remaining()
            )));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(Value::decode_from(r)?);
        }
        Ok(Row::new(values))
    }
}

// --- DataType / Column / Schema ------------------------------------------

impl BinCodec for DataType {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Str => 3,
            DataType::Timestamp => 4,
        });
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<DataType> {
        Ok(match r.read_u8()? {
            0 => DataType::Bool,
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Str,
            4 => DataType::Timestamp,
            tag => return Err(Error::encoding(format!("unknown DataType tag {tag}"))),
        })
    }
}

impl BinCodec for Column {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_str(out, &self.name);
        self.dtype.encode_into(out);
        out.push(self.nullable as u8);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Column> {
        let name = r.read_str()?.to_string();
        let dtype = DataType::decode_from(r)?;
        let nullable = match r.read_u8()? {
            0 => false,
            1 => true,
            b => return Err(Error::encoding(format!("bad nullability byte {b}"))),
        };
        Ok(Column {
            name,
            dtype,
            nullable,
        })
    }
}

impl BinCodec for Schema {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.columns().len() as u64);
        for c in self.columns() {
            c.encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Schema> {
        let n = r.read_varint()? as usize;
        if n > r.remaining() {
            return Err(Error::encoding(format!(
                "schema width {n} exceeds remaining input {}",
                r.remaining()
            )));
        }
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            columns.push(Column::decode_from(r)?);
        }
        Ok(Schema::new(columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn round_trip<T: BinCodec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v, "round trip through {bytes:?}");
    }

    #[test]
    fn value_round_trips_every_variant() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(1),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(3.25),
            Value::Float(f64::MAX),
            Value::Float(f64::MIN_POSITIVE),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::str(""),
            Value::str("hello"),
            Value::str("naïve — ünïcode ✓ 日本語"),
            Value::Timestamp(0),
            Value::Timestamp(-1_234_567_890),
            Value::Timestamp(i64::MAX),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        let bytes = Value::Float(f64::NAN).to_bytes();
        let Value::Float(back) = Value::from_bytes(&bytes).unwrap() else {
            panic!("not a float");
        };
        assert!(back.is_nan());
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn negative_zero_keeps_its_sign_bit() {
        let bytes = Value::Float(-0.0).to_bytes();
        let Value::Float(back) = Value::from_bytes(&bytes).unwrap() else {
            panic!("not a float");
        };
        assert!(back.is_sign_negative());
    }

    #[test]
    fn small_ints_encode_small() {
        // zigzag varint: |Int(x)| ≤ 63 should be tag + 1 byte.
        for i in [-63i64, -1, 0, 1, 63] {
            assert_eq!(Value::Int(i).to_bytes().len(), 2, "Int({i})");
        }
        assert_eq!(Value::Null.to_bytes().len(), 1);
        assert_eq!(Value::Bool(true).to_bytes().len(), 1);
    }

    #[test]
    fn row_round_trips() {
        round_trip(&Row::new(vec![]));
        round_trip(&row![1, "x", 2.5, true]);
        let mixed = Row::new(vec![
            Value::Null,
            Value::Int(-42),
            Value::str(""),
            Value::str("αβγ"),
            Value::Timestamp(99),
            Value::Bool(false),
        ]);
        round_trip(&mixed);
    }

    #[test]
    fn schema_round_trips() {
        round_trip(&Schema::empty());
        let s = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("price", DataType::Float),
            Column::new("born", DataType::Timestamp),
            Column::new("ok", DataType::Bool),
        ]);
        round_trip(&s);
        round_trip(&s.qualified("alias"));
    }

    #[test]
    fn streams_of_rows_concatenate() {
        let rows = vec![row![1, "a"], row![2, "b"], row![3, Value::Null]];
        let mut buf = Vec::new();
        for r in &rows {
            r.encode_into(&mut buf);
        }
        let mut reader = ByteReader::new(&buf);
        let mut back = Vec::new();
        while !reader.is_empty() {
            back.push(Row::decode_from(&mut reader).unwrap());
        }
        assert_eq!(back, rows);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = row![1, "hello world", 2.5].to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Row::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Value::Int(7).to_bytes();
        bytes.push(0xFF);
        assert!(Value::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bad_tags_and_lengths_are_errors() {
        assert!(Value::from_bytes(&[200]).is_err(), "unknown tag");
        // Str with a length far beyond the buffer.
        assert!(Value::from_bytes(&[TAG_STR, 0xFF, 0xFF, 0x7F]).is_err());
        // Invalid UTF-8 payload.
        assert!(Value::from_bytes(&[TAG_STR, 2, 0xC0, 0x00]).is_err());
        // Varint that never terminates / overflows.
        assert!(Value::from_bytes(&[TAG_INT, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02]).is_err());
    }

    #[test]
    fn varint_boundaries() {
        let mut out = Vec::new();
        for v in [0u64, 127, 128, 16_383, 16_384, u64::MAX] {
            out.clear();
            write_varint(&mut out, v);
            let mut r = ByteReader::new(&out);
            assert_eq!(r.read_varint().unwrap(), v);
            assert!(r.is_empty());
        }
        assert_eq!({ let mut o = Vec::new(); write_varint(&mut o, 127); o.len() }, 1);
        assert_eq!({ let mut o = Vec::new(); write_varint(&mut o, 128); o.len() }, 2);
        assert_eq!({ let mut o = Vec::new(); write_varint(&mut o, u64::MAX); o.len() }, 10);
    }
}
