//! The shared error type.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by any layer of the stack.
///
/// The variants mirror the stages a request moves through: parsing, catalog
/// binding, permission checks, optimization, execution, constraint
/// enforcement and replication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexer/parser failures.
    Parse(String),
    /// Unknown table/column/view/procedure, duplicate object, etc.
    Catalog(String),
    /// The connected principal lacks a required permission.
    Permission(String),
    /// Type mismatches during binding or evaluation.
    Type(String),
    /// The optimizer could not produce a valid plan.
    Plan(String),
    /// Runtime execution failures.
    Execution(String),
    /// Primary-key/NOT NULL violations and similar.
    Constraint(String),
    /// Replication infrastructure failures.
    Replication(String),
    /// A query's freshness requirement cannot be met by any cached view.
    Freshness(String),
    /// Binary encode/decode failures (wire frames, persisted bytes).
    Encoding(String),
}

impl Error {
    pub fn parse(msg: impl Into<String>) -> Error {
        Error::Parse(msg.into())
    }
    pub fn catalog(msg: impl Into<String>) -> Error {
        Error::Catalog(msg.into())
    }
    pub fn permission(msg: impl Into<String>) -> Error {
        Error::Permission(msg.into())
    }
    pub fn type_error(msg: impl Into<String>) -> Error {
        Error::Type(msg.into())
    }
    pub fn plan(msg: impl Into<String>) -> Error {
        Error::Plan(msg.into())
    }
    pub fn execution(msg: impl Into<String>) -> Error {
        Error::Execution(msg.into())
    }
    pub fn constraint(msg: impl Into<String>) -> Error {
        Error::Constraint(msg.into())
    }
    pub fn replication(msg: impl Into<String>) -> Error {
        Error::Replication(msg.into())
    }
    pub fn freshness(msg: impl Into<String>) -> Error {
        Error::Freshness(msg.into())
    }
    pub fn encoding(msg: impl Into<String>) -> Error {
        Error::Encoding(msg.into())
    }

    /// Short machine-readable category name.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Catalog(_) => "catalog",
            Error::Permission(_) => "permission",
            Error::Type(_) => "type",
            Error::Plan(_) => "plan",
            Error::Execution(_) => "execution",
            Error::Constraint(_) => "constraint",
            Error::Replication(_) => "replication",
            Error::Freshness(_) => "freshness",
            Error::Encoding(_) => "encoding",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            Error::Parse(m) => ("parse error", m),
            Error::Catalog(m) => ("catalog error", m),
            Error::Permission(m) => ("permission denied", m),
            Error::Type(m) => ("type error", m),
            Error::Plan(m) => ("planning error", m),
            Error::Execution(m) => ("execution error", m),
            Error::Constraint(m) => ("constraint violation", m),
            Error::Replication(m) => ("replication error", m),
            Error::Freshness(m) => ("freshness violation", m),
            Error::Encoding(m) => ("encoding error", m),
        };
        write!(f, "{kind}: {msg}")
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = Error::catalog("table `foo` not found");
        assert_eq!(e.to_string(), "catalog error: table `foo` not found");
        assert_eq!(e.kind(), "catalog");
    }

    #[test]
    fn errors_compare_by_content() {
        assert_eq!(Error::parse("x"), Error::parse("x"));
        assert_ne!(Error::parse("x"), Error::plan("x"));
    }
}
