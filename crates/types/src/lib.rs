//! Core data model shared by every crate in the MTCache reproduction:
//! SQL values, data types, rows, schemas and the common error type.
//!
//! The model is deliberately small — the paper's workload (TPC-W plus the
//! examples of §5) needs integers, floats, strings, booleans and timestamps.
//! All values carry a total order (`NULL` sorts lowest, as in SQL Server's
//! index ordering) so they can key B-tree indexes directly.

pub mod batch;
pub mod codec;
pub mod error;
pub mod row;
pub mod schema;
pub mod value;

pub use batch::{ColBuilder, ColData, ColumnVec, RowBatch, RowBatchBuilder};
pub use codec::{BinCodec, ByteReader};
pub use error::{Error, Result};
pub use row::Row;
pub use schema::{Column, Schema};
pub use value::{DataType, Value};

/// Normalizes a SQL identifier: identifiers in this dialect are
/// case-insensitive and stored lower-case, matching SQL Server's default
/// case-insensitive collation that the paper's scripts rely on.
pub fn normalize_ident(ident: &str) -> String {
    ident.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_ident_lowercases() {
        assert_eq!(normalize_ident("Customer"), "customer");
        assert_eq!(normalize_ident("ORDER_LINE"), "order_line");
        assert_eq!(normalize_ident("already_lower"), "already_lower");
    }
}
