//! Column and schema definitions.

use crate::error::{Error, Result};
use crate::value::DataType;
use crate::normalize_ident;

/// A column definition: name, type, nullability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl Column {
    /// New nullable column. The name is normalized to lower case.
    pub fn new(name: &str, dtype: DataType) -> Column {
        Column {
            name: normalize_ident(name),
            dtype,
            nullable: true,
        }
    }

    /// New NOT NULL column.
    pub fn not_null(name: &str, dtype: DataType) -> Column {
        Column {
            name: normalize_ident(name),
            dtype,
            nullable: false,
        }
    }
}

/// An ordered list of columns describing a row shape.
///
/// Column lookup is by (normalized) name; output schemas produced by joins
/// may qualify duplicated names as `alias.column`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    pub fn empty() -> Schema {
        Schema { columns: vec![] }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Finds a column index by name.
    ///
    /// Accepts either the exact stored name or, when the stored name is
    /// qualified (`alias.col`), the bare suffix — provided the suffix is
    /// unambiguous. This mirrors SQL name resolution after a join.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        let want = normalize_ident(name);
        if let Some(i) = self.columns.iter().position(|c| c.name == want) {
            return Ok(i);
        }
        // Fall back to suffix matching for unqualified references.
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name
                    .rsplit_once('.')
                    .map(|(_, suffix)| suffix == want)
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(Error::catalog(format!("column `{name}` not found"))),
            _ => Err(Error::catalog(format!("column `{name}` is ambiguous"))),
        }
    }

    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_ok()
    }

    /// Concatenates two schemas (join output), qualifying nothing; callers
    /// are expected to have already qualified conflicting names.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Returns a schema with every column name prefixed by `alias.`
    /// (stripping any existing qualifier first).
    pub fn qualified(&self, alias: &str) -> Schema {
        let alias = normalize_ident(alias);
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| {
                    let base = c.name.rsplit_once('.').map(|(_, s)| s).unwrap_or(&c.name);
                    Column {
                        name: format!("{alias}.{base}"),
                        dtype: c.dtype,
                        nullable: c.nullable,
                    }
                })
                .collect(),
        }
    }

    /// Projects a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Estimated row width in bytes, used for transfer-cost estimation.
    pub fn estimated_row_width(&self) -> u64 {
        self.columns.iter().map(|c| c.dtype.estimated_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("price", DataType::Float),
        ])
    }

    #[test]
    fn index_of_exact() {
        let s = sample();
        assert_eq!(s.index_of("id").unwrap(), 0);
        assert_eq!(s.index_of("PRICE").unwrap(), 2);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn qualified_and_suffix_lookup() {
        let s = sample().qualified("c");
        assert_eq!(s.column(0).name, "c.id");
        assert_eq!(s.index_of("c.id").unwrap(), 0);
        assert_eq!(s.index_of("id").unwrap(), 0, "bare suffix resolves");
    }

    #[test]
    fn ambiguous_suffix_is_an_error() {
        let joined = sample().qualified("a").join(&sample().qualified("b"));
        assert!(joined.index_of("id").is_err());
        assert_eq!(joined.index_of("a.id").unwrap(), 0);
        assert_eq!(joined.index_of("b.id").unwrap(), 3);
    }

    #[test]
    fn requalifying_strips_old_alias() {
        let s = sample().qualified("a").qualified("b");
        assert_eq!(s.column(0).name, "b.id");
    }

    #[test]
    fn project_selects_columns() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.column(0).name, "price");
        assert_eq!(p.column(1).name, "id");
    }

    #[test]
    fn row_width_sums_column_widths() {
        assert_eq!(sample().estimated_row_width(), 8 + 24 + 8);
    }
}
