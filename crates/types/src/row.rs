//! Row representation.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A tuple of values.
///
/// Rows flow through physical operators by value; cloning a row clones its
/// `Vec` but string payloads are `Arc<str>`, so clones are cheap in the
/// common string-heavy TPC-W rows.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row(pub Vec<Value>);

impl Row {
    pub fn new(values: Vec<Value>) -> Row {
        Row(values)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Concatenates two rows (join output). When one side is empty the
    /// other is cloned as-is — a capacity-exact `Vec` clone instead of a
    /// fresh allocation plus two extends.
    pub fn join(&self, other: &Row) -> Row {
        if other.0.is_empty() {
            return self.clone();
        }
        if self.0.is_empty() {
            return other.clone();
        }
        let mut values = Vec::with_capacity(self.0.len() + other.0.len());
        values.extend_from_slice(&self.0);
        values.extend_from_slice(&other.0);
        Row(values)
    }

    /// Projects the row onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Estimated wire size in bytes for transfer costing.
    pub fn estimated_width(&self) -> u64 {
        self.0.iter().map(Value::estimated_width).sum()
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Row {
        Row(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Row {
        Row(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Convenience macro for building rows in tests and generators.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_concatenates() {
        let a = row![1, "x"];
        let b = row![2.5];
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        assert_eq!(j[0], Value::Int(1));
        assert_eq!(j[2], Value::Float(2.5));
    }

    #[test]
    fn join_empty_side_is_capacity_exact() {
        let a = row![1, "x"];
        let empty = Row::new(vec![]);
        let j = a.join(&empty);
        assert_eq!(j, a);
        assert_eq!(j.0.capacity(), a.len());
        let j2 = empty.join(&a);
        assert_eq!(j2, a);
        assert_eq!(j2.0.capacity(), a.len());
        let both = a.join(&row![2]);
        assert_eq!(both.0.capacity(), 3);
    }

    #[test]
    fn project_reorders() {
        let r = row![1, "x", true];
        let p = r.project(&[2, 0]);
        assert_eq!(p, row![true, 1]);
    }

    #[test]
    fn display_renders_tuple() {
        assert_eq!(row![1, "a"].to_string(), "(1, a)");
    }
}
