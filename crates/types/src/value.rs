//! SQL values and data types.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Error, Result};

/// The SQL data types supported by the engine.
///
/// This is the subset a TPC-W schema needs; `Timestamp` stores milliseconds
/// since an arbitrary epoch (the simulator's clock origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Timestamp,
}

impl DataType {
    /// Name used in `CREATE TABLE` scripts and error messages.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "VARCHAR",
            DataType::Timestamp => "TIMESTAMP",
        }
    }

    /// Parses a type name as it appears in DDL. Accepts common synonyms so
    /// scripts written for other dialects keep working.
    pub fn parse(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" | "BIT" => Ok(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" | "NUMERIC" => Ok(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" => Ok(DataType::Float),
            "VARCHAR" | "CHAR" | "TEXT" | "NVARCHAR" | "STRING" => Ok(DataType::Str),
            "TIMESTAMP" | "DATETIME" | "DATE" => Ok(DataType::Timestamp),
            other => Err(Error::parse(format!("unknown data type `{other}`"))),
        }
    }

    /// Rough byte width used by the cost model for data-transfer volume
    /// estimation (strings use an assumed average width).
    pub fn estimated_width(self) -> u64 {
        match self {
            DataType::Bool => 1,
            DataType::Int => 8,
            DataType::Float => 8,
            DataType::Str => 24,
            DataType::Timestamp => 8,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single SQL value.
///
/// `Value` has a *total* order (needed for B-tree keys and ORDER BY):
/// `Null` sorts before everything, then `Bool < Int/Float < Str < Timestamp`.
/// `Int` and `Float` compare numerically with each other so a predicate like
/// `price > 10` works whether `price` was loaded as an int or a float.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Timestamp(i64),
}

impl Value {
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type of this value; `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Coerces this value to `ty`, used when inserting into typed columns.
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let ok = match (self, ty) {
            (Value::Bool(_), DataType::Bool)
            | (Value::Int(_), DataType::Int)
            | (Value::Float(_), DataType::Float)
            | (Value::Str(_), DataType::Str)
            | (Value::Timestamp(_), DataType::Timestamp) => return Ok(self.clone()),
            (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
            (Value::Float(f), DataType::Int) => Value::Int(*f as i64),
            (Value::Int(i), DataType::Timestamp) => Value::Timestamp(*i),
            (Value::Timestamp(t), DataType::Int) => Value::Int(*t),
            (Value::Int(i), DataType::Bool) => Value::Bool(*i != 0),
            (Value::Bool(b), DataType::Int) => Value::Int(*b as i64),
            (v, DataType::Str) => Value::str(v.to_string()),
            _ => {
                return Err(Error::type_error(format!(
                    "cannot coerce {self} to {ty}"
                )))
            }
        };
        Ok(ok)
    }

    /// SQL-semantics comparison: any comparison involving `NULL` is unknown.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }

    /// Estimated wire size in bytes, used by the DataTransfer cost model.
    pub fn estimated_width(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 8,
            Value::Str(s) => s.len() as u64,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Timestamp(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => (1u8, b).hash(state),
            // Int and Float must hash identically when equal (1 == 1.0):
            // hash every numeric through its f64 bit pattern.
            Value::Int(i) => (2u8, (*i as f64).to_bits()).hash(state),
            Value::Float(f) => (2u8, f.to_bits()).hash(state),
            Value::Str(s) => (3u8, s).hash(state),
            Value::Timestamp(t) => (4u8, t).hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Timestamp(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::Int(1), Value::Null, Value::str("a"), Value::Bool(true)];
        vs.sort();
        assert!(vs[0].is_null());
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn equal_int_float_hash_identically() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(1)), Some(Ordering::Equal));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).coerce_to(DataType::Float).unwrap(), Value::Float(3.0));
        assert_eq!(Value::Float(3.9).coerce_to(DataType::Int).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Int(42).coerce_to(DataType::Str).unwrap(),
            Value::str("42")
        );
        assert!(Value::str("x").coerce_to(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce_to(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn datatype_parse_synonyms() {
        assert_eq!(DataType::parse("bigint").unwrap(), DataType::Int);
        assert_eq!(DataType::parse("NVARCHAR").unwrap(), DataType::Str);
        assert_eq!(DataType::parse("datetime").unwrap(), DataType::Timestamp);
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "FALSE");
    }
}
