//! Property tests on the storage engine: after an arbitrary stream of
//! transactions (some of which fail and roll back), tables and their
//! secondary indexes must agree exactly, statistics must bound reality,
//! and the commit log must replay to the same state.
//!
//! Ported from `proptest` to the in-tree `mtc_util::check` harness.

use mtc_util::check::{self, Config};
use mtc_util::rng::{Rng, StdRng};

use mtc_storage::{Database, RowChange};
use mtc_types::{row, Column, DataType, Row, Schema, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, cat: i64 },
    Update { id: i64, cat: i64 },
    Delete { id: i64 },
}

fn gen_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0u32..3) {
        0 => Op::Insert {
            id: rng.gen_range(0i64..60),
            cat: rng.gen_range(0i64..6),
        },
        1 => Op::Update {
            id: rng.gen_range(0i64..60),
            cat: rng.gen_range(0i64..6),
        },
        _ => Op::Delete {
            id: rng.gen_range(0i64..60),
        },
    }
}

fn gen_ops(rng: &mut StdRng, max: usize) -> Vec<Op> {
    check::vec_of(rng, 1..max, gen_op)
}

fn new_db(name: &str) -> Database {
    let mut db = Database::new(name);
    db.create_table(
        "t",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("cat", DataType::Int),
        ]),
        &["id".into()],
    )
    .unwrap();
    db.create_index("ix_cat", "t", &["cat".into()], false)
        .unwrap();
    db
}

/// Applies an op as a transaction; failures (missing/duplicate keys) are
/// expected and must leave the database untouched.
fn apply_op(db: &mut Database, op: &Op, ts: i64) {
    let change = match op {
        Op::Insert { id, cat } => RowChange::Insert {
            table: "t".into(),
            row: row![*id, *cat],
        },
        Op::Update { id, cat } => {
            let Some(before) = db.table_ref("t").unwrap().get(&row![*id]).cloned() else {
                return;
            };
            RowChange::Update {
                table: "t".into(),
                before,
                after: row![*id, *cat],
            }
        }
        Op::Delete { id } => {
            let Some(before) = db.table_ref("t").unwrap().get(&row![*id]).cloned() else {
                return;
            };
            RowChange::Delete {
                table: "t".into(),
                row: before,
            }
        }
    };
    let _ = db.apply(ts, vec![change]);
}

/// The invariant: every row is indexed under exactly its current key, and
/// the index holds nothing else.
fn check_index_consistency(db: &Database) {
    let t = db.table_ref("t").unwrap();
    let ix = db.index("ix_cat").unwrap();
    assert_eq!(ix.len(), t.row_count(), "index entry count");
    for r in t.scan() {
        let pks = ix.seek(&Row::new(vec![r[1].clone()]));
        assert!(
            pks.contains(&Row::new(vec![r[0].clone()])),
            "row {r} missing from index"
        );
    }
}

#[test]
fn indexes_stay_consistent_under_random_ops() {
    check::run(
        &Config::cases(64),
        "indexes_stay_consistent_under_random_ops",
        |rng| gen_ops(rng, 120),
        |ops| {
            let mut db = new_db("p");
            for (i, op) in ops.iter().enumerate() {
                apply_op(&mut db, op, i as i64);
            }
            check_index_consistency(&db);
        },
    );
}

#[test]
fn commit_log_replays_to_identical_state() {
    check::run(
        &Config::cases(64),
        "commit_log_replays_to_identical_state",
        |rng| gen_ops(rng, 100),
        |ops| {
            let mut db = new_db("orig");
            for (i, op) in ops.iter().enumerate() {
                apply_op(&mut db, op, i as i64);
            }
            // Replay the log on a fresh database.
            let mut replica = new_db("replica");
            for txn in db.log().read_from(mtc_storage::Lsn::ZERO) {
                replica.apply_unlogged(&txn.changes).unwrap();
            }
            let orig: Vec<Row> = db.table_ref("t").unwrap().scan().cloned().collect();
            let rep: Vec<Row> = replica.table_ref("t").unwrap().scan().cloned().collect();
            assert_eq!(orig, rep);
            check_index_consistency(&replica);
        },
    );
}

#[test]
fn failed_multi_change_transactions_roll_back_completely() {
    check::run(
        &Config::cases(64),
        "failed_multi_change_transactions_roll_back_completely",
        |rng| (gen_ops(rng, 40), rng.gen_range(0i64..60)),
        |(ops, dup)| {
            let dup = *dup;
            let mut db = new_db("rb");
            for (i, op) in ops.iter().enumerate() {
                apply_op(&mut db, op, i as i64);
            }
            let rows_before: Vec<Row> = db.table_ref("t").unwrap().scan().cloned().collect();
            let log_before = db.log().len();
            // A transaction whose second change must fail: insert a fresh id,
            // then insert a duplicate of something present (or of itself).
            let fresh = 1000i64;
            let result = db.apply(
                9_999,
                vec![
                    RowChange::Insert {
                        table: "t".into(),
                        row: row![fresh, 0],
                    },
                    RowChange::Insert {
                        table: "t".into(),
                        row: if rows_before.iter().any(|r| r[0] == Value::Int(dup)) {
                            row![dup, 0]
                        } else {
                            row![fresh, 1]
                        },
                    },
                ],
            );
            assert!(result.is_err(), "duplicate insert must fail");
            let rows_after: Vec<Row> = db.table_ref("t").unwrap().scan().cloned().collect();
            assert_eq!(rows_before, rows_after, "rollback must be complete");
            assert_eq!(db.log().len(), log_before, "failed txn must not log");
            check_index_consistency(&db);
        },
    );
}

#[test]
fn statistics_bound_reality() {
    check::run(
        &Config::cases(64),
        "statistics_bound_reality",
        |rng| gen_ops(rng, 100),
        |ops| {
            let mut db = new_db("st");
            for (i, op) in ops.iter().enumerate() {
                apply_op(&mut db, op, i as i64);
            }
            db.analyze();
            let stats = db.catalog.stats("t").unwrap();
            let t = db.table_ref("t").unwrap();
            assert_eq!(stats.row_count as usize, t.row_count());
            if t.row_count() > 0 {
                let ids: Vec<i64> = t.scan().map(|r| r[0].as_i64().unwrap()).collect();
                let s = stats.column("id").unwrap();
                assert_eq!(s.min.clone(), Some(Value::Int(*ids.iter().min().unwrap())));
                assert_eq!(s.max.clone(), Some(Value::Int(*ids.iter().max().unwrap())));
                // Selectivity of `id <= max` must be 1, of `id < min` must be 0.
                let max = Value::Int(*ids.iter().max().unwrap());
                assert!((s.selectivity_le(&max) - 1.0).abs() < 1e-9);
            }
        },
    );
}
