//! A database: catalog + table data + secondary indexes + commit log.

use std::collections::BTreeMap;

use mtc_types::{normalize_ident, Column, Error, Result, Row, Schema};

use crate::catalog::{Catalog, IndexMeta, TableMeta};
use crate::index::Index;
use crate::log::{CommitLog, Lsn, RowChange};
use crate::stats::{ColumnStats, TableStats};
use crate::table::Table;

pub use crate::log::RowChange as Change;

/// Kind of write, used by DML executors when building change lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    Insert,
    Update,
    Delete,
}

/// A single database (one of possibly several on a server).
///
/// All mutation goes through [`Database::apply`], which applies a whole
/// transaction's [`RowChange`] list atomically (all-or-nothing, with undo on
/// failure), maintains secondary indexes, and appends the transaction to the
/// commit log for replication to sniff.
#[derive(Debug, Default, Clone)]
pub struct Database {
    name: String,
    tables: BTreeMap<String, Table>,
    indexes: BTreeMap<String, Index>,
    /// table name → names of its secondary indexes.
    table_indexes: BTreeMap<String, Vec<String>>,
    pub catalog: Catalog,
    log: CommitLog,
}

impl Database {
    pub fn new(name: &str) -> Database {
        Database {
            name: normalize_ident(name),
            ..Database::default()
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    // -- DDL ------------------------------------------------------------

    /// Creates a table. `primary_key` is a list of column names.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        primary_key: &[String],
    ) -> Result<()> {
        let name = normalize_ident(name);
        if self.tables.contains_key(&name) {
            return Err(Error::catalog(format!("table `{name}` already exists")));
        }
        let pk: Vec<usize> = primary_key
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?;
        self.tables.insert(name.clone(), Table::new(&name, schema, pk));
        self.table_indexes.entry(name.clone()).or_default();
        self.catalog.set_stats(&name, TableStats::empty());
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let name = normalize_ident(name);
        self.tables
            .remove(&name)
            .ok_or_else(|| Error::catalog(format!("table `{name}` not found")))?;
        for ix in self.table_indexes.remove(&name).unwrap_or_default() {
            self.indexes.remove(&ix);
        }
        self.catalog.bump_version();
        Ok(())
    }

    /// Creates a secondary index and builds it from existing rows.
    pub fn create_index(
        &mut self,
        name: &str,
        table: &str,
        columns: &[String],
        unique: bool,
    ) -> Result<()> {
        let name = normalize_ident(name);
        let table_name = normalize_ident(table);
        if self.indexes.contains_key(&name) {
            return Err(Error::catalog(format!("index `{name}` already exists")));
        }
        let t = self.table_ref(&table_name)?;
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| t.schema().index_of(c))
            .collect::<Result<_>>()?;
        let mut ix = Index::new(&name, &table_name, cols, unique);
        // scan_with_keys avoids the per-row `key_of` full scan (O(n²) on
        // rowid tables) the seed build performed.
        let pairs: Vec<(Row, Row)> = t
            .scan_with_keys()
            .map(|(k, r)| (r.clone(), k.clone()))
            .collect();
        ix.rebuild(pairs.iter().map(|(r, k)| (r, k.clone())))?;
        self.indexes.insert(name.clone(), ix);
        self.table_indexes
            .entry(table_name)
            .or_default()
            .push(name);
        self.catalog.bump_version();
        Ok(())
    }

    // -- lookups ----------------------------------------------------------

    pub fn table_ref(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&normalize_ident(name))
            .ok_or_else(|| Error::catalog(format!("table `{name}` not found")))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&normalize_ident(name))
            .ok_or_else(|| Error::catalog(format!("table `{name}` not found")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&normalize_ident(name))
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.get(&normalize_ident(name))
    }

    /// Secondary indexes of `table`.
    pub fn indexes_of(&self, table: &str) -> impl Iterator<Item = &Index> {
        self.table_indexes
            .get(&normalize_ident(table))
            .into_iter()
            .flatten()
            .filter_map(|n| self.indexes.get(n))
    }

    /// Index metadata, for scripting a shadow database.
    pub fn index_metas(&self) -> Vec<IndexMeta> {
        self.indexes
            .values()
            .map(|ix| {
                let schema = self.tables[ix.table()].schema();
                IndexMeta {
                    name: ix.name().to_string(),
                    table: ix.table().to_string(),
                    columns: ix
                        .columns()
                        .iter()
                        .map(|&c| schema.column(c).name.clone())
                        .collect(),
                    unique: ix.is_unique(),
                }
            })
            .collect()
    }

    /// Table metadata, for scripting a shadow database.
    pub fn table_metas(&self) -> Vec<TableMeta> {
        self.tables
            .values()
            .map(|t| TableMeta {
                name: t.name().to_string(),
                schema: t.schema().clone(),
                primary_key: t
                    .primary_key()
                    .iter()
                    .map(|&c| t.schema().column(c).name.clone())
                    .collect(),
            })
            .collect()
    }

    // -- transactions -------------------------------------------------------

    /// Applies one transaction's changes atomically and logs it.
    ///
    /// On any failure the already-applied prefix is rolled back and the log
    /// is untouched. Returns the assigned LSN.
    pub fn apply(&mut self, commit_ts_ms: i64, changes: Vec<RowChange>) -> Result<Lsn> {
        let mut applied: Vec<RowChange> = Vec::with_capacity(changes.len());
        for change in &changes {
            if let Err(e) = self.apply_one(change) {
                // Undo in reverse order.
                for done in applied.iter().rev() {
                    self.undo_one(done);
                }
                return Err(e);
            }
            applied.push(change.clone());
        }
        Ok(self.log.append(commit_ts_ms, changes))
    }

    /// Applies changes *without logging* — used by replication subscribers,
    /// whose applied changes must not be re-published.
    pub fn apply_unlogged(&mut self, changes: &[RowChange]) -> Result<()> {
        let mut applied: Vec<&RowChange> = Vec::with_capacity(changes.len());
        for change in changes {
            if let Err(e) = self.apply_one(change) {
                for done in applied.iter().rev() {
                    self.undo_one(done);
                }
                return Err(e);
            }
            applied.push(change);
        }
        Ok(())
    }

    fn apply_one(&mut self, change: &RowChange) -> Result<()> {
        // The clustering key is threaded through each arm instead of being
        // rediscovered per step: `Table::key_of` is a full scan on rowid
        // tables, and the seed paid it up to three times per change.
        match change {
            RowChange::Insert { table, row } => {
                let t = self.table_mut(table)?;
                let (row, pk) = t.insert_keyed(row.clone())?;
                self.index_insert(table, &row, pk)
            }
            RowChange::Update {
                table,
                before,
                after,
            } => {
                let t = self.table_mut(table)?;
                let old_pk = t.key_of(before).ok_or_else(|| {
                    Error::execution(format!("update target not found in `{table}`"))
                })?;
                let new_pk = t.update_with_key(&old_pk, after.clone())?;
                self.index_remove(table, before, &old_pk);
                self.index_insert(table, after, new_pk)
            }
            RowChange::Delete { table, row } => {
                let t = self.table_mut(table)?;
                let pk = t.key_of(row).ok_or_else(|| {
                    Error::execution(format!("delete target not found in `{table}`"))
                })?;
                if t.delete_by_key(&pk).is_none() {
                    return Err(Error::execution(format!(
                        "delete target not found in `{table}`"
                    )));
                }
                self.index_remove(table, row, &pk);
                Ok(())
            }
        }
    }

    fn undo_one(&mut self, change: &RowChange) {
        let inverse = match change.clone() {
            RowChange::Insert { table, row } => RowChange::Delete { table, row },
            RowChange::Update {
                table,
                before,
                after,
            } => RowChange::Update {
                table,
                before: after,
                after: before,
            },
            RowChange::Delete { table, row } => RowChange::Insert { table, row },
        };
        // Undo of a successfully applied change cannot fail.
        let _ = self.apply_one(&inverse);
    }

    fn index_insert(&mut self, table: &str, row: &Row, pk: Row) -> Result<()> {
        let names = self
            .table_indexes
            .get(&normalize_ident(table))
            .cloned()
            .unwrap_or_default();
        for (i, n) in names.iter().enumerate() {
            if let Some(ix) = self.indexes.get_mut(n) {
                if let Err(e) = ix.insert(row, pk.clone()) {
                    // Roll back index entries made so far plus the base row.
                    for prev in &names[..i] {
                        if let Some(p) = self.indexes.get_mut(prev) {
                            p.remove(row, &pk);
                        }
                    }
                    if let Ok(t) = self.table_mut(table) {
                        t.delete_by_key(&pk);
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn index_remove(&mut self, table: &str, row: &Row, pk: &Row) {
        let names = self
            .table_indexes
            .get(&normalize_ident(table))
            .cloned()
            .unwrap_or_default();
        for n in names {
            if let Some(ix) = self.indexes.get_mut(&n) {
                ix.remove(row, pk);
            }
        }
    }

    // -- log ------------------------------------------------------------

    pub fn log(&self) -> &CommitLog {
        &self.log
    }

    pub fn log_mut(&mut self) -> &mut CommitLog {
        &mut self.log
    }

    // -- statistics -----------------------------------------------------

    /// Recomputes statistics for every table (ANALYZE).
    pub fn analyze(&mut self) {
        let names: Vec<String> = self.tables.keys().cloned().collect();
        for name in names {
            self.analyze_table(&name);
        }
    }

    /// Recomputes statistics for one table.
    pub fn analyze_table(&mut self, name: &str) {
        let Some(t) = self.tables.get(&normalize_ident(name)) else {
            return;
        };
        let mut stats = TableStats {
            row_count: t.row_count() as u64,
            columns: BTreeMap::new(),
        };
        for (i, col) in t.schema().columns().iter().enumerate() {
            let mut values: Vec<_> = t.scan().map(|r| r[i].clone()).collect();
            stats
                .columns
                .insert(col.name.clone(), ColumnStats::compute(&mut values));
        }
        self.catalog.set_stats(name, stats);
    }

    // -- shadowing --------------------------------------------------------

    /// Builds the *shadow database* of `self` (§3): identical tables, views,
    /// indexes, constraints and permissions, identical statistics — but
    /// every table empty and marked shadow.
    pub fn shadow_clone(&self) -> Database {
        let mut shadow = Database::new(&self.name);
        for t in self.tables.values() {
            shadow.tables.insert(t.name().to_string(), t.to_shadow());
        }
        for (name, ix) in &self.indexes {
            shadow.indexes.insert(
                name.clone(),
                Index::new(ix.name(), ix.table(), ix.columns().to_vec(), ix.is_unique()),
            );
        }
        shadow.table_indexes = self.table_indexes.clone();
        shadow.catalog = self.catalog.clone();
        // "By default stored procedures are not copied from the backend
        // server to the MTCache server" (§5.2) — the DBA copies them
        // selectively.
        shadow.catalog.clear_procedures();
        shadow.log = CommitLog::new();
        shadow
    }

    /// Creates a regular (non-shadow) empty table with the same shape as an
    /// existing object's schema — the backing store for a cached view.
    pub fn create_backing_table(
        &mut self,
        name: &str,
        columns: Vec<Column>,
        primary_key: &[String],
    ) -> Result<()> {
        self.create_table(name, Schema::new(columns), primary_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_types::{row, DataType, Value};

    fn db_with_item() -> Database {
        let mut db = Database::new("tpcw");
        db.create_table(
            "item",
            Schema::new(vec![
                Column::not_null("i_id", DataType::Int),
                Column::new("i_title", DataType::Str),
                Column::new("i_subject", DataType::Str),
            ]),
            &["i_id".into()],
        )
        .unwrap();
        db.create_index("ix_item_subject", "item", &["i_subject".into()], false)
            .unwrap();
        db
    }

    fn ins(i: i64, title: &str, subject: &str) -> RowChange {
        RowChange::Insert {
            table: "item".into(),
            row: row![i, title, subject],
        }
    }

    #[test]
    fn apply_logs_and_maintains_indexes() {
        let mut db = db_with_item();
        let lsn = db
            .apply(100, vec![ins(1, "a", "ARTS"), ins(2, "b", "ARTS")])
            .unwrap();
        assert_eq!(lsn, Lsn(0));
        assert_eq!(db.table_ref("item").unwrap().row_count(), 2);
        let ix = db.index("ix_item_subject").unwrap();
        assert_eq!(ix.seek(&row!["ARTS"]).len(), 2);
        assert_eq!(db.log().read_from(Lsn(0)).len(), 1);
        assert_eq!(db.log().read_from(Lsn(0))[0].commit_ts_ms, 100);
    }

    #[test]
    fn failed_transaction_rolls_back_entirely() {
        let mut db = db_with_item();
        db.apply(0, vec![ins(1, "a", "ARTS")]).unwrap();
        // Second change violates PK; first must be undone.
        let err = db.apply(1, vec![ins(2, "b", "SPORTS"), ins(1, "dup", "ARTS")]);
        assert!(err.is_err());
        assert_eq!(db.table_ref("item").unwrap().row_count(), 1);
        assert!(db.index("ix_item_subject").unwrap().seek(&row!["SPORTS"]).is_empty());
        assert_eq!(db.log().len(), 1, "failed txn must not be logged");
    }

    #[test]
    fn update_rewrites_index_entries() {
        let mut db = db_with_item();
        db.apply(0, vec![ins(1, "a", "ARTS")]).unwrap();
        db.apply(
            1,
            vec![RowChange::Update {
                table: "item".into(),
                before: row![1, "a", "ARTS"],
                after: row![1, "a", "HISTORY"],
            }],
        )
        .unwrap();
        let ix = db.index("ix_item_subject").unwrap();
        assert!(ix.seek(&row!["ARTS"]).is_empty());
        assert_eq!(ix.seek(&row!["HISTORY"]).len(), 1);
    }

    #[test]
    fn delete_removes_index_entries() {
        let mut db = db_with_item();
        db.apply(0, vec![ins(1, "a", "ARTS")]).unwrap();
        db.apply(
            1,
            vec![RowChange::Delete {
                table: "item".into(),
                row: row![1, "a", "ARTS"],
            }],
        )
        .unwrap();
        assert_eq!(db.table_ref("item").unwrap().row_count(), 0);
        assert!(db.index("ix_item_subject").unwrap().is_empty());
    }

    #[test]
    fn apply_unlogged_skips_log() {
        let mut db = db_with_item();
        db.apply_unlogged(&[ins(1, "a", "ARTS")]).unwrap();
        assert_eq!(db.table_ref("item").unwrap().row_count(), 1);
        assert!(db.log().is_empty());
    }

    #[test]
    fn analyze_populates_stats() {
        let mut db = db_with_item();
        let changes: Vec<_> = (1..=100)
            .map(|i| ins(i, &format!("t{i}"), if i % 2 == 0 { "A" } else { "B" }))
            .collect();
        db.apply(0, changes).unwrap();
        db.analyze();
        let stats = db.catalog.stats("item").unwrap();
        assert_eq!(stats.row_count, 100);
        let id_stats = stats.column("i_id").unwrap();
        assert_eq!(id_stats.min, Some(Value::Int(1)));
        assert_eq!(id_stats.max, Some(Value::Int(100)));
        assert_eq!(stats.column("i_subject").unwrap().distinct_count, 2);
    }

    #[test]
    fn shadow_clone_keeps_catalog_drops_data() {
        let mut db = db_with_item();
        db.apply(0, vec![ins(1, "a", "ARTS")]).unwrap();
        db.analyze();
        let shadow = db.shadow_clone();
        let t = shadow.table_ref("item").unwrap();
        assert!(t.is_shadow());
        assert_eq!(t.row_count(), 0);
        // Statistics still reflect the backend's data.
        assert_eq!(shadow.catalog.stats("item").unwrap().row_count, 1);
        // Index defined but empty.
        assert!(shadow.index("ix_item_subject").unwrap().is_empty());
    }

    #[test]
    fn create_index_builds_from_existing_rows() {
        let mut db = db_with_item();
        db.apply(0, vec![ins(1, "a", "ARTS"), ins(2, "b", "ARTS")]).unwrap();
        db.create_index("ix_item_title", "item", &["i_title".into()], true)
            .unwrap();
        assert_eq!(db.index("ix_item_title").unwrap().len(), 2);
    }

    #[test]
    fn metas_for_scripting() {
        let db = db_with_item();
        let tables = db.table_metas();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].primary_key, vec!["i_id"]);
        let indexes = db.index_metas();
        assert_eq!(indexes[0].columns, vec!["i_subject"]);
    }
}
