//! Secondary indexes.

use std::collections::BTreeMap;
use std::ops::Bound;

use mtc_types::{Error, Result, Row};

/// A secondary B-tree index mapping key columns to primary keys.
///
/// The index stores, for each key value, the clustering keys of the matching
/// rows (non-unique indexes can have many). Lookups return clustering keys;
/// the executor fetches full rows from the table.
#[derive(Debug, Clone)]
pub struct Index {
    name: String,
    table: String,
    /// Indices of the key columns in the table schema, in key order.
    columns: Vec<usize>,
    unique: bool,
    map: BTreeMap<Row, Vec<Row>>,
}

impl Index {
    pub fn new(name: &str, table: &str, columns: Vec<usize>, unique: bool) -> Index {
        Index {
            name: mtc_types::normalize_ident(name),
            table: mtc_types::normalize_ident(table),
            columns,
            unique,
            map: BTreeMap::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn table(&self) -> &str {
        &self.table
    }

    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    pub fn is_unique(&self) -> bool {
        self.unique
    }

    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn key_of(&self, row: &Row) -> Row {
        row.project(&self.columns)
    }

    /// Registers `row` (with clustering key `pk`).
    pub fn insert(&mut self, row: &Row, pk: Row) -> Result<()> {
        let key = self.key_of(row);
        let entry = self.map.entry(key.clone()).or_default();
        if self.unique && !entry.is_empty() {
            return Err(Error::constraint(format!(
                "duplicate key {key} in unique index `{}`",
                self.name
            )));
        }
        entry.push(pk);
        Ok(())
    }

    /// Unregisters `row` (with clustering key `pk`).
    pub fn remove(&mut self, row: &Row, pk: &Row) {
        let key = self.key_of(row);
        if let Some(entry) = self.map.get_mut(&key) {
            entry.retain(|p| p != pk);
            if entry.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// Equality lookup: clustering keys of rows whose index key equals `key`.
    pub fn seek(&self, key: &Row) -> &[Row] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Range lookup over the index key order.
    pub fn range(
        &self,
        low: Bound<Row>,
        high: Bound<Row>,
    ) -> impl Iterator<Item = &Row> + '_ {
        self.map.range((low, high)).flat_map(|(_, pks)| pks.iter())
    }

    /// Rebuilds from scratch over `(row, pk)` pairs.
    pub fn rebuild<'a>(
        &mut self,
        rows: impl Iterator<Item = (&'a Row, Row)>,
    ) -> Result<()> {
        self.map.clear();
        for (row, pk) in rows {
            self.insert(row, pk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_types::row;

    #[test]
    fn seek_and_range() {
        let mut ix = Index::new("ix", "t", vec![1], false);
        // rows: (pk, category)
        ix.insert(&row![1, "a"], row![1]).unwrap();
        ix.insert(&row![2, "b"], row![2]).unwrap();
        ix.insert(&row![3, "a"], row![3]).unwrap();
        assert_eq!(ix.seek(&row!["a"]).len(), 2);
        assert_eq!(ix.seek(&row!["zzz"]).len(), 0);
        let in_range: Vec<&Row> = ix
            .range(Bound::Included(row!["a"]), Bound::Excluded(row!["b"]))
            .collect();
        assert_eq!(in_range.len(), 2);
    }

    #[test]
    fn unique_violation() {
        let mut ix = Index::new("ix", "t", vec![0], true);
        ix.insert(&row!["x"], row![1]).unwrap();
        assert!(ix.insert(&row!["x"], row![2]).is_err());
    }

    #[test]
    fn remove_cleans_up() {
        let mut ix = Index::new("ix", "t", vec![0], false);
        ix.insert(&row!["x"], row![1]).unwrap();
        ix.insert(&row!["x"], row![2]).unwrap();
        ix.remove(&row!["x"], &row![1]);
        assert_eq!(ix.seek(&row!["x"]), &[row![2]]);
        ix.remove(&row!["x"], &row![2]);
        assert!(ix.is_empty());
    }

    #[test]
    fn rebuild_replaces_contents() {
        let mut ix = Index::new("ix", "t", vec![0], false);
        ix.insert(&row!["stale"], row![0]).unwrap();
        let rows = [row!["a"], row!["b"]];
        ix.rebuild(rows.iter().enumerate().map(|(i, r)| (r, row![i as i64])))
            .unwrap();
        assert_eq!(ix.len(), 2);
        assert!(ix.seek(&row!["stale"]).is_empty());
    }
}
