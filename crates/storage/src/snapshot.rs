//! Epoch-published database snapshots: readers never block on writers.
//!
//! The seed served every query under a coarse `RwLock<Database>` read lock,
//! so each replication `apply` write-locked the world and stalled every
//! concurrent session for the duration of the apply. [`SnapshotDb`]
//! replaces that scheme with *publication*:
//!
//! * The **master** copy of the database lives behind a mutex that only
//!   writers touch. Writers mutate it through [`SnapshotDb::write`], which
//!   batches everything done under one guard — a whole replication
//!   delivery, a whole DML transaction, a whole DDL statement — and, on
//!   guard drop, *publishes* a fresh immutable [`DbSnapshot`] through an
//!   [`ArcSwap`] in a single pointer swap.
//! * Readers call [`SnapshotDb::read`] and get an `Arc<DbSnapshot>`: a
//!   consistent, immutable image stamped with a monotonically increasing
//!   publication **epoch** and per-object **applied-LSN watermarks**. A
//!   reader holds no lock while it executes; a concurrent apply publishes
//!   *around* it and can never tear the image out from under it.
//!
//! The watermarks are how the currency router reads its staleness off the
//! snapshot *it actually scanned*: the replication distributor stamps each
//! target table's applied LSN on the write guard before publishing, and
//! the router later compares that stamp — not the live subscription state,
//! which may have advanced since — against the backend's commit LSN.
//!
//! [`ArcSwap`]: mtc_util::sync::ArcSwap

use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use mtc_util::sync::{ArcSwap, Mutex, MutexGuard};

use crate::database::Database;
use crate::log::Lsn;

/// Replication progress stamped on a snapshot for one target object: the
/// LSN *past* the last transaction whose effects are contained in the
/// image, and the publisher-clock instant the object is synced through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermark {
    /// Transactions with `lsn < self.lsn` are fully reflected in the image.
    pub lsn: Lsn,
    /// Publisher-clock commit time through which the object is in sync.
    pub synced_through_ms: i64,
}

/// An immutable, consistently published image of a [`Database`].
///
/// Derefs to [`Database`], so everything that reads a database reads a
/// snapshot unchanged. Carries the publication [`epoch`](DbSnapshot::epoch)
/// and the per-object [`watermark`](DbSnapshot::watermark)s that were
/// current when this image was published.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    db: Database,
    epoch: u64,
    watermarks: BTreeMap<String, Watermark>,
}

impl DbSnapshot {
    /// Publication sequence number: strictly increases with every publish.
    /// Two reads observing the same epoch observed the identical image.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The replication watermark stamped for `object` (a cached view's
    /// backing table) when this snapshot was published, or `None` if no
    /// delivery has ever stamped it.
    pub fn watermark(&self, object: &str) -> Option<Watermark> {
        self.watermarks.get(&mtc_types::normalize_ident(object)).copied()
    }

    /// The applied-LSN half of [`watermark`](DbSnapshot::watermark).
    pub fn applied_lsn(&self, object: &str) -> Option<Lsn> {
        self.watermark(object).map(|w| w.lsn)
    }

    /// All watermarks carried by this snapshot.
    pub fn watermarks(&self) -> &BTreeMap<String, Watermark> {
        &self.watermarks
    }
}

impl Deref for DbSnapshot {
    type Target = Database;
    fn deref(&self) -> &Database {
        &self.db
    }
}

/// The writer-side state: the authoritative database plus the watermark
/// map and epoch counter the next publication will carry.
#[derive(Debug)]
struct Master {
    db: Database,
    watermarks: BTreeMap<String, Watermark>,
    epoch: u64,
}

/// A database whose read state is an epoch-published snapshot.
///
/// See the module docs for the publication protocol. The call shape
/// matches the `RwLock<Database>` it replaces — `.read()` for queries,
/// `.write()` for mutation — so call sites migrate without restructuring;
/// the difference is that `read()` returns an owned `Arc<DbSnapshot>`
/// instead of a guard, and `write()` publishes on drop.
#[derive(Debug)]
pub struct SnapshotDb {
    master: Mutex<Master>,
    published: ArcSwap<DbSnapshot>,
}

impl SnapshotDb {
    /// Wraps `db`, publishing it as epoch 0.
    pub fn new(db: Database) -> SnapshotDb {
        let snapshot = DbSnapshot {
            db: db.clone(),
            epoch: 0,
            watermarks: BTreeMap::new(),
        };
        SnapshotDb {
            master: Mutex::new(Master {
                db,
                watermarks: BTreeMap::new(),
                epoch: 0,
            }),
            published: ArcSwap::from_value(snapshot),
        }
    }

    /// Returns the currently published snapshot. Never blocks on writers
    /// beyond the pointer swap itself; the returned image is immutable and
    /// survives any number of subsequent publications unchanged.
    pub fn read(&self) -> Arc<DbSnapshot> {
        self.published.load()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.published.load().epoch
    }

    /// Opens a write batch against the master copy. Everything mutated
    /// through the returned guard becomes visible to readers *atomically*
    /// when the guard drops and publishes the next snapshot — readers never
    /// observe a torn intermediate state.
    pub fn write(&self) -> SnapshotWriteGuard<'_> {
        SnapshotWriteGuard {
            master: self.master.lock(),
            published: &self.published,
        }
    }
}

impl From<Database> for SnapshotDb {
    fn from(db: Database) -> SnapshotDb {
        SnapshotDb::new(db)
    }
}

/// Exclusive write access to the master database; publishes on drop.
///
/// Derefs to [`Database`] so existing mutation code compiles unchanged.
/// Use [`set_applied_lsn`](SnapshotWriteGuard::set_applied_lsn) to stamp a
/// replication watermark that the published snapshot (and every later one)
/// will carry.
pub struct SnapshotWriteGuard<'a> {
    master: MutexGuard<'a, Master>,
    published: &'a ArcSwap<DbSnapshot>,
}

impl SnapshotWriteGuard<'_> {
    /// Records replication progress for `object`. The stamp rides on the
    /// snapshot published when this guard drops (and on every later one,
    /// until restamped).
    pub fn set_watermark(&mut self, object: &str, mark: Watermark) {
        self.master
            .watermarks
            .insert(mtc_types::normalize_ident(object), mark);
    }
}

impl Deref for SnapshotWriteGuard<'_> {
    type Target = Database;
    fn deref(&self) -> &Database {
        &self.master.db
    }
}

impl DerefMut for SnapshotWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Database {
        &mut self.master.db
    }
}

impl Drop for SnapshotWriteGuard<'_> {
    fn drop(&mut self) {
        self.master.epoch += 1;
        let snapshot = DbSnapshot {
            db: self.master.db.clone(),
            epoch: self.master.epoch,
            watermarks: self.master.watermarks.clone(),
        };
        self.published.store(Arc::new(snapshot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_types::{row, Column, DataType, Schema};

    fn db_with_t() -> Database {
        let mut db = Database::new("snap");
        db.create_table(
            "t",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("v", DataType::Str),
            ]),
            &["id".into()],
        )
        .unwrap();
        db
    }

    fn ins(i: i64, v: &str) -> crate::log::RowChange {
        crate::log::RowChange::Insert {
            table: "t".into(),
            row: row![i, v],
        }
    }

    #[test]
    fn held_snapshot_is_immune_to_later_writes() {
        let sdb = SnapshotDb::new(db_with_t());
        sdb.write().apply_unlogged(&[ins(1, "a")]).unwrap();
        let before = sdb.read();
        sdb.write().apply_unlogged(&[ins(2, "b")]).unwrap();
        assert_eq!(before.table_ref("t").unwrap().row_count(), 1);
        assert_eq!(sdb.read().table_ref("t").unwrap().row_count(), 2);
    }

    #[test]
    fn publication_is_atomic_per_guard() {
        let sdb = SnapshotDb::new(db_with_t());
        let watching = sdb.read();
        {
            let mut g = sdb.write();
            g.apply_unlogged(&[ins(1, "a")]).unwrap();
            // Mid-batch: nothing published yet.
            assert_eq!(sdb.read().epoch(), watching.epoch());
            assert_eq!(sdb.read().table_ref("t").unwrap().row_count(), 0);
            g.apply_unlogged(&[ins(2, "b")]).unwrap();
        }
        // Both changes land in one publication.
        let now = sdb.read();
        assert_eq!(now.epoch(), watching.epoch() + 1);
        assert_eq!(now.table_ref("t").unwrap().row_count(), 2);
    }

    #[test]
    fn epochs_strictly_increase() {
        let sdb = SnapshotDb::new(db_with_t());
        let mut last = sdb.epoch();
        for i in 0..10 {
            sdb.write().apply_unlogged(&[ins(i + 1, "x")]).unwrap();
            let e = sdb.epoch();
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    fn watermarks_ride_on_publication() {
        let sdb = SnapshotDb::new(db_with_t());
        assert_eq!(sdb.read().applied_lsn("t"), None);
        {
            let mut g = sdb.write();
            g.apply_unlogged(&[ins(1, "a")]).unwrap();
            g.set_watermark(
                "t",
                Watermark {
                    lsn: Lsn(5),
                    synced_through_ms: 100,
                },
            );
        }
        let snap = sdb.read();
        assert_eq!(snap.applied_lsn("t"), Some(Lsn(5)));
        assert_eq!(snap.watermark("t").unwrap().synced_through_ms, 100);
        // A later, unrelated publication keeps the stamp.
        sdb.write().apply_unlogged(&[ins(2, "b")]).unwrap();
        assert_eq!(sdb.read().applied_lsn("t"), Some(Lsn(5)));
        // But the snapshot captured earlier still shows its own stamp even
        // after the watermark advances.
        sdb.write().set_watermark(
            "t",
            Watermark {
                lsn: Lsn(9),
                synced_through_ms: 900,
            },
        );
        assert_eq!(snap.applied_lsn("t"), Some(Lsn(5)));
        assert_eq!(sdb.read().applied_lsn("t"), Some(Lsn(9)));
    }

    #[test]
    fn concurrent_readers_see_whole_transactions_only() {
        // Writers insert pairs (2k, 2k+1) under one guard; readers must
        // never observe an odd row count.
        let sdb = Arc::new(SnapshotDb::new(db_with_t()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let sdb = sdb.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut max_epoch = 0;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let s = sdb.read();
                        let n = s.table_ref("t").unwrap().row_count();
                        assert_eq!(n % 2, 0, "torn publication: {n} rows");
                        assert!(s.epoch() >= max_epoch, "epoch went backwards");
                        max_epoch = s.epoch();
                    }
                })
            })
            .collect();
        for k in 0..200i64 {
            let mut g = sdb.write();
            g.apply_unlogged(&[ins(2 * k, "a"), ins(2 * k + 1, "b")])
                .unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(sdb.read().table_ref("t").unwrap().row_count(), 400);
    }
}
