//! Commit log: the source of truth replication sniffs.
//!
//! SQL Server transactional replication works by *log sniffing*: a log
//! reader process collects committed changes from the transaction log (§2.2
//! of the paper). [`CommitLog`] is our transaction log — every committed
//! transaction appends one [`CommittedTransaction`] carrying its row-level
//! changes in order, and the replication crate's log reader tails it.

use mtc_types::codec::{write_str, write_varint, write_zigzag};
use mtc_types::{BinCodec, ByteReader, Error, Result, Row};

/// Log sequence number — position of a committed transaction in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

impl Lsn {
    pub const ZERO: Lsn = Lsn(0);

    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

/// A single row-level change, as recorded in the log.
///
/// `Update` carries both images so subscribers can locate the old row even
/// when the primary key itself changed.
#[derive(Debug, Clone, PartialEq)]
pub enum RowChange {
    Insert {
        table: String,
        row: Row,
    },
    Update {
        table: String,
        before: Row,
        after: Row,
    },
    Delete {
        table: String,
        row: Row,
    },
}

impl RowChange {
    pub fn table(&self) -> &str {
        match self {
            RowChange::Insert { table, .. }
            | RowChange::Update { table, .. }
            | RowChange::Delete { table, .. } => table,
        }
    }

    /// The row image after the change (`None` for deletes).
    pub fn after_image(&self) -> Option<&Row> {
        match self {
            RowChange::Insert { row, .. } => Some(row),
            RowChange::Update { after, .. } => Some(after),
            RowChange::Delete { .. } => None,
        }
    }

    /// The row image before the change (`None` for inserts).
    pub fn before_image(&self) -> Option<&Row> {
        match self {
            RowChange::Insert { .. } => None,
            RowChange::Update { before, .. } => Some(before),
            RowChange::Delete { row, .. } => Some(row),
        }
    }
}

/// A committed transaction in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedTransaction {
    pub lsn: Lsn,
    /// Commit timestamp in milliseconds on the committing server's clock
    /// (the simulator's clock during experiments).
    pub commit_ts_ms: i64,
    pub changes: Vec<RowChange>,
}

// --- Wire encoding -------------------------------------------------------
//
// Committed transactions are what the replication pipeline ships from the
// publisher to subscribers, so they (and their row changes) carry the
// in-tree binary codec. Tags: 0 = Insert, 1 = Update, 2 = Delete.

impl BinCodec for Lsn {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.0);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Lsn> {
        Ok(Lsn(r.read_varint()?))
    }
}

impl BinCodec for RowChange {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RowChange::Insert { table, row } => {
                out.push(0);
                write_str(out, table);
                row.encode_into(out);
            }
            RowChange::Update {
                table,
                before,
                after,
            } => {
                out.push(1);
                write_str(out, table);
                before.encode_into(out);
                after.encode_into(out);
            }
            RowChange::Delete { table, row } => {
                out.push(2);
                write_str(out, table);
                row.encode_into(out);
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<RowChange> {
        Ok(match r.read_u8()? {
            0 => RowChange::Insert {
                table: r.read_str()?.to_string(),
                row: Row::decode_from(r)?,
            },
            1 => RowChange::Update {
                table: r.read_str()?.to_string(),
                before: Row::decode_from(r)?,
                after: Row::decode_from(r)?,
            },
            2 => RowChange::Delete {
                table: r.read_str()?.to_string(),
                row: Row::decode_from(r)?,
            },
            tag => return Err(Error::encoding(format!("unknown RowChange tag {tag}"))),
        })
    }
}

impl BinCodec for CommittedTransaction {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.lsn.encode_into(out);
        write_zigzag(out, self.commit_ts_ms);
        write_varint(out, self.changes.len() as u64);
        for c in &self.changes {
            c.encode_into(out);
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<CommittedTransaction> {
        let lsn = Lsn::decode_from(r)?;
        let commit_ts_ms = r.read_zigzag()?;
        let n = r.read_varint()? as usize;
        if n > r.remaining() {
            return Err(Error::encoding(format!(
                "change count {n} exceeds remaining input {}",
                r.remaining()
            )));
        }
        let mut changes = Vec::with_capacity(n);
        for _ in 0..n {
            changes.push(RowChange::decode_from(r)?);
        }
        Ok(CommittedTransaction {
            lsn,
            commit_ts_ms,
            changes,
        })
    }
}

/// Append-only transaction log.
#[derive(Debug, Default, Clone)]
pub struct CommitLog {
    entries: Vec<CommittedTransaction>,
    /// LSNs below this have been truncated (already distributed).
    base: u64,
}

impl CommitLog {
    pub fn new() -> CommitLog {
        CommitLog::default()
    }

    /// Next LSN that will be assigned.
    pub fn head(&self) -> Lsn {
        Lsn(self.base + self.entries.len() as u64)
    }

    /// Appends a committed transaction, assigning its LSN.
    pub fn append(&mut self, commit_ts_ms: i64, changes: Vec<RowChange>) -> Lsn {
        let lsn = self.head();
        self.entries.push(CommittedTransaction {
            lsn,
            commit_ts_ms,
            changes,
        });
        lsn
    }

    /// All committed transactions with `lsn >= from` in commit order.
    pub fn read_from(&self, from: Lsn) -> &[CommittedTransaction] {
        let start = from.0.saturating_sub(self.base) as usize;
        if start >= self.entries.len() {
            &[]
        } else {
            &self.entries[start..]
        }
    }

    /// Drops entries with `lsn < upto` (changes already propagated to every
    /// subscriber are deleted from the distribution database, §2.2).
    pub fn truncate_before(&mut self, upto: Lsn) {
        if upto.0 <= self.base {
            return;
        }
        let drop_n = ((upto.0 - self.base) as usize).min(self.entries.len());
        self.entries.drain(..drop_n);
        self.base = upto.0;
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_types::row;

    fn change(i: i64) -> RowChange {
        RowChange::Insert {
            table: "t".into(),
            row: row![i],
        }
    }

    #[test]
    fn append_assigns_sequential_lsns() {
        let mut log = CommitLog::new();
        assert_eq!(log.append(0, vec![change(1)]), Lsn(0));
        assert_eq!(log.append(1, vec![change(2)]), Lsn(1));
        assert_eq!(log.head(), Lsn(2));
    }

    #[test]
    fn read_from_returns_suffix() {
        let mut log = CommitLog::new();
        for i in 0..5 {
            log.append(i, vec![change(i)]);
        }
        assert_eq!(log.read_from(Lsn(0)).len(), 5);
        assert_eq!(log.read_from(Lsn(3)).len(), 2);
        assert_eq!(log.read_from(Lsn(3))[0].lsn, Lsn(3));
        assert!(log.read_from(Lsn(99)).is_empty());
    }

    #[test]
    fn truncate_preserves_lsns() {
        let mut log = CommitLog::new();
        for i in 0..5 {
            log.append(i, vec![change(i)]);
        }
        log.truncate_before(Lsn(3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.read_from(Lsn(0))[0].lsn, Lsn(3));
        assert_eq!(log.read_from(Lsn(4))[0].lsn, Lsn(4));
        // Idempotent / no-op truncations.
        log.truncate_before(Lsn(1));
        assert_eq!(log.len(), 2);
        log.truncate_before(Lsn(100));
        assert!(log.is_empty());
        assert_eq!(log.head(), Lsn(100));
    }

    #[test]
    fn row_change_images() {
        let up = RowChange::Update {
            table: "t".into(),
            before: row![1, "a"],
            after: row![1, "b"],
        };
        assert_eq!(up.before_image().unwrap()[1], mtc_types::Value::str("a"));
        assert_eq!(up.after_image().unwrap()[1], mtc_types::Value::str("b"));
        let del = RowChange::Delete {
            table: "t".into(),
            row: row![1],
        };
        assert!(del.after_image().is_none());
    }

    #[test]
    fn committed_transaction_round_trips_through_codec() {
        let txn = CommittedTransaction {
            lsn: Lsn(42),
            commit_ts_ms: -7, // clocks can start before the epoch in tests
            changes: vec![
                RowChange::Insert {
                    table: "t".into(),
                    row: row![1, "a", 2.5],
                },
                RowChange::Update {
                    table: "t".into(),
                    before: row![1, "a", 2.5],
                    after: row![1, "b", mtc_types::Value::Null],
                },
                RowChange::Delete {
                    table: "other".into(),
                    row: row![9],
                },
            ],
        };
        let bytes = txn.to_bytes();
        assert_eq!(CommittedTransaction::from_bytes(&bytes).unwrap(), txn);
        // Truncation anywhere is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(CommittedTransaction::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn row_change_codec_rejects_unknown_tag() {
        assert!(RowChange::from_bytes(&[9, 0]).is_err());
    }
}
