//! Table and column statistics.
//!
//! The paper's shadow database replicates the backend's *statistics* so the
//! cache server can cost plans locally without fetching anything (§3, §5).
//! We model SQL Server-style statistics: per-table row counts and per-column
//! min/max, null count, distinct-value estimates and an equi-depth
//! histogram. These are plain data — cheap to copy into a shadow catalog —
//! and carry all the estimation entry points the optimizer uses.

use std::collections::BTreeMap;

use mtc_types::Value;

/// Number of buckets an equi-depth histogram carries by default.
pub const DEFAULT_BUCKETS: usize = 32;

/// An equi-depth histogram over one column's non-null values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper boundary (inclusive) of each bucket, ascending.
    pub bounds: Vec<Value>,
    /// Rows per bucket (all buckets hold ~the same count by construction).
    pub rows_per_bucket: f64,
}

impl Histogram {
    /// Builds an equi-depth histogram from a sorted multiset of values.
    pub fn build(sorted: &[Value], buckets: usize) -> Option<Histogram> {
        if sorted.is_empty() || buckets == 0 {
            return None;
        }
        let buckets = buckets.min(sorted.len());
        let per = sorted.len() as f64 / buckets as f64;
        let mut bounds = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let idx = ((b as f64 * per).ceil() as usize).min(sorted.len()) - 1;
            bounds.push(sorted[idx].clone());
        }
        bounds.dedup();
        let rows_per_bucket = sorted.len() as f64 / bounds.len() as f64;
        Some(Histogram {
            bounds,
            rows_per_bucket,
        })
    }

    /// Fraction of values `<= v` (0..=1).
    pub fn fraction_le(&self, v: &Value) -> f64 {
        if self.bounds.is_empty() {
            return 0.5;
        }
        let full = self.bounds.partition_point(|b| b <= v);
        if full == self.bounds.len() {
            return 1.0;
        }
        // Assume the value falls halfway through the bucket it lands in.
        (full as f64 + 0.5) / self.bounds.len() as f64
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub null_count: u64,
    pub distinct_count: u64,
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Stats of an all-unknown column (used before ANALYZE has run).
    pub fn unknown() -> ColumnStats {
        ColumnStats {
            min: None,
            max: None,
            null_count: 0,
            distinct_count: 0,
            histogram: None,
        }
    }

    /// Computes stats from a column's values.
    pub fn compute(values: &mut Vec<Value>) -> ColumnStats {
        let null_count = values.iter().filter(|v| v.is_null()).count() as u64;
        values.retain(|v| !v.is_null());
        values.sort();
        let distinct_count = {
            let mut n = 0u64;
            let mut prev: Option<&Value> = None;
            for v in values.iter() {
                if prev != Some(v) {
                    n += 1;
                    prev = Some(v);
                }
            }
            n
        };
        ColumnStats {
            min: values.first().cloned(),
            max: values.last().cloned(),
            null_count,
            distinct_count,
            histogram: Histogram::build(values, DEFAULT_BUCKETS),
        }
    }

    /// Selectivity of `col = v` (fraction of rows).
    pub fn selectivity_eq(&self, total_rows: u64) -> f64 {
        if total_rows == 0 {
            return 0.0;
        }
        if self.distinct_count > 0 {
            1.0 / self.distinct_count as f64
        } else {
            0.1 // SQL Server-style magic default
        }
    }

    /// Selectivity of `col <= v`.
    pub fn selectivity_le(&self, v: &Value) -> f64 {
        // Clamp with min/max first: histograms only know bucket bounds.
        if let Some(min) = &self.min {
            if v < min {
                return 0.0;
            }
        }
        if let Some(max) = &self.max {
            if v >= max {
                return 1.0;
            }
        }
        match (&self.histogram, &self.min, &self.max) {
            (Some(h), _, _) => h.fraction_le(v),
            (None, Some(min), Some(max)) => uniform_fraction(min, max, v),
            _ => 0.3, // magic default for missing stats
        }
    }

    /// Selectivity of `col < v` — approximated by `<=` minus one distinct
    /// value's worth.
    pub fn selectivity_lt(&self, v: &Value) -> f64 {
        let le = self.selectivity_le(v);
        if self.distinct_count > 0 {
            (le - 1.0 / self.distinct_count as f64).max(0.0)
        } else {
            le * 0.9
        }
    }

    /// Selectivity of `low <= col <= high`.
    pub fn selectivity_between(&self, low: &Value, high: &Value) -> f64 {
        (self.selectivity_le(high) - self.selectivity_lt(low)).clamp(0.0, 1.0)
    }

    /// Probability that a uniformly drawn parameter in `[min, max]` is
    /// `<= v` — the paper's §5.1 frequency estimate `Fl` for ChoosePlan
    /// guard predicates ("lacking any better information, we estimate Fl
    /// assuming the parameter is uniformly distributed between the min and
    /// max values of the column").
    pub fn guard_probability_le(&self, v: &Value) -> f64 {
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => uniform_fraction(min, max, v),
            _ => 0.5,
        }
    }
}

/// Fraction of `[min, max]` that lies at or below `v`, assuming uniformity.
fn uniform_fraction(min: &Value, max: &Value, v: &Value) -> f64 {
    match (min.as_f64(), max.as_f64(), v.as_f64()) {
        (Some(lo), Some(hi), Some(x)) if hi > lo => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
        _ => {
            // Non-numeric: fall back to ordering only.
            if v < min {
                0.0
            } else if v >= max {
                1.0
            } else {
                0.5
            }
        }
    }
}

/// Statistics for one table (or materialized view).
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub row_count: u64,
    /// Column name → stats.
    pub columns: BTreeMap<String, ColumnStats>,
}

impl TableStats {
    pub fn empty() -> TableStats {
        TableStats {
            row_count: 0,
            columns: BTreeMap::new(),
        }
    }

    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_values(n: i64) -> Vec<Value> {
        (1..=n).map(Value::Int).collect()
    }

    #[test]
    fn compute_basic_stats() {
        let mut vals = int_values(100);
        vals.push(Value::Null);
        let s = ColumnStats::compute(&mut vals);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(100)));
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct_count, 100);
        assert!(s.histogram.is_some());
    }

    #[test]
    fn histogram_fraction_le_is_monotone_and_accurate() {
        let mut vals = int_values(1000);
        let s = ColumnStats::compute(&mut vals);
        let f250 = s.selectivity_le(&Value::Int(250));
        let f500 = s.selectivity_le(&Value::Int(500));
        let f900 = s.selectivity_le(&Value::Int(900));
        assert!(f250 < f500 && f500 < f900);
        assert!((f500 - 0.5).abs() < 0.05, "got {f500}");
        assert!((f250 - 0.25).abs() < 0.05, "got {f250}");
    }

    #[test]
    fn selectivity_eq_uses_distinct_count() {
        let mut vals = int_values(200);
        let s = ColumnStats::compute(&mut vals);
        assert!((s.selectivity_eq(200) - 1.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn between_selectivity() {
        let mut vals = int_values(1000);
        let s = ColumnStats::compute(&mut vals);
        let f = s.selectivity_between(&Value::Int(200), &Value::Int(400));
        assert!((f - 0.2).abs() < 0.06, "got {f}");
    }

    #[test]
    fn guard_probability_matches_paper_uniform_assumption() {
        // Cust1000 example: cid uniform over [1, 10000]; guard @cid <= 1000.
        let mut vals = int_values(10_000);
        let s = ColumnStats::compute(&mut vals);
        let fl = s.guard_probability_le(&Value::Int(1000));
        assert!((fl - 0.1).abs() < 0.01, "got {fl}");
    }

    #[test]
    fn skewed_histogram_beats_uniform() {
        // 90% of values are 1..=100, 10% spread to 1000.
        let mut vals: Vec<Value> = (0..900).map(|i| Value::Int(i % 100 + 1)).collect();
        vals.extend((0..100).map(|i| Value::Int(100 + i * 9)));
        let s = ColumnStats::compute(&mut vals);
        let sel = s.selectivity_le(&Value::Int(100));
        assert!(sel > 0.8, "histogram should capture the skew, got {sel}");
    }

    #[test]
    fn empty_and_constant_columns() {
        let mut empty: Vec<Value> = vec![];
        let s = ColumnStats::compute(&mut empty);
        assert_eq!(s.min, None);
        assert!(s.histogram.is_none());

        let mut constant = vec![Value::Int(7); 50];
        let s = ColumnStats::compute(&mut constant);
        assert_eq!(s.distinct_count, 1);
        assert_eq!(s.selectivity_le(&Value::Int(7)), 1.0);
        assert_eq!(s.selectivity_le(&Value::Int(6)), 0.0);
    }
}
