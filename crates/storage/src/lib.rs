//! In-memory relational storage engine for the MTCache reproduction.
//!
//! A [`Database`] owns a [`catalog::Catalog`] (tables, indexes, views,
//! permissions, statistics, stored procedures) plus the table data, and an
//! append-only [`log::CommitLog`] of committed transactions. The commit log
//! is what SQL Server's transactional replication *log reader* sniffs; our
//! replication crate does exactly the same against [`log::CommitLog`].
//!
//! Shadow tables (the cache server's empty copies of backend tables) are
//! ordinary tables whose `is_shadow` flag is set: they carry full schema,
//! indexes, constraints, permissions and — crucially — *statistics imported
//! from the backend*, but hold no rows and refuse scans.

pub mod catalog;
pub mod database;
pub mod index;
pub mod log;
pub mod snapshot;
pub mod stats;
pub mod table;

pub use catalog::{Catalog, IndexMeta, ProcedureDef, TableMeta, ViewMeta};
pub use database::{Database, WriteOp};
pub use index::Index;
pub use log::{CommitLog, CommittedTransaction, Lsn, RowChange};
pub use snapshot::{DbSnapshot, SnapshotDb, SnapshotWriteGuard, Watermark};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::Table;
