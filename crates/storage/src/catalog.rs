//! Catalog: views, permissions, statistics and stored procedures.
//!
//! The catalog is deliberately *separable from data*: `Catalog::clone()` is
//! exactly what "shadowing the backend catalog information on the caching
//! server" (§3) needs — it carries everything required to parse, authorize
//! and cost-optimize queries locally, but no rows.

use std::collections::{BTreeMap, BTreeSet};

use mtc_sql::{Permission, Select, Statement};
use mtc_types::{normalize_ident, Error, Result};

use crate::stats::TableStats;

/// A view definition (virtual or materialized).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewMeta {
    pub name: String,
    /// The defining query. Materialized views that should be incrementally
    /// maintainable are select-project over a single base object.
    pub definition: Select,
    pub materialized: bool,
    /// On a cache server: true when this is a *cached* view maintained by
    /// replication (and therefore possibly stale; see §5.1.1 on why such
    /// views must not feed mixed-result plans).
    pub is_cached: bool,
}

impl ViewMeta {
    /// The single base object this view reads, if the definition is a
    /// simple select-project (the incremental-maintenance / replication
    /// article form).
    pub fn base_object(&self) -> Option<&str> {
        match self.definition.from.as_slice() {
            [mtc_sql::TableRef::Table { name, .. }] => Some(name),
            _ => None,
        }
    }
}

/// A stored procedure: named, parameterized statement list.
///
/// T-SQL procedures in the paper carry application logic; ours are a list of
/// statements over `@param` placeholders. A procedure whose body cannot run
/// on the cache server is transparently forwarded (§5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcedureDef {
    pub name: String,
    /// Parameter names (without `@`), in declaration order.
    pub params: Vec<String>,
    pub body: Vec<Statement>,
}

/// Index metadata kept in the catalog (the index *data* lives in
/// [`crate::Database`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexMeta {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
}

/// Table metadata snapshot used when scripting out a shadow database.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    pub name: String,
    pub schema: mtc_types::Schema,
    pub primary_key: Vec<String>,
}

/// The metadata half of a database.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    views: BTreeMap<String, ViewMeta>,
    procedures: BTreeMap<String, ProcedureDef>,
    /// (principal, object) → granted permissions.
    permissions: BTreeMap<(String, String), BTreeSet<Permission>>,
    /// Per table / materialized view statistics.
    stats: BTreeMap<String, TableStats>,
    /// Monotonic counter bumped on every change that can affect plan choice
    /// (views, statistics, and — via [`crate::Database`] — tables and
    /// indexes). Cached compiled plans are stamped with the version they
    /// were optimized under and invalidated when it moves.
    version: u64,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Current plan-relevant metadata version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Bumps the metadata version — called by every catalog mutation that
    /// can change optimizer decisions, and by [`crate::Database`] DDL
    /// (tables/indexes live outside the catalog but equally shape plans).
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    // -- views --------------------------------------------------------------

    pub fn create_view(&mut self, view: ViewMeta) -> Result<()> {
        let name = normalize_ident(&view.name);
        if self.views.contains_key(&name) {
            return Err(Error::catalog(format!("view `{name}` already exists")));
        }
        self.views.insert(name, view);
        self.bump_version();
        Ok(())
    }

    pub fn drop_view(&mut self, name: &str) -> Result<ViewMeta> {
        let name = normalize_ident(name);
        let meta = self
            .views
            .remove(&name)
            .ok_or_else(|| Error::catalog(format!("view `{name}` not found")))?;
        self.bump_version();
        Ok(meta)
    }

    pub fn view(&self, name: &str) -> Option<&ViewMeta> {
        self.views.get(&normalize_ident(name))
    }

    pub fn views(&self) -> impl Iterator<Item = &ViewMeta> {
        self.views.values()
    }

    /// All *materialized* views (candidates for view matching).
    pub fn materialized_views(&self) -> impl Iterator<Item = &ViewMeta> {
        self.views.values().filter(|v| v.materialized)
    }

    // -- procedures ---------------------------------------------------------

    pub fn create_procedure(&mut self, proc: ProcedureDef) -> Result<()> {
        let name = normalize_ident(&proc.name);
        if self.procedures.contains_key(&name) {
            return Err(Error::catalog(format!(
                "procedure `{name}` already exists"
            )));
        }
        self.procedures.insert(name, proc);
        Ok(())
    }

    pub fn drop_procedure(&mut self, name: &str) -> Result<()> {
        self.procedures
            .remove(&normalize_ident(name))
            .map(|_| ())
            .ok_or_else(|| Error::catalog(format!("procedure `{name}` not found")))
    }

    pub fn procedure(&self, name: &str) -> Option<&ProcedureDef> {
        self.procedures.get(&normalize_ident(name))
    }

    pub fn procedures(&self) -> impl Iterator<Item = &ProcedureDef> {
        self.procedures.values()
    }

    /// Removes every stored procedure (shadow databases start without any;
    /// the DBA copies procedures over selectively).
    pub fn clear_procedures(&mut self) {
        self.procedures.clear();
    }

    // -- permissions --------------------------------------------------------

    /// Grants `permission` on `object` to `principal`.
    pub fn grant(&mut self, principal: &str, object: &str, permission: Permission) {
        self.permissions
            .entry((normalize_ident(principal), normalize_ident(object)))
            .or_default()
            .insert(permission);
    }

    /// Checks a permission; the built-in `dbo` principal can do anything.
    pub fn check_permission(
        &self,
        principal: &str,
        object: &str,
        permission: Permission,
    ) -> Result<()> {
        let principal = normalize_ident(principal);
        if principal == "dbo" {
            return Ok(());
        }
        let allowed = self
            .permissions
            .get(&(principal.clone(), normalize_ident(object)))
            .map(|perms| perms.contains(&permission))
            .unwrap_or(false);
        if allowed {
            Ok(())
        } else {
            Err(Error::permission(format!(
                "principal `{principal}` lacks {} on `{object}`",
                permission.sql()
            )))
        }
    }

    /// All grants, for scripting the shadow database.
    pub fn grants(&self) -> impl Iterator<Item = (&str, &str, Permission)> {
        self.permissions.iter().flat_map(|((principal, object), perms)| {
            perms
                .iter()
                .map(move |p| (principal.as_str(), object.as_str(), *p))
        })
    }

    // -- statistics ---------------------------------------------------------

    pub fn set_stats(&mut self, object: &str, stats: TableStats) {
        self.stats.insert(normalize_ident(object), stats);
        self.bump_version();
    }

    /// Drops the statistics of an object (used when pruning shadow tables).
    pub fn remove_stats(&mut self, object: &str) {
        self.stats.remove(&normalize_ident(object));
        self.bump_version();
    }

    pub fn stats(&self, object: &str) -> Option<&TableStats> {
        self.stats.get(&normalize_ident(object))
    }

    pub fn all_stats(&self) -> impl Iterator<Item = (&str, &TableStats)> {
        self.stats.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Imports another catalog's statistics wholesale — the "statistics
    /// maintained on tables, indexes and materialized views reflect the data
    /// on the backend server" step of shadow-database setup (§1), also used
    /// by the §7 shadow-catalog *refresh* extension.
    pub fn import_stats_from(&mut self, other: &Catalog) {
        for (name, stats) in other.all_stats() {
            self.stats.insert(name.to_string(), stats.clone());
        }
        self.bump_version();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_sql::parse_statement;

    fn select(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            _ => panic!("not a select"),
        }
    }

    #[test]
    fn view_lifecycle() {
        let mut c = Catalog::new();
        c.create_view(ViewMeta {
            name: "cust1000".into(),
            definition: select("SELECT cid, cname FROM customer WHERE cid <= 1000"),
            materialized: true,
            is_cached: false,
        })
        .unwrap();
        assert!(c.view("Cust1000").is_some(), "lookup is case-insensitive");
        assert_eq!(c.view("cust1000").unwrap().base_object(), Some("customer"));
        assert!(c
            .create_view(ViewMeta {
                name: "cust1000".into(),
                definition: select("SELECT 1"),
                materialized: false,
                is_cached: false,
            })
            .is_err());
        c.drop_view("cust1000").unwrap();
        assert!(c.view("cust1000").is_none());
    }

    #[test]
    fn base_object_of_join_view_is_none() {
        let v = ViewMeta {
            name: "j".into(),
            definition: select("SELECT * FROM a INNER JOIN b ON a.x = b.x"),
            materialized: true,
            is_cached: false,
        };
        assert_eq!(v.base_object(), None);
    }

    #[test]
    fn permission_checks() {
        let mut c = Catalog::new();
        c.grant("app", "item", Permission::Select);
        assert!(c.check_permission("app", "item", Permission::Select).is_ok());
        assert!(c.check_permission("app", "item", Permission::Update).is_err());
        assert!(c.check_permission("app", "orders", Permission::Select).is_err());
        // dbo bypasses checks.
        assert!(c.check_permission("dbo", "anything", Permission::Delete).is_ok());
    }

    #[test]
    fn stats_import() {
        let mut backend = Catalog::new();
        backend.set_stats(
            "item",
            TableStats {
                row_count: 1000,
                columns: Default::default(),
            },
        );
        let mut shadow = Catalog::new();
        shadow.import_stats_from(&backend);
        assert_eq!(shadow.stats("item").unwrap().row_count, 1000);
    }

    #[test]
    fn procedures() {
        let mut c = Catalog::new();
        c.create_procedure(ProcedureDef {
            name: "getItem".into(),
            params: vec!["id".into()],
            body: vec![parse_statement("SELECT * FROM item WHERE i_id = @id").unwrap()],
        })
        .unwrap();
        assert!(c.procedure("GETITEM").is_some());
        assert!(c.drop_procedure("getitem").is_ok());
        assert!(c.drop_procedure("getitem").is_err());
    }
}
