//! Table storage: a clustered B-tree keyed on the primary key.

use std::collections::BTreeMap;

use mtc_types::{Error, Result, Row, Schema, Value};

/// A stored table.
///
/// Rows live in a `BTreeMap` keyed by the primary-key columns (a clustered
/// index, like SQL Server's default). Tables without a declared primary key
/// get a hidden monotonically increasing row id as the clustering key.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Indices (into `schema`) of the primary-key columns; empty if the
    /// table is clustered on the hidden row id.
    primary_key: Vec<usize>,
    rows: BTreeMap<Row, Row>,
    next_rowid: i64,
    /// Shadow tables hold no data; scans are refused (the cache server's
    /// optimizer must route around them).
    is_shadow: bool,
}

impl Table {
    pub fn new(name: &str, schema: Schema, primary_key: Vec<usize>) -> Table {
        Table {
            name: mtc_types::normalize_ident(name),
            schema,
            primary_key,
            rows: BTreeMap::new(),
            next_rowid: 0,
            is_shadow: false,
        }
    }

    /// An empty shadow of `self` (same schema, same key, no data).
    pub fn to_shadow(&self) -> Table {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            primary_key: self.primary_key.clone(),
            rows: BTreeMap::new(),
            next_rowid: 0,
            is_shadow: true,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    pub fn is_shadow(&self) -> bool {
        self.is_shadow
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Extracts the clustering key for a row, allocating a fresh hidden row
    /// id when the table has no declared primary key.
    fn key_for_insert(&mut self, row: &Row) -> Row {
        if self.primary_key.is_empty() {
            let id = self.next_rowid;
            self.next_rowid += 1;
            Row::new(vec![Value::Int(id)])
        } else {
            row.project(&self.primary_key)
        }
    }

    /// The clustering key of an existing (full) row. For rowid tables this
    /// performs a scan — callers on hot paths should keep the key around.
    pub fn key_of(&self, row: &Row) -> Option<Row> {
        if self.primary_key.is_empty() {
            self.rows
                .iter()
                .find(|(_, r)| *r == row)
                .map(|(k, _)| k.clone())
        } else {
            Some(row.project(&self.primary_key))
        }
    }

    /// Validates a row against the schema: arity, types (with coercion) and
    /// NOT NULL constraints. Returns the coerced row.
    pub fn validate(&self, row: &Row) -> Result<Row> {
        if row.len() != self.schema.len() {
            return Err(Error::constraint(format!(
                "table `{}` expects {} columns, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (i, v) in row.values().iter().enumerate() {
            let col = self.schema.column(i);
            if v.is_null() {
                if !col.nullable {
                    return Err(Error::constraint(format!(
                        "NULL in NOT NULL column `{}` of `{}`",
                        col.name, self.name
                    )));
                }
                out.push(Value::Null);
            } else {
                out.push(v.coerce_to(col.dtype).map_err(|e| {
                    Error::constraint(format!(
                        "column `{}` of `{}`: {e}",
                        col.name, self.name
                    ))
                })?);
            }
        }
        Ok(Row::new(out))
    }

    /// Inserts a validated row; errors on duplicate primary key.
    pub fn insert(&mut self, row: Row) -> Result<Row> {
        self.insert_keyed(row).map(|(row, _)| row)
    }

    /// Inserts a validated row and returns `(row, clustering key)`. Callers
    /// that need the key afterwards (index maintenance) must use this
    /// instead of `insert` + [`Table::key_of`]: for rowid tables the latter
    /// rediscovers the freshly allocated rowid with a full scan.
    pub fn insert_keyed(&mut self, row: Row) -> Result<(Row, Row)> {
        if self.is_shadow {
            return Err(Error::execution(format!(
                "cannot insert into shadow table `{}`",
                self.name
            )));
        }
        let row = self.validate(&row)?;
        let key = self.key_for_insert(&row);
        if self.rows.contains_key(&key) {
            return Err(Error::constraint(format!(
                "duplicate primary key {key} in `{}`",
                self.name
            )));
        }
        self.rows.insert(key.clone(), row.clone());
        Ok((row, key))
    }

    /// Inserts, replacing any existing row with the same key (replication
    /// apply uses this for idempotence).
    pub fn upsert(&mut self, row: Row) -> Result<Row> {
        let row = self.validate(&row)?;
        let key = self.key_for_insert(&row);
        self.rows.insert(key, row.clone());
        Ok(row)
    }

    /// Deletes by full row equality; returns whether a row was removed.
    pub fn delete(&mut self, row: &Row) -> bool {
        match self.key_of(row) {
            Some(key) => self.rows.remove(&key).is_some(),
            None => false,
        }
    }

    /// Deletes by primary key.
    pub fn delete_by_key(&mut self, key: &Row) -> Option<Row> {
        self.rows.remove(key)
    }

    /// Replaces `before` with `after`; handles key changes.
    pub fn update(&mut self, before: &Row, after: Row) -> Result<()> {
        let Some(old_key) = self.key_of(before) else {
            return Err(Error::execution(format!(
                "update target row not found in `{}`",
                self.name
            )));
        };
        self.update_with_key(&old_key, after).map(|_| ())
    }

    /// Replaces the row stored under `old_key` with `after`, returning the
    /// new clustering key. This is the hot-path form: callers that already
    /// know the key (UPDATE/DELETE executors, index maintenance) skip the
    /// rowid-table full scan [`Table::key_of`] would otherwise perform.
    pub fn update_with_key(&mut self, old_key: &Row, after: Row) -> Result<Row> {
        let after = self.validate(&after)?;
        let new_key = if self.primary_key.is_empty() {
            old_key.clone()
        } else {
            after.project(&self.primary_key)
        };
        if new_key != *old_key && self.rows.contains_key(&new_key) {
            return Err(Error::constraint(format!(
                "duplicate primary key {new_key} in `{}`",
                self.name
            )));
        }
        self.rows.remove(old_key);
        self.rows.insert(new_key.clone(), after);
        Ok(new_key)
    }

    /// Point lookup by primary key.
    pub fn get(&self, key: &Row) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Full scan in clustering-key order.
    pub fn scan(&self) -> impl Iterator<Item = &Row> + '_ {
        self.rows.values()
    }

    /// Full scan yielding `(clustering key, row)` pairs — index builds use
    /// this instead of `scan` + per-row [`Table::key_of`] (which is a full
    /// scan per row, O(n²) total, on rowid tables).
    pub fn scan_with_keys(&self) -> impl Iterator<Item = (&Row, &Row)> + '_ {
        self.rows.iter()
    }

    /// The row with the smallest clustering key (O(log n)).
    pub fn first_row(&self) -> Option<&Row> {
        self.rows.values().next()
    }

    /// The row with the largest clustering key (O(log n)).
    pub fn last_row(&self) -> Option<&Row> {
        self.rows.values().next_back()
    }

    /// Range scan over the clustering key.
    pub fn scan_range(
        &self,
        low: Option<&Row>,
        high_inclusive: Option<&Row>,
    ) -> impl Iterator<Item = &Row> + '_ {
        use std::ops::Bound;
        let lo = match low {
            Some(l) => Bound::Included(l.clone()),
            None => Bound::Unbounded,
        };
        let hi = match high_inclusive {
            Some(h) => Bound::Included(h.clone()),
            None => Bound::Unbounded,
        };
        self.rows.range((lo, hi)).map(|(_, r)| r)
    }

    /// Drops every row (used when re-snapshotting a cached view).
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.next_rowid = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_types::{row, Column, DataType};

    fn item_table() -> Table {
        Table::new(
            "item",
            Schema::new(vec![
                Column::not_null("i_id", DataType::Int),
                Column::new("i_title", DataType::Str),
                Column::new("i_cost", DataType::Float),
            ]),
            vec![0],
        )
    }

    #[test]
    fn insert_get_scan() {
        let mut t = item_table();
        t.insert(row![2, "b", 2.0]).unwrap();
        t.insert(row![1, "a", 1.0]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get(&row![1]).unwrap()[1], Value::str("a"));
        // Scan is key-ordered.
        let ids: Vec<i64> = t.scan().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = item_table();
        t.insert(row![1, "a", 1.0]).unwrap();
        let err = t.insert(row![1, "b", 2.0]).unwrap_err();
        assert_eq!(err.kind(), "constraint");
    }

    #[test]
    fn not_null_enforced() {
        let mut t = item_table();
        let err = t.insert(Row::new(vec![Value::Null, Value::str("x"), Value::Null]));
        assert!(err.is_err());
    }

    #[test]
    fn type_coercion_on_insert() {
        let mut t = item_table();
        // i_cost is FLOAT; an int literal should coerce.
        t.insert(row![1, "a", 5]).unwrap();
        assert_eq!(t.get(&row![1]).unwrap()[2], Value::Float(5.0));
    }

    #[test]
    fn update_changes_key() {
        let mut t = item_table();
        t.insert(row![1, "a", 1.0]).unwrap();
        t.update(&row![1, "a", 1.0], row![9, "a", 1.0]).unwrap();
        assert!(t.get(&row![1]).is_none());
        assert!(t.get(&row![9]).is_some());
    }

    #[test]
    fn update_to_existing_key_rejected() {
        let mut t = item_table();
        t.insert(row![1, "a", 1.0]).unwrap();
        t.insert(row![2, "b", 2.0]).unwrap();
        assert!(t.update(&row![1, "a", 1.0], row![2, "a", 1.0]).is_err());
    }

    #[test]
    fn rowid_table_allows_duplicates() {
        let mut t = Table::new(
            "log",
            Schema::new(vec![Column::new("msg", DataType::Str)]),
            vec![],
        );
        t.insert(row!["x"]).unwrap();
        t.insert(row!["x"]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert!(t.delete(&row!["x"]));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn range_scan() {
        let mut t = item_table();
        for i in 1..=10 {
            t.insert(row![i, format!("t{i}"), i as f64]).unwrap();
        }
        let got: Vec<i64> = t
            .scan_range(Some(&row![3]), Some(&row![6]))
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
    }

    #[test]
    fn composite_primary_key_orders_and_seeks() {
        let mut t = Table::new(
            "order_line",
            Schema::new(vec![
                Column::not_null("o_id", DataType::Int),
                Column::not_null("l_id", DataType::Int),
                Column::new("qty", DataType::Int),
            ]),
            vec![0, 1],
        );
        for o in 1..=3 {
            for l in 1..=3 {
                t.insert(row![o, l, o * 10 + l]).unwrap();
            }
        }
        assert_eq!(t.row_count(), 9);
        // Same o_id with a different l_id is a distinct key...
        t.insert(row![1, 9, 0]).unwrap();
        // ...but the full composite must be unique.
        assert!(t.insert(row![1, 9, 5]).is_err());
        // Point lookup by the full key.
        assert_eq!(t.get(&row![2, 3]).unwrap()[2], Value::Int(23));
        // Range scan over an o_id prefix: lexicographic key order means
        // [o] <= [o, l] < [o+1].
        let got: Vec<i64> = t
            .scan_range(Some(&row![2]), Some(&row![2, i64::MAX]))
            .map(|r| r[2].as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![21, 22, 23]);
    }

    #[test]
    fn shadow_refuses_inserts() {
        let mut t = item_table();
        t.insert(row![1, "a", 1.0]).unwrap();
        let mut s = t.to_shadow();
        assert!(s.is_shadow());
        assert_eq!(s.row_count(), 0);
        assert!(s.insert(row![2, "b", 2.0]).is_err());
    }
}
