//! Exact Mean Value Analysis for closed queueing networks.
//!
//! The classic recursion for a closed network of `N` customers over queueing
//! stations with think time `Z`:
//!
//! ```text
//! R_s(n) = D_s · (1 + Q_s(n−1))        response time at station s
//! X(n)   = n / (Z + Σ_s R_s(n))        system throughput
//! Q_s(n) = X(n) · R_s(n)               queue length at station s
//! ```
//!
//! Stations here are *queueing* (FCFS/PS) stations described by their
//! service demand `D_s` (seconds of service per interaction, visit ratios
//! folded in). Multi-CPU servers are modeled as faster single servers
//! (demand divided by the CPU count) — the standard approximation, adequate
//! because the experiments run far from the single-customer regime.

/// A closed queueing network: think time + station demands (seconds).
#[derive(Debug, Clone)]
pub struct ClosedNetwork {
    pub think_time_s: f64,
    /// (station name, service demand in seconds per interaction).
    pub stations: Vec<(String, f64)>,
}

/// MVA solution for a given population.
#[derive(Debug, Clone)]
pub struct MvaResult {
    pub users: usize,
    /// System throughput (interactions per second).
    pub throughput: f64,
    /// Mean response time (seconds), excluding think time.
    pub response_time_s: f64,
    /// Per-station utilization, parallel to `stations`.
    pub utilization: Vec<f64>,
}

impl ClosedNetwork {
    /// Runs exact MVA for `users` customers.
    pub fn solve(&self, users: usize) -> MvaResult {
        let s = self.stations.len();
        let mut queue = vec![0.0f64; s];
        let mut x = 0.0;
        let mut response = 0.0;
        for n in 1..=users {
            let r: Vec<f64> = self
                .stations
                .iter()
                .enumerate()
                .map(|(i, (_, d))| d * (1.0 + queue[i]))
                .collect();
            response = r.iter().sum::<f64>();
            x = n as f64 / (self.think_time_s + response);
            for i in 0..s {
                queue[i] = x * r[i];
            }
        }
        MvaResult {
            users,
            throughput: x,
            response_time_s: response,
            utilization: self
                .stations
                .iter()
                .map(|(_, d)| (x * d).min(1.0))
                .collect(),
        }
    }

    /// The asymptotic throughput bound: `1 / max_s D_s`.
    pub fn max_throughput(&self) -> f64 {
        let dmax = self
            .stations
            .iter()
            .map(|(_, d)| *d)
            .fold(f64::MIN, f64::max);
        if dmax <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / dmax
        }
    }

    /// Largest population whose bottleneck utilization stays at or below
    /// `util_cap` and whose mean response time stays at or below
    /// `response_cap_s` — the benchmark's admission rule. Returns the MVA
    /// solution at that population.
    pub fn find_admissible_load(&self, util_cap: f64, response_cap_s: f64) -> MvaResult {
        let mut best = self.solve(1);
        // Population upper bound: enough users to saturate the bottleneck
        // even with think time.
        let upper = ((self.think_time_s + 10.0) * self.max_throughput()).ceil() as usize + 8;
        let mut lo = 1usize;
        let mut hi = upper.max(2);
        while lo <= hi {
            let mid = (lo + hi) / 2;
            let r = self.solve(mid);
            let ok = r
                .utilization
                .iter()
                .all(|u| *u <= util_cap + 1e-9)
                && r.response_time_s <= response_cap_s;
            if ok {
                best = r;
                lo = mid + 1;
            } else {
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(demands: &[f64], z: f64) -> ClosedNetwork {
        ClosedNetwork {
            think_time_s: z,
            stations: demands
                .iter()
                .enumerate()
                .map(|(i, d)| (format!("s{i}"), *d))
                .collect(),
        }
    }

    #[test]
    fn single_station_sanity() {
        // One station, D = 0.1 s, Z = 1 s. One user: X = 1/(1+0.1).
        let n = net(&[0.1], 1.0);
        let r = n.solve(1);
        assert!((r.throughput - 1.0 / 1.1).abs() < 1e-9);
        assert!((r.response_time_s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn throughput_saturates_at_bottleneck_bound() {
        let n = net(&[0.05, 0.2], 1.0);
        let heavy = n.solve(200);
        assert!((heavy.throughput - 5.0).abs() < 0.05, "1/0.2 = 5: {}", heavy.throughput);
        assert!(heavy.utilization[1] > 0.99);
        assert!(heavy.utilization[0] < 0.3);
    }

    #[test]
    fn throughput_monotone_in_users() {
        let n = net(&[0.05, 0.1], 1.0);
        let mut prev = 0.0;
        for users in [1, 2, 5, 10, 50, 100] {
            let r = n.solve(users);
            assert!(r.throughput >= prev - 1e-9);
            prev = r.throughput;
        }
    }

    #[test]
    fn admissible_load_respects_util_cap() {
        let n = net(&[0.02, 0.1], 1.0);
        let r = n.find_admissible_load(0.9, 3.0);
        assert!(r.utilization.iter().all(|u| *u <= 0.9 + 1e-6));
        // And is close to the cap (not trivially under-loaded).
        let x_cap = 0.9 / 0.1;
        assert!(
            r.throughput > 0.8 * x_cap,
            "should run near the 90% bound: {} vs {x_cap}",
            r.throughput
        );
    }

    #[test]
    fn response_cap_binds_when_tight() {
        let n = net(&[0.5], 1.0);
        let r = n.find_admissible_load(0.99, 1.0);
        assert!(r.response_time_s <= 1.0 + 1e-9);
        let looser = n.find_admissible_load(0.99, 10.0);
        assert!(looser.users >= r.users);
    }

    #[test]
    fn faster_station_never_hurts() {
        // Discrete user counts under the utilization cap allow ~1 user of
        // slack, so compare with a small tolerance.
        let slow = net(&[0.1, 0.1], 1.0).find_admissible_load(0.9, 3.0);
        let fast = net(&[0.05, 0.1], 1.0).find_admissible_load(0.9, 3.0);
        assert!(
            fast.throughput >= slow.throughput * 0.98,
            "fast {} vs slow {}",
            fast.throughput,
            slow.throughput
        );
    }
}
