//! The paper's machine configuration as a capacity model.
//!
//! Machines (§6.1.2): a dual-CPU backend database server and `k` single-CPU
//! web/cache machines (each hosting IIS plus a local MTCache). Load
//! drivers and image servers do no database work and are not modeled.

use crate::mva::{ClosedNetwork, MvaResult};

/// Average work per interaction, in engine work units, measured by running
/// the real workload (see `mtc-bench`).
#[derive(Debug, Clone, Copy, Default)]
pub struct TierDemands {
    /// Web-server page work per interaction (constant page rendering cost,
    /// in work units) plus the cache server's local query work.
    pub web_work: f64,
    /// Backend work per interaction: remote/forwarded queries, DML, and
    /// the replication log reader + distributor.
    pub backend_work: f64,
    /// Replication apply work per interaction charged to *each* cache
    /// server (every subscriber applies every change).
    pub cache_apply_work: f64,
}

/// The modeled deployment.
#[derive(Debug, Clone)]
pub struct CapacityModel {
    /// Single-CPU rating of a web/cache machine, in work units per second.
    pub web_rate: f64,
    /// Single-CPU rating of the backend machine (it has `backend_cpus`).
    pub backend_rate: f64,
    pub backend_cpus: f64,
    /// Think time between a user's interactions (1 s in the paper).
    pub think_time_s: f64,
    /// Utilization cap — the paper limited the bottleneck tier to 90% CPU
    /// to stay inside the latency requirements.
    pub util_cap: f64,
    /// Mean response-time cap (the benchmark's ~3 s page limits).
    pub response_cap_s: f64,
}

impl Default for CapacityModel {
    fn default() -> CapacityModel {
        CapacityModel {
            web_rate: 1.0, // calibrated by the harness
            backend_rate: 1.0,
            backend_cpus: 2.0,
            think_time_s: 1.0,
            util_cap: 0.9,
            response_cap_s: 3.0,
        }
    }
}

/// Result of evaluating one configuration.
#[derive(Debug, Clone)]
pub struct CapacityReport {
    pub web_servers: usize,
    /// Sustained throughput (WIPS) under the admission rule.
    pub wips: f64,
    /// Emulated users admitted.
    pub users: usize,
    /// Mean page latency (s).
    pub response_time_s: f64,
    /// Backend CPU utilization (0..=1).
    pub backend_utilization: f64,
    /// The busiest web/cache machine's utilization.
    pub web_utilization: f64,
}

impl CapacityModel {
    /// Builds the closed network for `k` web/cache servers with the given
    /// per-interaction demands and solves for the admissible load.
    pub fn evaluate(&self, demands: TierDemands, web_servers: usize) -> CapacityReport {
        let k = web_servers.max(1);
        // Each interaction visits one (round-robin-chosen) web machine and
        // the backend; every web machine also pays the replication apply
        // work for its share plus everyone else's interactions — apply work
        // is driven by the global update stream, so per machine it is
        // `cache_apply_work × X` regardless of which machine served the
        // interaction. Folding it into the per-visit demand of each web
        // station: visit ratio 1/k, apply charged at rate k× the visit.
        let web_demand_s =
            (demands.web_work / self.web_rate + demands.cache_apply_work * k as f64 / self.web_rate)
                / k as f64;
        let backend_demand_s = demands.backend_work / (self.backend_rate * self.backend_cpus);
        let mut stations: Vec<(String, f64)> = (0..k)
            .map(|i| (format!("web{i}"), web_demand_s))
            .collect();
        stations.push(("backend".into(), backend_demand_s));
        let network = ClosedNetwork {
            think_time_s: self.think_time_s,
            stations,
        };
        let MvaResult {
            users,
            throughput,
            response_time_s,
            utilization,
        } = network.find_admissible_load(self.util_cap, self.response_cap_s);
        CapacityReport {
            web_servers: k,
            wips: throughput,
            users,
            response_time_s,
            backend_utilization: *utilization.last().expect("backend station"),
            web_utilization: utilization[..k]
                .iter()
                .fold(0.0f64, |a, b| a.max(*b)),
        }
    }

    /// Calibrates CPU ratings so that the *baseline* (no-cache) demands
    /// saturate at `target_wips`. One scale constant pins absolute numbers
    /// to the paper's 500 MHz-era hardware; every other figure follows from
    /// measured relative demands (see DESIGN.md §3).
    pub fn calibrate(&mut self, baseline: TierDemands, target_wips: f64) {
        // In the baseline every interaction's DB work happens on the
        // backend; the backend is the bottleneck at util_cap:
        //   target = util_cap × backend_rate × cpus / backend_work
        self.backend_rate =
            target_wips * baseline.backend_work / (self.util_cap * self.backend_cpus);
        // Web machines in the paper ran the (cheap) page generation and, in
        // cached configurations, the local query work. Their rating equals
        // the backend's per-CPU rating (same 500 MHz machines... the
        // backend was the dual-CPU box; per-CPU ratings match).
        self.web_rate = self.backend_rate;
    }

    /// Linear extrapolation of §6.2.1's speculative analysis: if `k`
    /// servers produce backend load `u`, roughly how many servers saturate
    /// the backend at the cap, and what WIPS would that sustain?
    pub fn extrapolate(&self, report: &CapacityReport) -> (f64, f64) {
        if report.backend_utilization <= 0.0 {
            return (f64::INFINITY, f64::INFINITY);
        }
        let scale = self.util_cap / report.backend_utilization;
        (
            report.web_servers as f64 * scale,
            report.wips * scale,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demands(web: f64, backend: f64, apply: f64) -> TierDemands {
        TierDemands {
            web_work: web,
            backend_work: backend,
            cache_apply_work: apply,
        }
    }

    #[test]
    fn calibration_pins_baseline_wips() {
        let mut model = CapacityModel::default();
        let baseline = demands(5.0, 100.0, 0.0);
        model.calibrate(baseline, 50.0);
        let report = model.evaluate(baseline, 3);
        assert!((report.wips - 50.0).abs() < 1.5, "calibrated: {}", report.wips);
        assert!(report.backend_utilization > 0.85);
    }

    #[test]
    fn offloading_scales_linearly_until_backend_saturates() {
        let mut model = CapacityModel::default();
        let baseline = demands(5.0, 100.0, 0.0);
        model.calibrate(baseline, 50.0);
        // Cached config: 90% of DB work moves to the web/cache tier.
        let cached = demands(95.0, 10.0, 1.0);
        let mut prev = 0.0;
        for k in 1..=5 {
            let r = model.evaluate(cached, k);
            assert!(r.wips > prev, "k={k}: {} <= {prev}", r.wips);
            // Roughly linear: each extra server adds a similar increment.
            prev = r.wips;
        }
        let r5 = model.evaluate(cached, 5);
        let r1 = model.evaluate(cached, 1);
        assert!(
            r5.wips / r1.wips > 4.0,
            "near-linear scaleout: {} vs {}",
            r5.wips,
            r1.wips
        );
        assert!(r5.backend_utilization < 0.5, "backend coasting");
    }

    #[test]
    fn update_heavy_config_does_not_scale() {
        let mut model = CapacityModel::default();
        let baseline = demands(5.0, 100.0, 0.0);
        model.calibrate(baseline, 283.0);
        // Ordering-like: half the work still on the backend.
        let cached = demands(55.0, 50.0, 3.0);
        let r1 = model.evaluate(cached, 1);
        let r5 = model.evaluate(cached, 5);
        assert!(
            r5.wips / r1.wips < 3.0,
            "backend-bound workload must not scale linearly: {} vs {}",
            r5.wips,
            r1.wips
        );
        assert!(r5.backend_utilization > 0.5);
    }

    #[test]
    fn extrapolation_matches_linear_model() {
        let model = CapacityModel::default();
        let report = CapacityReport {
            web_servers: 5,
            wips: 129.0,
            users: 100,
            response_time_s: 0.5,
            backend_utilization: 0.075,
            web_utilization: 0.9,
        };
        let (servers, wips) = model.extrapolate(&report);
        assert!((servers - 60.0).abs() < 1.0, "5 × 0.9/0.075 = 60: {servers}");
        assert!((wips - 1548.0).abs() < 10.0);
    }

    #[test]
    fn apply_work_burdens_every_cache_server() {
        let mut model = CapacityModel::default();
        model.calibrate(demands(5.0, 100.0, 0.0), 100.0);
        let no_apply = model.evaluate(demands(50.0, 20.0, 0.0), 4);
        let with_apply = model.evaluate(demands(50.0, 20.0, 5.0), 4);
        assert!(with_apply.wips < no_apply.wips);
    }
}
