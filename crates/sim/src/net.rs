//! Mid-tier ↔ backend network latency model.
//!
//! The capacity model charges CPU work; this module charges the *wire*. A
//! query's modeled network cost is round trips × per-RTT latency plus
//! payload ÷ bandwidth — the quantity the result cache and round-trip
//! coalescing exist to shrink. Defaults approximate the paper's testbed
//! (switched 100 Mbit Ethernet between the web/cache machines and the
//! backend): ~0.8 ms per application-level round trip (TCP + ODBC framing
//! on 500 MHz-era hosts), ~0.08 ms per KiB of result payload
//! (100 Mbit/s ≈ 12.2 KiB/ms).

/// Latency model for one cache-server → backend link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttModel {
    /// Fixed cost per application round trip, milliseconds.
    pub rtt_ms: f64,
    /// Transfer cost per KiB of payload, milliseconds.
    pub per_kib_ms: f64,
}

impl Default for RttModel {
    fn default() -> RttModel {
        RttModel {
            rtt_ms: 0.8,
            per_kib_ms: 0.08,
        }
    }
}

impl RttModel {
    /// Modeled network latency of an execution that paid `rtts` round trips
    /// and shipped `bytes` of results.
    pub fn latency_ms(&self, rtts: u64, bytes: u64) -> f64 {
        rtts as f64 * self.rtt_ms + (bytes as f64 / 1024.0) * self.per_kib_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trips_cost_nothing() {
        let m = RttModel::default();
        assert_eq!(m.latency_ms(0, 0), 0.0);
    }

    #[test]
    fn coalescing_saves_the_fixed_cost_not_the_payload() {
        let m = RttModel::default();
        // Two statements, two round trips vs the same payload pipelined
        // into one: the payload term is identical, one rtt_ms is saved.
        let separate = m.latency_ms(2, 8192);
        let batched = m.latency_ms(1, 8192);
        assert!((separate - batched - m.rtt_ms).abs() < 1e-12);
        assert!(batched > m.latency_ms(1, 0), "payload still costs");
    }
}
