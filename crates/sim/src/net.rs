//! Mid-tier ↔ backend network latency model.
//!
//! The capacity model charges CPU work; this module charges the *wire*. A
//! query's modeled network cost is round trips × per-RTT latency plus
//! payload ÷ bandwidth — the quantity the result cache and round-trip
//! coalescing exist to shrink. Defaults approximate the paper's testbed
//! (switched 100 Mbit Ethernet between the web/cache machines and the
//! backend): ~0.8 ms per application-level round trip (TCP + ODBC framing
//! on 500 MHz-era hosts), ~0.08 ms per KiB of result payload
//! (100 Mbit/s ≈ 12.2 KiB/ms).

/// Latency model for one cache-server → backend link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttModel {
    /// Fixed cost per application round trip, milliseconds.
    pub rtt_ms: f64,
    /// Transfer cost per KiB of payload, milliseconds.
    pub per_kib_ms: f64,
}

impl Default for RttModel {
    fn default() -> RttModel {
        RttModel {
            rtt_ms: 0.8,
            per_kib_ms: 0.08,
        }
    }
}

impl RttModel {
    /// Modeled network latency of an execution that paid `rtts` round trips
    /// and shipped `bytes` of results.
    pub fn latency_ms(&self, rtts: u64, bytes: u64) -> f64 {
        rtts as f64 * self.rtt_ms + (bytes as f64 / 1024.0) * self.per_kib_ms
    }
}

/// Per-link latency model for a cache **fleet**: the node → backend WAN-ish
/// link and the node ↔ node LAN link have different costs. Cache nodes sit
/// on one switch next to the application ("close to the application", §1)
/// while the backend is the far hop — so an L2 probe served by a peer costs
/// a fraction of a backend round trip. That asymmetry is the entire reason
/// a peer-shared L2 tier pays for itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetLinks {
    /// Mid-tier node → backend link.
    pub backend: RttModel,
    /// Node ↔ node (peer / L2) link.
    pub peer: RttModel,
}

impl Default for FleetLinks {
    fn default() -> FleetLinks {
        FleetLinks {
            backend: RttModel::default(),
            // Same switch, no ODBC framing: ~5× cheaper fixed cost, same
            // payload bandwidth.
            peer: RttModel {
                rtt_ms: 0.15,
                per_kib_ms: 0.08,
            },
        }
    }
}

impl FleetLinks {
    /// Modeled wire latency of an execution that paid `backend_rtts` to the
    /// backend (shipping `backend_bytes`) and `peer_rtts` to fleet peers
    /// (shipping `peer_bytes`).
    pub fn latency_ms(
        &self,
        backend_rtts: u64,
        backend_bytes: u64,
        peer_rtts: u64,
        peer_bytes: u64,
    ) -> f64 {
        self.backend.latency_ms(backend_rtts, backend_bytes)
            + self.peer.latency_ms(peer_rtts, peer_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trips_cost_nothing() {
        let m = RttModel::default();
        assert_eq!(m.latency_ms(0, 0), 0.0);
    }

    #[test]
    fn peer_link_is_cheaper_than_backend_link() {
        let links = FleetLinks::default();
        // Same payload: answering from a peer (L2 hit) must beat a backend
        // trip on the fixed cost.
        let from_backend = links.latency_ms(1, 4096, 0, 0);
        let from_peer = links.latency_ms(0, 0, 1, 4096);
        assert!(from_peer < from_backend);
        assert!((from_backend - from_peer) - (0.8 - 0.15) < 1e-12);
    }

    #[test]
    fn coalescing_saves_the_fixed_cost_not_the_payload() {
        let m = RttModel::default();
        // Two statements, two round trips vs the same payload pipelined
        // into one: the payload term is identical, one rtt_ms is saved.
        let separate = m.latency_ms(2, 8192);
        let batched = m.latency_ms(1, 8192);
        assert!((separate - batched - m.rtt_ms).abs() < 1e-12);
        assert!(batched > m.latency_ms(1, 0), "payload still costs");
    }
}
