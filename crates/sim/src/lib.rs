//! Multi-tier capacity simulator.
//!
//! The paper's experiments ran on eleven physical machines; this crate is
//! the DESIGN.md §3 substitution for that testbed. It models the system as
//! a *closed queueing network*: `N` emulated users cycle between a fixed
//! think time (1 s in the paper) and service at the web/cache tier and the
//! backend database server. Per-interaction service demands are **measured
//! by executing the real workload through the real engine** (the bench
//! crate does the measuring); this crate turns demands into the paper's
//! metrics:
//!
//! * WIPS under the benchmark's admission rule — "load was generated … by
//!   steadily increasing the number of users per web server until the
//!   response latency requirements … were barely met", with CPUs the
//!   bottleneck and the busiest tier capped at 90% utilization (§6.2.1);
//! * per-server CPU utilization (Figure 6(b)'s backend load);
//! * replication propagation latency under light and heavy load
//!   (Experiment 3), via a small discrete-event simulation of the log
//!   reader/distributor pipeline.

pub mod capacity;
pub mod mva;
pub mod net;
pub mod repl_latency;

pub use capacity::{CapacityModel, CapacityReport, TierDemands};
pub use mva::{ClosedNetwork, MvaResult};
pub use net::{FleetLinks, RttModel};
pub use repl_latency::{simulate_replication_latency, ReplLatencyConfig};
