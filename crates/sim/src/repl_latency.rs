//! Discrete-event simulation of replication propagation latency
//! (Experiment 3: commit on the backend → commit on the middle tier).
//!
//! The pipeline being simulated is exactly the one `mtc-replication`
//! implements: transactions commit (Poisson arrivals); a log-reader /
//! distribution agent wakes every `poll_interval`, collects everything
//! committed since its last pass, and applies it to the subscriber. The
//! agent's processing *shares the backend and subscriber CPUs with query
//! work*, so at high utilization each batch takes longer to drain — which
//! is why the paper measures 0.55 s lightly loaded but 1.67 s with every
//! machine saturated.

use mtc_util::rng::StdRng;
use mtc_util::rng::{Rng, SeedableRng};

/// Configuration of one latency simulation.
#[derive(Debug, Clone)]
pub struct ReplLatencyConfig {
    /// Committed transactions per second at the publisher.
    pub txn_rate: f64,
    /// Agent wake-up interval (seconds).
    pub poll_interval_s: f64,
    /// Seconds of agent CPU work to read + distribute one transaction when
    /// the machines are otherwise idle.
    pub service_per_txn_s: f64,
    /// Query-load utilization of the CPUs the agent shares (0..1). The
    /// agent only gets the residual capacity, so effective service time is
    /// `service_per_txn_s / (1 − utilization)`.
    pub shared_cpu_utilization: f64,
    /// Transactions to simulate.
    pub transactions: usize,
    pub seed: u64,
    /// Probability that a polled batch is lost in flight (the agent did the
    /// shipping work but the delivery never lands); the batch stays pending
    /// and is redelivered on the next poll. Mirrors `FaultSpec::drop_p` on
    /// the real pipeline. 0 disables faults and draws no extra randomness.
    pub fault_drop_p: f64,
    /// Crash the agent on every Nth delivered batch (0 = never). The batch
    /// is redone after `crash_restart_s` of downtime — the simulated cost of
    /// LSN-resume plus idempotent re-apply.
    pub crash_every: u64,
    /// Agent restart time after an injected crash (seconds).
    pub crash_restart_s: f64,
}

impl Default for ReplLatencyConfig {
    fn default() -> ReplLatencyConfig {
        ReplLatencyConfig {
            txn_rate: 20.0,
            poll_interval_s: 1.0,
            service_per_txn_s: 0.004,
            shared_cpu_utilization: 0.1,
            transactions: 20_000,
            seed: 17,
            fault_drop_p: 0.0,
            crash_every: 0,
            crash_restart_s: 0.5,
        }
    }
}

/// Latency summary from the simulation.
#[derive(Debug, Clone, Copy)]
pub struct ReplLatencyResult {
    pub avg_latency_s: f64,
    pub max_latency_s: f64,
    pub p90_latency_s: f64,
    /// Batches that had to be delivered more than once (drops + crashes).
    pub redeliveries: u64,
}

/// Runs the discrete-event simulation and reports commit→apply latency.
pub fn simulate_replication_latency(config: &ReplLatencyConfig) -> ReplLatencyResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let residual = (1.0 - config.shared_cpu_utilization).max(0.05);
    let effective_service = config.service_per_txn_s / residual;

    // Commit times: Poisson process.
    let mut commit_times = Vec::with_capacity(config.transactions);
    let mut t = 0.0f64;
    for _ in 0..config.transactions {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / config.txn_rate;
        commit_times.push(t);
    }

    // The agent wakes at k × poll_interval; each wake-up collects all
    // transactions committed before the wake-up instant that are still
    // pending, then applies them serially. A batch that overruns delays the
    // next poll (the agent is single-threaded).
    let mut latencies = Vec::with_capacity(config.transactions);
    let mut next_poll = config.poll_interval_s;
    let mut agent_free_at = 0.0f64;
    let mut idx = 0usize;
    // Cap the drop probability so the simulation always terminates: a link
    // that loses *every* delivery would redeliver forever.
    let drop_p = config.fault_drop_p.clamp(0.0, 0.95);
    let mut batches_attempted = 0u64;
    let mut redeliveries = 0u64;
    while idx < commit_times.len() {
        let poll_at = next_poll.max(agent_free_at);
        // Collect the pending batch.
        let mut batch_end = idx;
        while batch_end < commit_times.len() && commit_times[batch_end] <= poll_at {
            batch_end += 1;
        }
        if batch_end == idx {
            // Nothing pending; sleep to the next interval.
            next_poll = poll_at + config.poll_interval_s;
            continue;
        }
        batches_attempted += 1;
        let batch_service = effective_service * (batch_end - idx) as f64;

        // Fault-lengthened lag: a crashed or dropped delivery consumes the
        // agent's service time (the work was done) but lands nothing — the
        // batch stays pending and redelivers on a later poll, so every
        // transaction in it waits at least one more poll interval.
        let crashed = config.crash_every > 0 && batches_attempted % config.crash_every == 0;
        if crashed {
            agent_free_at = poll_at + batch_service + config.crash_restart_s;
            next_poll = poll_at + config.poll_interval_s;
            redeliveries += 1;
            continue;
        }
        if drop_p > 0.0 && rng.gen_f64() < drop_p {
            agent_free_at = poll_at + batch_service;
            next_poll = poll_at + config.poll_interval_s;
            redeliveries += 1;
            continue;
        }

        let mut finish = poll_at;
        for &commit in &commit_times[idx..batch_end] {
            finish += effective_service;
            latencies.push(finish - commit);
        }
        agent_free_at = finish;
        next_poll = poll_at + config.poll_interval_s;
        idx = batch_end;
    }

    latencies.sort_by(f64::total_cmp);
    let avg = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let p90 = latencies[(latencies.len() as f64 * 0.9) as usize];
    ReplLatencyResult {
        avg_latency_s: avg,
        max_latency_s: *latencies.last().expect("nonempty"),
        p90_latency_s: p90,
        redeliveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_latency_is_about_half_the_poll_interval() {
        let r = simulate_replication_latency(&ReplLatencyConfig::default());
        // Uniform arrival within a 1 s window → mean wait ≈ 0.5 s + apply.
        assert!(
            (0.45..0.75).contains(&r.avg_latency_s),
            "light-load latency: {}",
            r.avg_latency_s
        );
    }

    #[test]
    fn heavy_load_inflates_latency() {
        let light = simulate_replication_latency(&ReplLatencyConfig::default());
        let heavy = simulate_replication_latency(&ReplLatencyConfig {
            txn_rate: 150.0,
            shared_cpu_utilization: 0.9,
            ..ReplLatencyConfig::default()
        });
        assert!(
            heavy.avg_latency_s > 1.5 * light.avg_latency_s,
            "heavy {} vs light {}",
            heavy.avg_latency_s,
            light.avg_latency_s
        );
        assert!(heavy.p90_latency_s >= heavy.avg_latency_s);
    }

    #[test]
    fn shorter_polls_reduce_latency() {
        let slow = simulate_replication_latency(&ReplLatencyConfig {
            poll_interval_s: 2.0,
            ..Default::default()
        });
        let fast = simulate_replication_latency(&ReplLatencyConfig {
            poll_interval_s: 0.25,
            ..Default::default()
        });
        assert!(fast.avg_latency_s < slow.avg_latency_s);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = simulate_replication_latency(&ReplLatencyConfig::default());
        let b = simulate_replication_latency(&ReplLatencyConfig::default());
        assert_eq!(a.avg_latency_s, b.avg_latency_s);
        assert_eq!(a.redeliveries, 0, "no faults by default");
    }

    #[test]
    fn dropped_deliveries_lengthen_lag() {
        let clean = simulate_replication_latency(&ReplLatencyConfig::default());
        let lossy = simulate_replication_latency(&ReplLatencyConfig {
            fault_drop_p: 0.3,
            ..ReplLatencyConfig::default()
        });
        assert!(lossy.redeliveries > 0);
        assert!(
            lossy.avg_latency_s > 1.2 * clean.avg_latency_s,
            "lossy {} vs clean {}",
            lossy.avg_latency_s,
            clean.avg_latency_s
        );
        assert!(lossy.max_latency_s > clean.max_latency_s);
    }

    #[test]
    fn crash_restarts_add_downtime_to_lag() {
        let clean = simulate_replication_latency(&ReplLatencyConfig::default());
        let crashy = simulate_replication_latency(&ReplLatencyConfig {
            crash_every: 5,
            crash_restart_s: 1.0,
            ..ReplLatencyConfig::default()
        });
        assert!(crashy.redeliveries > 0);
        assert!(
            crashy.avg_latency_s > clean.avg_latency_s,
            "crashy {} vs clean {}",
            crashy.avg_latency_s,
            clean.avg_latency_s
        );
    }

    #[test]
    fn faulted_runs_are_seed_deterministic() {
        let run = |seed| {
            simulate_replication_latency(&ReplLatencyConfig {
                fault_drop_p: 0.25,
                crash_every: 50,
                seed,
                ..ReplLatencyConfig::default()
            })
        };
        let (a, b) = (run(3), run(3));
        assert_eq!(a.avg_latency_s, b.avg_latency_s);
        assert_eq!(a.redeliveries, b.redeliveries);
        let c = run(4);
        assert_ne!(a.avg_latency_s, c.avg_latency_s);
    }
}
