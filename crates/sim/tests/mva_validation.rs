//! Cross-validation of the MVA solver against a discrete-event simulation
//! of the same closed queueing network (N users, think time, FCFS stations
//! with exponential service). Product-form theory says they must agree;
//! this guards the solver against off-by-one and bookkeeping bugs.

use mtc_util::rng::StdRng;
use mtc_util::rng::{Rng, SeedableRng};

use mtc_sim::ClosedNetwork;

/// Simple FCFS closed-network DES.
///
/// State per user: where they are (thinking or queued at a station). We
/// process events in time order; stations serve one user at a time with
/// exponential service times.
fn simulate(
    demands: &[f64],
    think_time: f64,
    users: usize,
    horizon: f64,
    seed: u64,
) -> (f64, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let stations = demands.len();
    let mut queues: Vec<std::collections::VecDeque<usize>> =
        vec![Default::default(); stations];
    let mut busy: Vec<Option<usize>> = vec![None; stations];
    let mut busy_time = vec![0.0f64; stations];
    let mut last_t = 0.0f64;
    let mut completions = 0u64;

    // Event queue: (time, user, event).
    let mut events: std::collections::BinaryHeap<(std::cmp::Reverse<u64>, usize, usize)> =
        Default::default();
    let to_key = |t: f64| std::cmp::Reverse((t * 1e9) as u64);
    let exp = |rng: &mut StdRng, mean: f64| -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * mean
    };

    // Encode event: station index for arrival = 2*s, completion = 2*s+1;
    // think-expiry = usize::MAX.
    for u in 0..users {
        let t = exp(&mut rng, think_time);
        events.push((to_key(t), u, usize::MAX));
    }
    let mut now;
    while let Some((std::cmp::Reverse(tk), user, code)) = events.pop() {
        now = tk as f64 / 1e9;
        if now > horizon {
            break;
        }
        // Accumulate busy time.
        for s in 0..stations {
            if busy[s].is_some() {
                busy_time[s] += now - last_t;
            }
        }
        last_t = now;

        let start_service = |s: usize,
                                 user: usize,
                                 rng: &mut StdRng,
                                 events: &mut std::collections::BinaryHeap<(
            std::cmp::Reverse<u64>,
            usize,
            usize,
        )>| {
            let svc = exp(rng, demands[s]);
            events.push((to_key(now + svc), user, 2 * s + 1));
        };

        if code == usize::MAX {
            // Think time over → join station 0.
            let s = 0;
            if busy[s].is_none() {
                busy[s] = Some(user);
                start_service(s, user, &mut rng, &mut events);
            } else {
                queues[s].push_back(user);
            }
        } else if code % 2 == 1 {
            // Service completion at station s.
            let s = code / 2;
            busy[s] = None;
            if let Some(next_user) = queues[s].pop_front() {
                busy[s] = Some(next_user);
                start_service(s, next_user, &mut rng, &mut events);
            }
            // Route the finished user onward.
            if s + 1 < stations {
                let ns = s + 1;
                if busy[ns].is_none() {
                    busy[ns] = Some(user);
                    start_service(ns, user, &mut rng, &mut events);
                } else {
                    queues[ns].push_back(user);
                }
            } else {
                completions += 1;
                let t = now + exp(&mut rng, think_time);
                events.push((to_key(t), user, usize::MAX));
            }
        }
    }

    let throughput = completions as f64 / horizon;
    let utilization: Vec<f64> = busy_time.iter().map(|b| b / horizon).collect();
    (throughput, utilization)
}

fn mva(demands: &[f64], think: f64) -> ClosedNetwork {
    ClosedNetwork {
        think_time_s: think,
        stations: demands
            .iter()
            .enumerate()
            .map(|(i, d)| (format!("s{i}"), *d))
            .collect(),
    }
}

#[test]
fn mva_matches_des_at_moderate_load() {
    let demands = [0.03, 0.08];
    let users = 20;
    let analytic = mva(&demands, 1.0).solve(users);
    let (x, util) = simulate(&demands, 1.0, users, 3_000.0, 7);
    let rel = (analytic.throughput - x).abs() / x;
    assert!(
        rel < 0.08,
        "MVA {} vs DES {} ({}% off)",
        analytic.throughput,
        x,
        rel * 100.0
    );
    for (s, (a, d)) in analytic.utilization.iter().zip(&util).enumerate() {
        assert!(
            (a - d).abs() < 0.06,
            "station {s}: MVA util {a} vs DES {d}"
        );
    }
}

#[test]
fn mva_matches_des_near_saturation() {
    let demands = [0.02, 0.10];
    let users = 80; // bottleneck ~saturated
    let analytic = mva(&demands, 1.0).solve(users);
    let (x, util) = simulate(&demands, 1.0, users, 3_000.0, 11);
    let rel = (analytic.throughput - x).abs() / x;
    assert!(
        rel < 0.08,
        "MVA {} vs DES {} ({}% off)",
        analytic.throughput,
        x,
        rel * 100.0
    );
    assert!(util[1] > 0.9, "DES bottleneck saturated: {util:?}");
    assert!(analytic.utilization[1] > 0.9);
}

#[test]
fn mva_matches_des_light_load() {
    let demands = [0.05];
    let users = 2;
    let analytic = mva(&demands, 1.0).solve(users);
    let (x, _) = simulate(&demands, 1.0, users, 5_000.0, 13);
    let rel = (analytic.throughput - x).abs() / x;
    assert!(rel < 0.08, "MVA {} vs DES {}", analytic.throughput, x);
}
