//! A miniature TPC-W storefront run against a cached deployment: shows how
//! much of each workload's database work the mid-tier absorbs.
//!
//! ```sh
//! cargo run --release --example tpcw_storefront
//! ```

use mtc_util::rng::StdRng;
use mtc_util::rng::{Rng, SeedableRng};

use mtcache_repro::tpcw::datagen::Scale;
use mtcache_repro::tpcw::interactions::run_interaction;
use mtcache_repro::tpcw::mix::Workload;
use mtcache_repro::tpcw::session::{IdAllocator, Session};

fn main() {
    let scale = Scale {
        items: 500,
        emulated_browsers: 50,
        seed: 42,
    };
    println!(
        "TPC-W at {} items / {} customers; 300 interactions per workload\n",
        scale.items,
        scale.customers()
    );

    // mtc_bench's deployment builder assembles backend + replication +
    // a fully configured cache server.
    let deployment = mtc_bench_deploy(scale);

    println!("{:<10} {:>14} {:>14} {:>12}", "workload", "backend work", "cache work", "% offloaded");
    // One allocator for the whole run: carts/orders created by one workload
    // must not collide with the next.
    let ids = IdAllocator::new(&scale);
    for workload in Workload::ALL {
        let conn = deployment.connection();
        let ids = ids.clone();
        let mut rng = StdRng::seed_from_u64(7);
        let mut session = Session::new(
            rng.gen_range(1..=scale.customers() as i64),
            ids,
        );
        deployment.backend.stats.take();
        deployment.cache.as_ref().unwrap().stats.take();
        let mix = workload.mix();
        for i in 0..300 {
            let interaction = mix.sample(&mut rng);
            run_interaction(interaction, &conn, &mut session, &scale, &mut rng)
                .expect("interaction");
            if i % 10 == 9 {
                deployment.pump_replication(50);
            }
        }
        let backend_work = deployment.backend.stats.local_work.get();
        let cache_work = deployment.cache.as_ref().unwrap().stats.local_work.get();
        let offloaded = cache_work / (cache_work + backend_work) * 100.0;
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>11.1}%",
            workload.name(),
            backend_work,
            cache_work,
            offloaded
        );
    }
    println!("\n(read-heavy mixes offload most work; Ordering keeps its updates on the backend)");
}

fn mtc_bench_deploy(scale: Scale) -> mtc_bench::Deployment {
    mtc_bench::Deployment::new(scale, true)
}
