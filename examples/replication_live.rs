//! Live replication: a real background agent thread (wall clock) keeping a
//! cached view in sync while writes land on the backend — and a measurement
//! of true commit-to-apply latency.
//!
//! ```sh
//! cargo run --release --example replication_live
//! ```

use std::sync::Arc;
use std::time::Duration;

use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::{spawn_agent, ReplicationHub, WallClock};

fn main() {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE ticker (t_id INT NOT NULL PRIMARY KEY, t_value FLOAT);
             GRANT SELECT ON ticker TO app; GRANT INSERT ON ticker TO app;",
        )
        .unwrap();
    backend.analyze();

    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub.clone());
    cache
        .create_cached_view("ticker_all", "SELECT t_id, t_value FROM ticker")
        .unwrap();

    // Background push agent, waking every 20 ms (SQL Server agents poll on
    // an interval the same way).
    let agent = spawn_agent(hub.clone(), Arc::new(WallClock), Duration::from_millis(20));

    // Writer: 200 inserts through the cache connection (forwarded to the
    // backend, then replicated back out to the cached view).
    let conn = Connection::connect_as(cache.clone(), "app");
    for i in 1..=200 {
        conn.query(&format!("INSERT INTO ticker VALUES ({i}, {})", i as f64 * 1.5))
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }

    // Wait for the agent to drain, bounded.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let caught_up = conn
            .query("SELECT COUNT(*) AS n FROM ticker")
            .map(|r| r.rows[0][0].as_i64() == Some(200))
            .unwrap_or(false)
            && cache.max_staleness_ms() < 100;
        if caught_up || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    agent.stop();

    let hub = hub.lock();
    println!("transactions replicated : {}", hub.metrics.txns_applied.get());
    println!("row changes applied     : {}", hub.metrics.changes_applied.get());
    println!(
        "commit→apply latency    : avg {:.1} ms, max {} ms over {} txns",
        hub.latency.avg_ms(),
        hub.latency.max_ms,
        hub.latency.count
    );
    println!(
        "\n(the paper measured 0.55 s average under light load with SQL Server's\n\
         default ~1 s agent polling; ours is proportional to the 20 ms poll)"
    );
}
