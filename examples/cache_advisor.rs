//! The §7 "design tool" extension: analyze a workload trace and recommend
//! which cached views to create.
//!
//! ```sh
//! cargo run --release --example cache_advisor
//! ```

use mtcache_repro::cache::advisor::{recommend, AdvisorOptions, WorkloadEntry};
use mtcache_repro::cache::BackendServer;

fn main() {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE item (i_id INT NOT NULL PRIMARY KEY, i_title VARCHAR, i_subject VARCHAR, i_cost FLOAT, i_blob VARCHAR);
             CREATE TABLE cart (sc_id INT NOT NULL PRIMARY KEY, sc_total FLOAT);
             CREATE TABLE author (a_id INT NOT NULL PRIMARY KEY, a_lname VARCHAR);",
        )
        .unwrap();
    let mut script = Vec::new();
    for i in 1..=5000 {
        script.push(format!(
            "INSERT INTO item VALUES ({i}, 'title{i}', 'subject{}', {}.5, 'blob')",
            i % 20,
            i % 50
        ));
    }
    for i in 1..=500 {
        script.push(format!("INSERT INTO author VALUES ({i}, 'lname{i}')"));
    }
    backend.run_script(&script.join(";")).unwrap();
    backend.analyze();

    // A trace: read-heavy item/author traffic, write-heavy cart traffic.
    let workload = vec![
        WorkloadEntry {
            sql: "SELECT i_title, i_cost FROM item WHERE i_subject = @s".into(),
            frequency: 300.0,
        },
        WorkloadEntry {
            sql: "SELECT i_title FROM item WHERE i_id = @id".into(),
            frequency: 500.0,
        },
        WorkloadEntry {
            sql: "SELECT a_lname FROM author WHERE a_id = @id".into(),
            frequency: 100.0,
        },
        WorkloadEntry {
            sql: "UPDATE cart SET sc_total = @t WHERE sc_id = @id".into(),
            frequency: 400.0,
        },
        WorkloadEntry {
            sql: "SELECT sc_total FROM cart WHERE sc_id = @id".into(),
            frequency: 40.0,
        },
    ];

    let recs = recommend(&backend.db.read(), &workload, &AdvisorOptions::default()).unwrap();
    println!("advisor recommendations ({}):\n", recs.len());
    for r in &recs {
        println!(
            "-- benefit {:.0} work-units/s, maintenance {:.0}/s\n{}\n",
            r.benefit, r.maintenance, r.create_sql
        );
    }
    println!("(cart is write-dominated and correctly NOT recommended; the item view\n projects only the referenced columns, never `i_blob`)");
}
