//! Quickstart: set up a backend, add a transparent mid-tier cache, and
//! watch queries route themselves.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::ReplicationHub;

fn main() {
    // 1. A backend database server with some data.
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE customer (cid INT NOT NULL PRIMARY KEY, cname VARCHAR, city VARCHAR);
             GRANT SELECT ON customer TO app;
             GRANT UPDATE ON customer TO app;",
        )
        .unwrap();
    let inserts: Vec<String> = (1..=10_000)
        .map(|i| format!("INSERT INTO customer VALUES ({i}, 'customer{i}', 'city{}')", i % 50))
        .collect();
    backend.run_script(&inserts.join(";")).unwrap();
    backend.analyze();

    // 2. An application, written against "the database". It neither knows
    //    nor cares which server it talks to.
    let app = |conn: &Connection, cid: i64| {
        let r = conn
            .query_with(
                "SELECT cname, city FROM customer WHERE cid = @cid",
                &Connection::params(&[("cid", cid.into())]),
            )
            .unwrap();
        (r.rows[0][0].to_string(), r.metrics.remote_calls)
    };

    let conn = Connection::connect_as(backend.clone(), "app");
    let (name, _) = app(&conn, 42);
    println!("direct to backend      : cid=42 -> {name}");

    // 3. Stand up an MTCache server: shadow database + one cached view
    //    (customers 1..=1000), populated and maintained by replication.
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache1", backend.clone(), hub.clone());
    cache
        .create_cached_view(
            "cust1000",
            "SELECT cid, cname, city FROM customer WHERE cid <= 1000",
        )
        .unwrap();

    // 4. "Re-point the ODBC source": same application code, new handle.
    let mut conn = conn;
    conn.reroute(cache.clone());

    let (name, remote) = app(&conn, 42);
    println!("via cache, cid in view : cid=42 -> {name}   (remote calls: {remote})");
    let (name, remote) = app(&conn, 4242);
    println!("via cache, cid outside : cid=4242 -> {name} (remote calls: {remote})");

    // 5. Updates forward transparently and replicate back.
    conn.query("UPDATE customer SET cname = 'renamed' WHERE cid = 42")
        .unwrap();
    hub.lock().pump(1_000).unwrap();
    let (name, remote) = app(&conn, 42);
    println!("after update + sync    : cid=42 -> {name}   (remote calls: {remote})");

    println!("\ncache stats: {:?}", cache.stats.snapshot());
    println!("backend stats: {:?}", backend.stats.snapshot());
}
