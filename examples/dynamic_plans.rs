//! The paper's §5.1 running example, end to end: a parameterized query
//! against the cached view `Cust1000` gets a **dynamic plan** (ChoosePlan)
//! whose branch is selected at run time by the parameter value.
//!
//! ```sh
//! cargo run --release --example dynamic_plans
//! ```

use std::sync::Arc;

use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::engine::{bind_select, optimize, OptimizerOptions};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::sql::{parse_statement, Statement};

fn main() {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE customer (cid INT NOT NULL PRIMARY KEY, cname VARCHAR, caddress VARCHAR)",
        )
        .unwrap();
    let inserts: Vec<String> = (1..=10_000)
        .map(|i| format!("INSERT INTO customer VALUES ({i}, 'c{i}', 'addr{i}')"))
        .collect();
    backend.run_script(&inserts.join(";")).unwrap();
    backend.analyze();

    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub);
    cache
        .create_cached_view(
            "cust1000",
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 1000",
        )
        .unwrap();

    // The exact query of §5.1.
    let sql = "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid";
    println!("query: {sql}\n");

    // Show the optimizer's plan: a UnionAll with startup predicates — the
    // Figure 2(b) encoding of ChoosePlan.
    let Statement::Select(sel) = parse_statement(sql).unwrap() else {
        unreachable!()
    };
    let db = cache.db.read();
    let plan = bind_select(&sel, &db).unwrap();
    let optimized = optimize(plan, &db, &OptimizerOptions::default()).unwrap();
    println!("physical plan on the cache server:\n{}", optimized.physical.explain());
    drop(db);

    // Execute with the guard true and false: only one branch ever opens.
    let conn = Connection::connect(cache);
    for cid in [500i64, 5000] {
        let r = conn
            .query_with(sql, &Connection::params(&[("cid", cid.into())]))
            .unwrap();
        println!(
            "@cid = {cid:>5}: {} rows, remote calls = {}, branch = {}",
            r.rows.len(),
            r.metrics.remote_calls,
            if r.metrics.remote_calls == 0 {
                "LOCAL (cached view)"
            } else {
                "REMOTE (backend)"
            }
        );
    }
}
