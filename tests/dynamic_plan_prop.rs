//! Property tests on the optimizer's MTCache mechanisms: dynamic-plan
//! correctness over the whole parameter space, ChoosePlan pull-up
//! equivalence, and view-matching soundness.

use std::sync::Arc;

use mtc_util::check::{self, Config};
use mtc_util::rng::Rng;
use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::engine::{bind_select, optimize, OptimizerOptions};
use mtcache_repro::engine::eval::Bindings;
use mtcache_repro::engine::{execute, ExecContext};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::sql::{parse_statement, Statement};
use mtcache_repro::types::{Row, Value};

const N: i64 = 2500;
const BOUND: i64 = 800;

fn setup() -> (Arc<BackendServer>, Arc<CacheServer>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE customer (ckey INT NOT NULL PRIMARY KEY, name VARCHAR);
             CREATE TABLE orders (okey INT NOT NULL PRIMARY KEY, ckey INT, total FLOAT);
             CREATE INDEX ix_orders_ckey ON orders (ckey);",
        )
        .unwrap();
    let mut script: Vec<String> = (1..=N)
        .map(|i| format!("INSERT INTO customer VALUES ({i}, 'c{i}')"))
        .collect();
    script.extend((1..=N).map(|i| {
        format!(
            "INSERT INTO orders VALUES ({i}, {}, {}.25)",
            (i * 7) % N + 1,
            i % 50
        )
    }));
    backend.run_script(&script.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub);
    cache
        .create_cached_view(
            "cust_head",
            &format!("SELECT ckey, name FROM customer WHERE ckey <= {BOUND}"),
        )
        .unwrap();
    (backend, cache)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// §5.1: the dynamic plan's result equals the backend's for every
/// parameter value, and only one branch ever executes.
#[test]
fn dynamic_plan_equals_ground_truth() {
    check::run(
        &Config::cases(20),
        "dynamic_plan_equals_ground_truth",
        |rng| rng.gen_range(0i64..(N + 200)),
        |&v| {
            let (backend, cache) = setup();
            let sql = "SELECT ckey, name FROM customer WHERE ckey <= @v";
            let params = Connection::params(&[("v", Value::Int(v))]);
            let truth = Connection::connect(backend).query_with(sql, &params).unwrap();
            let cached = Connection::connect(cache).query_with(sql, &params).unwrap();
            assert_eq!(sorted(truth.rows), sorted(cached.rows), "@v = {v}");
            // Exactly one branch: local (0 remote calls) xor remote (1 call).
            assert!(cached.metrics.remote_calls <= 1);
            assert_eq!(cached.metrics.remote_calls == 0, v <= BOUND, "@v = {v}");
        },
    );
}

/// §5.1.2: pulling ChoosePlan above a join never changes the answer.
#[test]
fn pullup_preserves_join_results() {
    check::run(
        &Config::cases(20),
        "pullup_preserves_join_results",
        |rng| rng.gen_range(0i64..(N + 200)),
        |&v| {
            let (backend, cache) = setup();
            let sql = "SELECT c.name, o.total FROM customer AS c, orders AS o \
                       WHERE c.ckey = o.ckey AND c.ckey <= @v";
            let Statement::Select(sel) = parse_statement(sql).unwrap() else {
                unreachable!()
            };
            let mut params = Bindings::new();
            params.insert("v".into(), Value::Int(v));
            let db = cache.db.read();
            let remote: &dyn mtcache_repro::engine::RemoteExecutor = &*backend;

            let mut rows_by_mode = Vec::new();
            for pullup in [true, false] {
                let options = OptimizerOptions {
                    enable_choose_plan_pullup: pullup,
                    ..Default::default()
                };
                let plan = bind_select(&sel, &db).unwrap();
                let optimized = optimize(plan, &db, &options).unwrap();
                let ctx = ExecContext {
                    db: &db,
                    remote: Some(remote),
                    params: &params,
                    work: &options.cost,
                    parallel: None,
                };
                rows_by_mode.push(sorted(execute(&optimized.physical, &ctx).unwrap().rows));
            }
            let with_pullup = rows_by_mode.remove(0);
            let without = rows_by_mode.remove(0);
            assert_eq!(with_pullup, without, "@v = {v}");
        },
    );
}

/// View matching soundness: disabling it never changes results, only
/// where they are computed.
#[test]
fn view_matching_is_sound() {
    check::run(
        &Config::cases(20),
        "view_matching_is_sound",
        |rng| (rng.gen_range(0i64..N), rng.gen_range(0i64..600)),
        |&(lo, width)| {
            let (backend, cache) = setup();
            let sql = format!(
                "SELECT ckey, name FROM customer WHERE ckey >= {lo} AND ckey <= {}",
                lo + width
            );
            let Statement::Select(sel) = parse_statement(&sql).unwrap() else {
                unreachable!()
            };
            let db = cache.db.read();
            let remote: &dyn mtcache_repro::engine::RemoteExecutor = &*backend;
            let params = Bindings::new();
            let mut results = Vec::new();
            for matching in [true, false] {
                let options = OptimizerOptions {
                    enable_view_matching: matching,
                    ..Default::default()
                };
                let plan = bind_select(&sel, &db).unwrap();
                let optimized = optimize(plan, &db, &options).unwrap();
                let ctx = ExecContext {
                    db: &db,
                    remote: Some(remote),
                    params: &params,
                    work: &options.cost,
                    parallel: None,
                };
                results.push(sorted(execute(&optimized.physical, &ctx).unwrap().rows));
            }
            let with = results.remove(0);
            let without = results.remove(0);
            assert_eq!(with, without, "query: {sql}");
        },
    );
}

/// The paper's guard-boundary behavior, pinned exactly (not property-based,
/// but kept here with the related machinery).
#[test]
fn guard_boundary_is_exact() {
    let (_backend, cache) = setup();
    let conn = Connection::connect(cache);
    let sql = "SELECT ckey FROM customer WHERE ckey <= @v";
    let at_bound = conn
        .query_with(sql, &Connection::params(&[("v", Value::Int(BOUND))]))
        .unwrap();
    assert_eq!(at_bound.rows.len() as i64, BOUND);
    assert_eq!(at_bound.metrics.remote_calls, 0, "@v = BOUND stays local");
    let past = conn
        .query_with(sql, &Connection::params(&[("v", Value::Int(BOUND + 1))]))
        .unwrap();
    assert_eq!(past.rows.len() as i64, BOUND + 1);
    assert!(past.metrics.remote_calls > 0, "@v = BOUND+1 must go remote");
}
