//! §3: "cached views … may be selections and projections of tables **or
//! materialized views on the backend server**." This exercises the full
//! chain: backend aggregate MV → manual refresh (logged diff) → replication
//! → cached copy on the mid-tier, plus a three-cache-server deployment.

use std::sync::Arc;

use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::types::Value;

fn backend_with_orders() -> Arc<BackendServer> {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE order_line (ol_id INT NOT NULL, ol_o_id INT NOT NULL, ol_i_id INT, ol_qty INT, PRIMARY KEY (ol_o_id, ol_id));
             GRANT SELECT ON order_line TO app;",
        )
        .unwrap();
    let rows: Vec<String> = (1..=300)
        .map(|i| {
            format!(
                "INSERT INTO order_line VALUES (1, {i}, {}, {})",
                i % 20 + 1,
                i % 5 + 1
            )
        })
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    backend
}

#[test]
fn cached_view_over_backend_aggregate_mv() {
    let backend = backend_with_orders();
    // An aggregate materialized view on the backend (best-seller style).
    backend
        .run_script(
            "CREATE MATERIALIZED VIEW sales_by_item AS \
             SELECT ol_i_id, SUM(ol_qty) AS qty FROM order_line GROUP BY ol_i_id",
        )
        .unwrap();
    backend.run_script("GRANT SELECT ON sales_by_item TO app").unwrap();
    assert_eq!(
        backend.db.read().table_ref("sales_by_item").unwrap().row_count(),
        20
    );

    // A cache server caches a selection of that MV.
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub.clone());
    cache
        .create_cached_view("hot_items", "SELECT ol_i_id, qty FROM sales_by_item")
        .unwrap();
    assert_eq!(
        cache.db.read().table_ref("hot_items").unwrap().row_count(),
        20
    );

    // A query against the MV is answered locally from the cached copy.
    let conn = Connection::connect_as(cache.clone(), "app");
    let r = conn
        .query("SELECT qty FROM sales_by_item WHERE ol_i_id = 3")
        .unwrap();
    assert_eq!(r.metrics.remote_calls, 0, "served from hot_items");
    let before: i64 = r.rows[0][0].as_i64().unwrap();

    // New sales land; aggregates refresh manually (logged diff), then the
    // diff replicates to the cached copy.
    backend
        .run_script("INSERT INTO order_line VALUES (2, 77, 3, 10)")
        .unwrap();
    let changed = backend.refresh_materialized_view("sales_by_item").unwrap();
    assert!(changed >= 1, "refresh produced a diff");
    hub.lock().pump(1_000).unwrap();

    let r = conn
        .query("SELECT qty FROM sales_by_item WHERE ol_i_id = 3")
        .unwrap();
    assert_eq!(r.metrics.remote_calls, 0);
    assert_eq!(r.rows[0][0], Value::Int(before + 10), "diff replicated");
}

#[test]
fn three_cache_servers_one_distributor() {
    let backend = backend_with_orders();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let caches: Vec<Arc<CacheServer>> = (1..=3)
        .map(|i| {
            let c = CacheServer::create(&format!("cache{i}"), backend.clone(), hub.clone());
            c.create_cached_view(
                &"ol_all".to_string(),
                "SELECT ol_id, ol_o_id, ol_i_id, ol_qty FROM order_line",
            )
            .unwrap();
            c
        })
        .collect();

    // One write fans out to all three subscribers in one distribution pass.
    backend
        .run_script("INSERT INTO order_line VALUES (9, 999, 1, 4)")
        .unwrap();
    hub.lock().pump(50).unwrap();
    for c in &caches {
        let r = Connection::connect_as(c.clone(), "app")
            .query("SELECT ol_qty FROM order_line WHERE ol_o_id = 999 AND ol_id = 9")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(4), "{}", c.name());
        assert_eq!(r.metrics.remote_calls, 0, "{}", c.name());
    }
    // Distribution database truncated once every subscriber is served.
    assert_eq!(hub.lock().distribution_depth(), 0);
    assert_eq!(hub.lock().metrics.txns_applied.get(), 3, "one apply per subscriber");
}
