//! Smoke guards for the multi-core serving work (DESIGN.md §9).
//!
//! Three layers:
//!
//! 1. A live mini-run of the concurrency sweep pinning the scaling
//!    invariant the committed report claims (≥1.5× modeled throughput at 4
//!    workers over 1, same seed, same fault plan).
//! 2. Validation of the committed `BENCH_concurrency.json` artifact, so a
//!    stale or regressed report fails the build rather than going
//!    unnoticed.
//! 3. An eight-reader stress test against the snapshot publication
//!    protocol: readers complete scans *while a replication apply batch is
//!    open*, and under continuous fault-injected replication every reader's
//!    observed epoch and applied-LSN watermark stay monotone, a pinned
//!    snapshot never changes underneath its holder, and the cached view
//!    still converges bit-exact once the pipeline drains.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mtc_bench::run_concurrency;
use mtc_util::rng::{Rng, SeedableRng, StdRng};
use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::{Clock, FaultPlan, FaultSpec, ManualClock, ReplicationHub};
use mtcache_repro::types::Row;

#[test]
fn four_workers_model_at_least_1p5x_over_one() {
    let r = run_concurrency(160, 7, &[1, 4]);
    let one = r.point(1).expect("1-worker point");
    let four = r.point(4).expect("4-worker point");
    assert_eq!(one.errors, 0, "serial run must be clean");
    assert_eq!(four.errors, 0, "concurrent run must be clean");
    assert!(one.total_work > 0.0, "work must be measured");
    assert!(
        four.speedup_vs_1 >= 1.5,
        "4 workers must model >= 1.5x the 1-worker throughput, got {:.2}x \
         ({:.1} vs {:.1} ips)",
        four.speedup_vs_1,
        four.modeled_throughput,
        one.modeled_throughput
    );
    assert!(four.p95_ms >= four.p50_ms, "percentiles must be ordered");
    // Replication really ran alongside the sessions: snapshots were
    // published (epochs advanced) and faulted deliveries were applied.
    assert!(one.max_epoch > 0, "no snapshot was ever published");
    assert!(one.txns_applied > 0, "replication applied nothing");
}

/// Pulls the value of `key` out of the JSON line describing `workers = w`.
fn point_field(json: &str, w: usize, key: &str) -> f64 {
    let line = json
        .lines()
        .find(|l| l.contains(&format!("\"workers\": {w},")))
        .unwrap_or_else(|| panic!("BENCH_concurrency.json has no workers={w} point"));
    let pat = format!("\"{key}\":");
    let at = line
        .find(&pat)
        .unwrap_or_else(|| panic!("point workers={w} missing `{key}`"));
    let rest = &line[at + pat.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` is not numeric: {e}"))
}

#[test]
fn committed_bench_report_meets_floors() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_concurrency.json");
    let json = std::fs::read_to_string(path).expect(
        "BENCH_concurrency.json missing — regenerate with \
         `cargo run --release -p mtc-bench --bin exp_concurrency`",
    );
    assert!(json.contains("\"experiment\": \"concurrency\""));
    // Every point ran under one seed and one fault plan, and the faults
    // really fired.
    assert!(json.contains("\"seed\":"), "report must record the seed");
    assert!(json.contains("\"fault_plan\":"), "report must record the fault plan");
    for w in [1usize, 2, 4, 8] {
        assert!(
            point_field(&json, w, "p95_ms") >= point_field(&json, w, "p50_ms"),
            "workers={w}: p95 below p50"
        );
        assert_eq!(
            point_field(&json, w, "errors"),
            0.0,
            "workers={w}: interactions errored"
        );
        assert!(
            point_field(&json, w, "dropped") > 0.0,
            "workers={w}: fault plan never dropped a delivery"
        );
    }
    assert!(
        point_field(&json, 4, "speedup_vs_1") >= 1.5,
        "committed report must show >= 1.5x modeled throughput at 4 workers"
    );
    assert!(
        point_field(&json, 8, "speedup_vs_1") >= point_field(&json, 4, "speedup_vs_1") * 0.9,
        "8 workers should not fall behind 4"
    );
}

#[allow(clippy::type_complexity)]
fn stress_setup() -> (
    Arc<BackendServer>,
    Arc<CacheServer>,
    Arc<Mutex<ReplicationHub>>,
    ManualClock,
) {
    let clock = ManualClock::new(0);
    let backend = BackendServer::with_clock("backend", Arc::new(clock.clone()));
    backend
        .run_script("CREATE TABLE stockx (s_id INT NOT NULL PRIMARY KEY, s_qty INT, s_note VARCHAR)")
        .unwrap();
    let rows: Vec<String> = (0..200)
        .map(|i| format!("INSERT INTO stockx VALUES ({i}, {}, 'n{i}')", i % 50))
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub.clone());
    cache
        .create_cached_view("stock_head", "SELECT s_id, s_qty FROM stockx WHERE s_id < 150")
        .unwrap();
    (backend, cache, hub, clock)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

#[test]
fn eight_readers_never_block_on_faulted_apply() {
    let (backend, cache, hub, clock) = stress_setup();
    hub.lock().set_fault_plan(FaultPlan::new(
        0x5EED,
        FaultSpec {
            drop_p: 0.10,
            duplicate_p: 0.10,
            crash_every: 5,
            ..FaultSpec::NONE
        },
    ));

    // Phase 1 — readers complete while an apply batch is OPEN. Holding the
    // write guard models a replication apply mid-delivery: under the seed's
    // RwLock this deadlocked; under snapshot publication every reader
    // finishes (or this test times out, failing loudly).
    {
        let guard = cache.db.write();
        let readers: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let snap = cache.db.read();
                        let n = snap.table_ref("stock_head").unwrap().row_count();
                        assert_eq!(n, 150, "pre-churn image must be complete");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().expect("reader finished while apply batch open");
        }
        drop(guard); // publishes (a no-op image) only now
    }

    // Phase 2 — continuous faulted churn: a seeded DML stream with the
    // pipeline pumping after every statement, eight readers asserting
    // monotone epochs and applied-LSN watermarks throughout, and one
    // pinned snapshot that must come out of the churn untouched.
    let pinned = cache.db.read();
    let pinned_rows: Vec<Row> = pinned
        .table_ref("stock_head")
        .unwrap()
        .scan()
        .cloned()
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let cache = cache.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut last_lsn = None;
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = cache.db.read();
                    assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch();
                    let lsn = snap.applied_lsn("stock_head");
                    assert!(lsn >= last_lsn, "applied LSN went backwards: {lsn:?} < {last_lsn:?}");
                    last_lsn = lsn;
                    // The image is always a complete publication.
                    assert!(snap.table_ref("stock_head").unwrap().row_count() <= 150);
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for i in 0..300i64 {
        clock.advance(10);
        let (id, qty) = (rng.gen_range(0i64..150), rng.gen_range(0i64..1000));
        backend
            .execute(
                &format!("UPDATE stockx SET s_qty = {qty} WHERE s_id = {id}"),
                &Default::default(),
                "dbo",
            )
            .unwrap();
        if i % 3 == 0 {
            let _ = hub.lock().pump(clock.now_ms());
        }
    }
    // Drain through the injected drops/duplicates/crashes.
    for _ in 0..10_000 {
        clock.advance(50);
        let mut h = hub.lock();
        let _ = h.pump(clock.now_ms());
        if h.drained() {
            break;
        }
    }
    assert!(hub.lock().drained(), "pipeline failed to drain");
    stop.store(true, Ordering::Relaxed);
    let reads: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread"))
        .sum();
    assert!(reads > 0, "readers made no progress during the churn");

    // The pinned snapshot is bit-identical to what it was before the churn.
    let still: Vec<Row> = pinned
        .table_ref("stock_head")
        .unwrap()
        .scan()
        .cloned()
        .collect();
    assert_eq!(sorted(pinned_rows), sorted(still), "pinned snapshot mutated");

    // And the live view converged bit-exact despite the fault plan.
    let expected = Connection::connect(backend.clone())
        .query("SELECT s_id, s_qty FROM stockx WHERE s_id < 150")
        .unwrap();
    let actual: Vec<Row> = cache
        .db
        .read()
        .table_ref("stock_head")
        .unwrap()
        .scan()
        .cloned()
        .collect();
    assert_eq!(sorted(expected.rows), sorted(actual), "view diverged");
    let m = hub.lock().metrics.snapshot();
    assert!(m.retries > 0, "faults must have forced retries: {m:?}");
}
