//! End-to-end TPC-W through the full stack: every interaction type against
//! a cached deployment, with business-level invariants checked afterwards.

use mtc_util::rng::StdRng;
use mtc_util::rng::{Rng, SeedableRng};

use mtc_bench::Deployment;
use mtcache_repro::types::Value;
use mtcache_repro::tpcw::datagen::Scale;
use mtcache_repro::tpcw::interactions::{run_interaction, Interaction};
use mtcache_repro::tpcw::mix::Workload;
use mtcache_repro::tpcw::session::{IdAllocator, Session};

#[test]
fn mixed_workload_preserves_business_invariants() {
    let scale = Scale::tiny();
    let deployment = Deployment::new(scale, true);
    let conn = deployment.connection();
    let ids = IdAllocator::new(&scale);
    let mut rng = StdRng::seed_from_u64(2024);
    let mix = Workload::Shopping.mix();

    let orders_before = deployment
        .backend
        .db
        .read()
        .table_ref("orders")
        .unwrap()
        .row_count();

    let mut sessions: Vec<Session> = (1..=4)
        .map(|i| Session::new(i * 2, ids.clone()))
        .collect();
    let mut buys = 0usize;
    for i in 0..250 {
        let s = i % sessions.len();
        let interaction = mix.sample(&mut rng);
        if interaction == Interaction::BuyConfirm && sessions[s].cart_id.is_some() {
            buys += 1;
        }
        run_interaction(interaction, &conn, &mut sessions[s], &scale, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed: {e}", interaction.name()));
        if i % 10 == 9 {
            deployment.pump_replication(100);
        }
    }
    deployment.pump_replication(100);

    let db = deployment.backend.db.read();
    // Every new order has at least one line and a cc transaction.
    let orders_after = db.table_ref("orders").unwrap().row_count();
    assert!(orders_after >= orders_before + buys.saturating_sub(1));

    // cc_xacts match orders one-to-one for new orders.
    let orders: Vec<i64> = db
        .table_ref("orders")
        .unwrap()
        .scan()
        .map(|r| r[0].as_i64().unwrap())
        .filter(|o| *o > scale.orders() as i64)
        .collect();
    for o_id in &orders {
        let cc = db
            .table_ref("cc_xacts")
            .unwrap()
            .get(&mtcache_repro::types::Row::new(vec![Value::Int(*o_id)]));
        assert!(cc.is_some(), "order {o_id} has no credit-card transaction");
        let lines = db
            .index("ix_orderline_order")
            .unwrap()
            .seek(&mtcache_repro::types::Row::new(vec![Value::Int(*o_id)]));
        assert!(!lines.is_empty(), "order {o_id} has no order lines");
    }
    drop(db);

    // After quiescing, the cached order projections match the backend.
    let backend_count = deployment
        .backend
        .execute("SELECT COUNT(*) AS n FROM orders", &Default::default(), "dbo")
        .unwrap();
    let cache = deployment.cache.as_ref().unwrap();
    let cached_count = cache
        .execute("SELECT COUNT(*) AS n FROM orders", &Default::default(), "dbo")
        .unwrap();
    assert_eq!(backend_count.rows, cached_count.rows);
    assert_eq!(
        cached_count.metrics.remote_calls, 0,
        "the count should come from cv_orders"
    );
}

#[test]
fn cache_and_backend_routes_agree_on_reads() {
    let scale = Scale::tiny();
    let deployment = Deployment::new(scale, true);
    let via_cache = deployment.connection();
    let via_backend = deployment.backend_connection();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..25 {
        let i_id = rng.gen_range(1..=scale.items as i64);
        let sql = format!("EXEC getBook @i_id = {i_id}");
        let a = via_cache.query(&sql).unwrap();
        let b = via_backend.query(&sql).unwrap();
        assert_eq!(a.rows, b.rows, "getBook({i_id})");
    }
    // Best-seller agreement (the heavyweight query).
    let max = via_backend.query("EXEC getMaxOrderId").unwrap().rows[0][0]
        .as_i64()
        .unwrap();
    let sql = format!(
        "EXEC getBestSellers @subject = 'HISTORY', @o_threshold = {}",
        (max - 3333).max(0)
    );
    let a = via_cache.query(&sql).unwrap();
    let b = via_backend.query(&sql).unwrap();
    assert_eq!(a.rows.len(), b.rows.len());
    // Quantities agree even if equal-quantity ties order differently.
    let qty = |rows: &[mtcache_repro::types::Row]| -> Vec<i64> {
        rows.iter().map(|r| r[4].as_i64().unwrap()).collect()
    };
    assert_eq!(qty(&a.rows), qty(&b.rows));
}

#[test]
fn all_fourteen_interactions_work_against_the_cache() {
    let scale = Scale::tiny();
    let deployment = Deployment::new(scale, true);
    let conn = deployment.connection();
    let ids = IdAllocator::new(&scale);
    let mut session = Session::new(7, ids);
    let mut rng = StdRng::seed_from_u64(31);
    for interaction in Interaction::ALL {
        let out = run_interaction(interaction, &conn, &mut session, &scale, &mut rng)
            .unwrap_or_else(|e| panic!("{} via cache: {e}", interaction.name()));
        assert!(out.db_calls >= 1);
        deployment.pump_replication(20);
    }
}
