//! Staleness-aware query routing, end to end: while replication is paused a
//! currency-bounded query must fall back to the backend (observably — via
//! `explain`, the fallback counter, and backend hit stats), and return to
//! the cache once replication catches up. Queries without a bound must be
//! completely unaffected.

use std::sync::Arc;

use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer};
use mtcache_repro::replication::{Clock, ManualClock, ReplicationHub};
use mtcache_repro::types::Value;

const UNBOUNDED: &str = "SELECT cname FROM customer WHERE cid = 10";
const BOUNDED: &str = "SELECT cname FROM customer WHERE cid = 10 WITH FRESHNESS 5 SECONDS";

#[allow(clippy::type_complexity)]
fn setup() -> (
    Arc<BackendServer>,
    Arc<CacheServer>,
    Arc<Mutex<ReplicationHub>>,
    ManualClock,
) {
    let clock = ManualClock::new(0);
    let backend = BackendServer::with_clock("backend", Arc::new(clock.clone()));
    backend
        .run_script("CREATE TABLE customer (cid INT NOT NULL PRIMARY KEY, cname VARCHAR)")
        .unwrap();
    let rows: Vec<String> = (1..=300)
        .map(|i| format!("INSERT INTO customer VALUES ({i}, 'c{i}')"))
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub.clone());
    cache
        .create_cached_view("cust_v", "SELECT cid, cname FROM customer WHERE cid <= 200")
        .unwrap();
    (backend, cache, hub, clock)
}

#[test]
fn currency_bound_falls_back_while_paused_and_returns_after_catchup() {
    let (backend, cache, hub, clock) = setup();

    // Pause replication, then change the backend. The cache is now behind
    // by exactly one transaction.
    hub.lock().log_reader_enabled = false;
    backend
        .run_script("UPDATE customer SET cname = 'renamed' WHERE cid = 10")
        .unwrap();
    clock.advance(30_000); // half a minute with no replication

    assert_eq!(cache.lag_of_view("cust_v"), Some(1), "one unapplied txn");
    assert!(cache.staleness_of_view("cust_v").unwrap() > 5_000);

    // 1. Unbounded query: zero behavior change — local, stale, no fallback.
    let r = cache.execute(UNBOUNDED, &Default::default(), "dbo").unwrap();
    assert_eq!(r.rows[0][0], Value::str("c10"), "stale but allowed");
    assert_eq!(r.metrics.remote_calls, 0, "unbounded stays local");
    assert_eq!(cache.stats.freshness_fallbacks.get(), 0);

    // 2. Bounded query: observably degrades to the backend.
    let backend_queries_before = backend.stats.queries.get();
    let r = cache.execute(BOUNDED, &Default::default(), "dbo").unwrap();
    assert_eq!(r.rows[0][0], Value::str("renamed"), "fresh answer");
    assert!(r.metrics.remote_calls >= 1, "went remote");
    assert_eq!(cache.stats.freshness_fallbacks.get(), 1);
    assert!(
        backend.stats.queries.get() > backend_queries_before,
        "backend served the fallback"
    );

    // 3. The decision is visible in EXPLAIN, with the reason.
    let plan = cache.explain(BOUNDED).unwrap();
    assert!(
        plan.contains("routing: backend fallback"),
        "explain must state the fallback:\n{plan}"
    );
    assert!(plan.contains("cust_v"), "explain names the stale view:\n{plan}");
    assert!(plan.contains("bound 5000ms"), "explain shows the bound:\n{plan}");
    assert!(plan.contains("lag 1 txns"), "explain shows the LSN lag:\n{plan}");
    // The unbounded plan carries no routing line at all.
    let plan = cache.explain(UNBOUNDED).unwrap();
    assert!(
        !plan.contains("routing:"),
        "unbounded explain unchanged:\n{plan}"
    );

    // 4. Resume replication and catch up: the bound is satisfiable locally.
    hub.lock().log_reader_enabled = true;
    hub.lock().pump(clock.now_ms()).unwrap();
    hub.lock().pump(clock.now_ms()).unwrap();
    assert_eq!(cache.lag_of_view("cust_v"), Some(0));

    let plan = cache.explain(BOUNDED).unwrap();
    assert!(
        plan.contains("routing: local (currency bound 5s satisfied)"),
        "explain shows the local decision:\n{plan}"
    );
    let r = cache.execute(BOUNDED, &Default::default(), "dbo").unwrap();
    assert_eq!(r.rows[0][0], Value::str("renamed"));
    assert_eq!(r.metrics.remote_calls, 0, "back on the cache");
    assert_eq!(
        cache.stats.freshness_fallbacks.get(),
        1,
        "no new fallback after catch-up"
    );
}

#[test]
fn bound_violation_is_per_view_and_lag_counts_transactions() {
    let (backend, cache, hub, clock) = setup();
    hub.lock().log_reader_enabled = false;
    // Three backend transactions while paused → lag of 3.
    for i in 0..3 {
        backend
            .run_script(&format!("UPDATE customer SET cname = 'u{i}' WHERE cid = 20"))
            .unwrap();
    }
    clock.advance(10_000);
    assert_eq!(cache.lag_of_view("cust_v"), Some(3));
    let plan = cache.explain(BOUNDED).unwrap();
    assert!(plan.contains("lag 3 txns"), "{plan}");
    // A view name this server does not cache has no lag reading.
    assert_eq!(cache.lag_of_view("no_such_view"), None);

    // Catch up: lag returns to zero and the routing line flips.
    hub.lock().log_reader_enabled = true;
    hub.lock().pump(clock.now_ms()).unwrap();
    hub.lock().pump(clock.now_ms()).unwrap();
    assert_eq!(cache.lag_of_view("cust_v"), Some(0));
    let plan = cache.explain(BOUNDED).unwrap();
    assert!(plan.contains("routing: local"), "{plan}");
}
