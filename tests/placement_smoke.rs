//! Smoke guard for the multi-site placement experiment (DESIGN.md §13).
//!
//! Same two-layer shape as `tests/fleet_smoke.rs`: a live mini-run of
//! `run_placement` pinning the experiment's structural invariants (clean
//! streams, peer placements actually happen, zero equivalence failures,
//! floors hold even at mini scale), and a validation of the committed
//! `BENCH_placement.json` artifact so a stale or regressed report fails
//! the build. The committed floors are the ISSUE's acceptance targets:
//! p50 speedup ≥ 1.3×, backend-RTT reduction ≥ 25%, zero equivalence
//! failures.

use mtc_bench::run_placement;

#[test]
fn placement_mini_run_invariants() {
    let r = run_placement(300, 11);
    assert_eq!(r.nodes, 4, "one node per region slice");
    assert_eq!(r.twosite.errors, 0, "two-site stream must run clean");
    assert_eq!(r.multisite.errors, 0, "multi-site stream must run clean");
    assert_eq!(
        r.twosite.queries, r.multisite.queries,
        "both phases replay one identical seeded stream"
    );
    assert_eq!(r.twosite.peer_rtts, 0, "two-site planning never hops to a peer");
    assert!(
        r.multisite.peer_rtts > 0,
        "partitioned views must trigger peer placements"
    );
    assert!(
        r.multisite.backend_rtts < r.twosite.backend_rtts,
        "peer placement must shed backend round trips \
         ({} -> {})",
        r.twosite.backend_rtts,
        r.multisite.backend_rtts
    );
    assert_eq!(
        r.equivalence_failures, 0,
        "placement is a pure performance decision — answers must not change"
    );
    assert!(r.equivalence_checked > 0);
    // The JSON report round-trips the headline fields.
    let json = r.to_json();
    for key in [
        "\"experiment\": \"placement\"",
        "\"p50_speedup\"",
        "\"backend_rtt_reduction\"",
        "\"backend_rtts\"",
        "\"peer_rtts\"",
        "\"failures\"",
    ] {
        assert!(json.contains(key), "report lacks {key}");
    }
}

/// Pulls the `n`-th numeric occurrence of `key` out of the hand-rolled
/// JSON report (0-based).
fn field_at(json: &str, key: &str, n: usize) -> f64 {
    let pat = format!("\"{key}\":");
    let mut from = 0usize;
    for _ in 0..n {
        let at = json[from..]
            .find(&pat)
            .unwrap_or_else(|| panic!("BENCH_placement.json lacks occurrence {n} of `{key}`"));
        from += at + pat.len();
    }
    let at = json[from..]
        .find(&pat)
        .unwrap_or_else(|| panic!("BENCH_placement.json missing `{key}`"));
    let rest = &json[from + at + pat.len()..];
    let end = rest
        .find([',', '\n', '}'])
        .unwrap_or_else(|| panic!("unterminated `{key}`"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` is not numeric: {e}"))
}

#[test]
fn committed_placement_report_meets_floors() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_placement.json");
    let json = std::fs::read_to_string(path).expect(
        "BENCH_placement.json missing — regenerate with \
         `cargo run --release -p mtc-bench --bin exp_placement`",
    );
    assert!(json.contains("\"experiment\": \"placement\""));
    assert_eq!(field_at(&json, "nodes", 0) as usize, 4, "the ISSUE's fleet size");
    assert!(
        field_at(&json, "queries_per_phase", 0) >= 1_000.0,
        "the committed artifact must come from a full-size run"
    );
    // The tentpole floors: p50 speedup >= 1.3x and backend-RTT reduction
    // >= 25% from cost-DP placement alone (result caching disabled).
    let speedup = field_at(&json, "p50_speedup", 0);
    assert!(
        speedup >= 1.3,
        "committed p50 speedup must be >= 1.3x, got {speedup:.2}x"
    );
    let reduction = field_at(&json, "backend_rtt_reduction", 0);
    assert!(
        reduction >= 0.25,
        "committed backend-RTT reduction must be >= 25%, got {:.1}%",
        reduction * 100.0
    );
    // Both phases ran clean (errors occurrence 0 = twosite, 1 = multisite),
    // and the multi-site phase really placed fragments on peers.
    assert_eq!(field_at(&json, "errors", 0), 0.0);
    assert_eq!(field_at(&json, "errors", 1), 0.0);
    assert_eq!(field_at(&json, "peer_rtts", 0), 0.0, "two-site never peers");
    assert!(field_at(&json, "peer_rtts", 1) > 0.0, "multi-site must peer");
    // Zero equivalence failures over a non-empty probe sweep.
    assert!(field_at(&json, "checked", 0) > 0.0);
    assert_eq!(
        field_at(&json, "failures", 0),
        0.0,
        "committed report must show zero equivalence failures"
    );
}
