//! Smoke guard for the fleet experiment (DESIGN.md §11).
//!
//! Same two-layer shape as `tests/resultcache_smoke.rs`: a live mini-run
//! of `run_fleet` pinning the experiment's structural invariants (clean
//! streams, no interaction lost or duplicated across the mid-stream crash
//! and rejoin, fleet beats single-node, zero equivalence failures), and a
//! validation of the committed `BENCH_fleet.json` artifact so a stale or
//! regressed report fails the build. The committed floors are the ISSUE's
//! acceptance targets: 4 nodes × 8 sessions, aggregate throughput ≥ 2× the
//! single-node baseline on both workloads, a reported backend-offload
//! ratio, zero equivalence failures.

use mtc_bench::run_fleet;

#[test]
fn fleet_mini_run_invariants() {
    let nodes = 4;
    let interactions = 200;
    let r = run_fleet(interactions, 7, nodes);
    assert_eq!(r.nodes, nodes);
    assert_eq!(r.sessions, nodes * 8);
    assert_eq!(r.workloads.len(), 2, "Browsing and Shopping");
    for w in &r.workloads {
        assert_eq!(w.single.errors, 0, "{}: single stream must run clean", w.workload);
        assert_eq!(w.fleet.errors, 0, "{}: fleet stream must run clean", w.workload);
        assert_eq!(
            w.fleet.interactions, interactions,
            "{}: the crash + rejoin must not lose or duplicate interactions",
            w.workload
        );
        assert_eq!(
            w.single.interactions, w.fleet.interactions,
            "{}: both phases replay one identical seeded stream",
            w.workload
        );
        assert_eq!(
            w.fleet.per_node_interactions.iter().sum::<usize>(),
            w.fleet.interactions,
            "{}: per-node counts partition the stream",
            w.workload
        );
        assert!(
            w.fleet.per_node_interactions.iter().all(|&c| c > 0),
            "{}: the router must spread sessions over every node: {:?}",
            w.workload,
            w.fleet.per_node_interactions
        );
        assert!(
            w.fleet.sessions_rerouted > 0,
            "{}: the mid-stream crash must evict and reroute sessions",
            w.workload
        );
        assert!(
            w.speedup > 1.0,
            "{}: {} parallel nodes must beat one ({:.2}x)",
            w.workload,
            nodes,
            w.speedup
        );
        assert_eq!(
            w.equivalence_failures, 0,
            "{}: every live node must answer exactly what the backend answers",
            w.workload
        );
        assert!(w.equivalence_checked > 0, "{}", w.workload);
        assert!(
            w.fleet.offload_ratio >= 0.0 && w.fleet.offload_ratio <= 1.0,
            "{}: offload ratio is a fraction",
            w.workload
        );
    }
    // The JSON report round-trips the headline fields.
    let json = r.to_json();
    for key in [
        "\"experiment\": \"fleet\"",
        "\"speedup_vs_single\"",
        "\"offload_ratio\"",
        "\"l2_hits\"",
        "\"sessions_rerouted\"",
        "\"fault_plan\"",
    ] {
        assert!(json.contains(key), "report lacks {key}");
    }
}

/// Pulls the `n`-th numeric occurrence of `key` out of the hand-rolled
/// JSON report (0-based).
fn field_at(json: &str, key: &str, n: usize) -> f64 {
    let pat = format!("\"{key}\":");
    let mut from = 0usize;
    for _ in 0..n {
        let at = json[from..]
            .find(&pat)
            .unwrap_or_else(|| panic!("BENCH_fleet.json lacks occurrence {n} of `{key}`"));
        from += at + pat.len();
    }
    let at = json[from..]
        .find(&pat)
        .unwrap_or_else(|| panic!("BENCH_fleet.json missing `{key}`"));
    let rest = &json[from + at + pat.len()..];
    let end = rest
        .find([',', '\n', '}'])
        .unwrap_or_else(|| panic!("unterminated `{key}`"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` is not numeric: {e}"))
}

fn count_of(json: &str, key: &str) -> usize {
    json.match_indices(&format!("\"{key}\":")).count()
}

#[test]
fn committed_fleet_report_meets_floors() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fleet.json");
    let json = std::fs::read_to_string(path).expect(
        "BENCH_fleet.json missing — regenerate with \
         `cargo run --release -p mtc-bench --bin exp_fleet`",
    );
    assert!(json.contains("\"experiment\": \"fleet\""));
    assert!(json.contains("\"workload\": \"Browsing\""));
    assert!(json.contains("\"workload\": \"Shopping\""));
    assert_eq!(field_at(&json, "nodes", 0) as usize, 4, "the ISSUE's fleet size");
    assert_eq!(
        field_at(&json, "sessions", 0) as usize,
        32,
        "4 nodes x 8 sessions"
    );
    assert!(
        field_at(&json, "interactions_per_phase", 0) >= 1_000.0,
        "the committed artifact must come from a full-size run"
    );
    // The tentpole floor: aggregate fleet throughput >= 2x single-node, on
    // both workloads (speedup_vs_single appears once per workload).
    let speedups = count_of(&json, "speedup_vs_single");
    assert_eq!(speedups, 2);
    for i in 0..speedups {
        let s = field_at(&json, "speedup_vs_single", i);
        assert!(
            s >= 2.0,
            "workload {i}: committed aggregate throughput must be >= 2x \
             single-node, got {s:.2}x"
        );
    }
    // A backend-offload ratio is reported for every phase, and the fleet's
    // L1/L2 hierarchy keeps Browsing's offload meaningfully high
    // (occurrence 1 = Browsing fleet phase; single is emitted first).
    assert_eq!(count_of(&json, "offload_ratio"), 4);
    assert!(
        field_at(&json, "offload_ratio", 1) >= 0.30,
        "Browsing fleet phase must offload >= 30% of remote statements"
    );
    // The committed run crashed a node mid-stream and rerouted its
    // sessions (occurrences 1 and 3 are the fleet phases).
    assert!(field_at(&json, "sessions_rerouted", 1) > 0.0);
    assert!(field_at(&json, "sessions_rerouted", 3) > 0.0);
    // Zero equivalence failures, in every workload.
    let failures = count_of(&json, "failures");
    assert_eq!(failures, 2, "a failures field per workload");
    for i in 0..failures {
        assert_eq!(
            field_at(&json, "failures", i),
            0.0,
            "committed report must show zero equivalence failures"
        );
    }
    // The fault plan and the mid-stream crash are part of the claim.
    assert!(json.contains("\"drop_p\": 0.10"));
    assert!(json.contains("\"duplicate_p\": 0.05"));
    assert!(json.contains("\"crash_every\": 200"));
}
