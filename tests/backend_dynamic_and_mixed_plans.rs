//! §5.1 on the backend itself: dynamic plans "apply to all materialized
//! views", not just cached ones — and §5.1.1's mixed-result plans are legal
//! there because a backend MV is transactionally fresh.

use mtcache_repro::cache::{BackendServer, Connection};
use mtcache_repro::engine::{bind_select, execute, optimize, ExecContext, OptimizerOptions};
use mtcache_repro::engine::eval::Bindings;
use mtcache_repro::sql::{parse_statement, Statement};
use mtcache_repro::types::{Row, Value};

fn backend() -> std::sync::Arc<BackendServer> {
    let b = BackendServer::new("backend");
    b.run_script(
        "CREATE TABLE customer (cid INT NOT NULL PRIMARY KEY, cname VARCHAR, caddress VARCHAR)",
    )
    .unwrap();
    let rows: Vec<String> = (1..=5000)
        .map(|i| format!("INSERT INTO customer VALUES ({i}, 'c{i}', 'a{i}')"))
        .collect();
    b.run_script(&rows.join(";")).unwrap();
    // A regular (non-cached) materialized view on the backend, §5.1 style.
    b.run_script(
        "CREATE MATERIALIZED VIEW cust1000 AS \
         SELECT cid, cname, caddress FROM customer WHERE cid <= 1000",
    )
    .unwrap();
    b.analyze();
    b
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

#[test]
fn backend_dynamic_plan_runs_without_any_remote_server() {
    let b = backend();
    let conn = Connection::connect(b.clone());
    let sql = "SELECT cid, cname, caddress FROM customer WHERE cid <= @v";
    // Both guard outcomes execute locally — the backend has no remote.
    for v in [400i64, 4000] {
        let r = conn
            .query_with(sql, &Connection::params(&[("v", Value::Int(v))]))
            .unwrap();
        assert_eq!(r.rows.len() as i64, v);
        assert_eq!(r.metrics.remote_calls, 0, "@v = {v} must stay local");
    }
    // And the small-parameter case actually uses the MV.
    let plan = b
        .explain("SELECT cid FROM customer WHERE cid <= 500")
        .unwrap();
    assert!(plan.contains("cust1000"), "MV matched: {plan}");
}

#[test]
fn mixed_result_plans_work_on_fresh_views() {
    // Mixed plans pay off when the base table has no good access path for
    // the filter (non-key column) while the view covers the common case.
    let b = BackendServer::new("backend");
    b.run_script(
        "CREATE TABLE customer (cid INT NOT NULL PRIMARY KEY, cgroup INT, cname VARCHAR)",
    )
    .unwrap();
    let rows: Vec<String> = (1..=5000)
        .map(|i| format!("INSERT INTO customer VALUES ({i}, {}, 'c{i}')", i % 100))
        .collect();
    b.run_script(&rows.join(";")).unwrap();
    b.run_script(
        "CREATE MATERIALIZED VIEW cust_g2 AS          SELECT cid, cgroup, cname FROM customer WHERE cgroup <= 2",
    )
    .unwrap();
    b.analyze();

    // Build the §5.1.1 mixed plan explicitly through view matching (the
    // cost model prefers the single-branch dynamic plan on one server —
    // mixed plans pay off through reduced *transfer volume*, which has no
    // cost here — so we exercise the mechanics directly).
    let options = OptimizerOptions::default();
    let db = b.db.read();
    let required: Vec<String> = vec![
        "customer.cid".into(),
        "customer.cgroup".into(),
        "customer.cname".into(),
    ];
    let conjuncts = vec![mtcache_repro::sql::parse_expression("cgroup <= @v").unwrap()];
    let matches = mtcache_repro::engine::optimizer::view_match::match_views(
        &db,
        "customer",
        "customer",
        &db.table_ref("customer").unwrap().schema().qualified("customer"),
        &conjuncts,
        &required,
        mtcache_repro::engine::optimizer::view_match::MatchOptions {
            enable_dynamic_plans: true,
            allow_mixed_results: true,
        },
    );
    assert_eq!(matches.len(), 1);
    let m = &matches[0];
    assert!(m.mixed, "fresh view allows a mixed plan");
    let logical = mtcache_repro::engine::optimizer::view_match::recompute_schemas(m.plan.clone());
    let text = logical.explain();
    assert!(text.contains("[always]"), "mixed plan shape: {text}");
    assert!(text.contains("cust_g2"), "{text}");
    let physical =
        mtcache_repro::engine::optimizer::location::build(&logical, &db, &options.cost).unwrap();

    // Correctness across the boundary: view part + remainder = full answer.
    let sql = "SELECT cid, cgroup, cname FROM customer WHERE cgroup <= @v";
    let Statement::Select(sel) = parse_statement(sql).unwrap() else {
        unreachable!()
    };
    let no_views = OptimizerOptions {
        enable_view_matching: false,
        ..Default::default()
    };
    let plain_plan = optimize(bind_select(&sel, &db).unwrap(), &db, &no_views).unwrap();
    for v in [0i64, 1, 2, 3, 50, 99] {
        let mut params = Bindings::new();
        params.insert("v".into(), Value::Int(v));
        let ctx = ExecContext {
            db: &db,
            remote: None,
            params: &params,
            work: &options.cost,
            parallel: None,
        };
        let got = execute(&physical, &ctx).unwrap();
        // No duplicates between the view part and the remainder.
        let unique: std::collections::HashSet<&Row> = got.rows.iter().collect();
        assert_eq!(unique.len(), got.rows.len(), "mixed result must not duplicate");
        // Same rows as the plain table scan. The standalone matched plan
        // orders columns alphabetically (the optimizer pipeline's parent
        // Project normally restores query order), so key rows by the `cid`
        // column looked up through each result's schema.
        let want = execute(&plain_plan.physical, &ctx).unwrap();
        let key = |r: &mtcache_repro::engine::QueryResult| {
            let idx = r.schema.index_of("cid").unwrap();
            let mut ids: Vec<i64> = r.rows.iter().map(|row| row[idx].as_i64().unwrap()).collect();
            ids.sort();
            ids
        };
        assert_eq!(key(&got), key(&want), "@v = {v}");
    }
    let _ = sorted; // silence helper-unused in this test body
}

#[test]
fn eager_maintenance_keeps_backend_mv_fresh_through_the_dynamic_plan() {
    let b = backend();
    let conn = Connection::connect(b.clone());
    conn.query("UPDATE customer SET cname = 'fresh' WHERE cid = 7")
        .unwrap();
    // The MV was maintained in the same transaction; the dynamic plan's
    // local branch must see the new value immediately.
    let r = conn
        .query_with(
            "SELECT cname FROM customer WHERE cid <= @v AND cid = 7",
            &Connection::params(&[("v", Value::Int(500))]),
        )
        .unwrap();
    assert_eq!(r.rows, vec![Row::new(vec![Value::str("fresh")])]);
}
