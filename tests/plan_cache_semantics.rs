//! Observable semantics of the parameterized plan cache.
//!
//! The cache must be invisible except in the counters: hits and misses are
//! counted, parameter signatures separate plans, any catalog change (new
//! index, new cached view, refreshed statistics) invalidates stale entries
//! so an outdated plan is never executed, permission checks still run on
//! every execution, and freshness-bounded statements bypass the cache
//! entirely. A property test pins that cached-plan results are identical to
//! freshly optimized plans across random parameters.

use std::sync::Arc;

use mtc_util::check::{self, Config};
use mtc_util::rng::Rng;
use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::types::{Row, Value};

const N_ROWS: i64 = 400;
const VIEW_BOUND: i64 = 200;

fn backend_only() -> Arc<BackendServer> {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, grp INT, val FLOAT, name VARCHAR);
             GRANT SELECT ON t TO app;",
        )
        .unwrap();
    let rows: Vec<String> = (1..=N_ROWS)
        .map(|i| format!("INSERT INTO t VALUES ({i}, {}, {}.5, 'n{}')", i % 7, i % 13, i % 5))
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    backend
}

fn backend_and_cache() -> (Arc<BackendServer>, Arc<CacheServer>) {
    let backend = backend_only();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub);
    (backend, cache)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

#[test]
fn backend_counts_hits_and_misses() {
    let backend = backend_only();
    let conn = Connection::connect(backend.clone());
    let sql = "SELECT id, val FROM t WHERE grp = 3";

    let before = backend.plan_cache.stats();
    let first = conn.query(sql).unwrap();
    let mid = backend.plan_cache.stats();
    assert_eq!(mid.misses, before.misses + 1, "first execution is a miss");
    assert_eq!(mid.insertions, before.insertions + 1);
    assert_eq!(mid.hits, before.hits);

    let second = conn.query(sql).unwrap();
    let after = backend.plan_cache.stats();
    assert_eq!(after.hits, mid.hits + 1, "second execution is a hit");
    assert_eq!(after.misses, mid.misses, "no new miss on repeat");
    assert_eq!(first.rows, second.rows, "hit returns identical rows");
}

#[test]
fn parameter_signatures_separate_plans() {
    let backend = backend_only();
    let conn = Connection::connect(backend.clone());
    let sql = "SELECT id FROM t WHERE val <= @v";

    // Same SQL text, different parameter types: distinct cache entries.
    let int_params = Connection::params(&[("v", Value::Int(5))]);
    let float_params = Connection::params(&[("v", Value::Float(5.0))]);

    conn.query_with(sql, &int_params).unwrap();
    let s1 = backend.plan_cache.stats();
    conn.query_with(sql, &float_params).unwrap();
    let s2 = backend.plan_cache.stats();
    assert_eq!(
        s2.misses,
        s1.misses + 1,
        "a float binding must not reuse the int-signature plan"
    );

    // Re-running each signature now hits its own entry.
    conn.query_with(sql, &int_params).unwrap();
    conn.query_with(sql, &float_params).unwrap();
    let s3 = backend.plan_cache.stats();
    assert_eq!(s3.hits, s2.hits + 2);
    assert_eq!(s3.misses, s2.misses);
}

#[test]
fn create_index_invalidates_cached_plans() {
    let backend = backend_only();
    let conn = Connection::connect(backend.clone());
    let sql = "SELECT id, val FROM t WHERE grp = 2";

    let cold = conn.query(sql).unwrap();
    conn.query(sql).unwrap(); // warm: cached plan in use
    let before = backend.plan_cache.stats();

    backend.run_script("CREATE INDEX ix_t_grp ON t (grp)").unwrap();

    let warm = conn.query(sql).unwrap();
    let after = backend.plan_cache.stats();
    assert_eq!(
        after.invalidations,
        before.invalidations + 1,
        "catalog change must invalidate the stale plan"
    );
    assert_eq!(after.misses, before.misses + 1, "re-optimized after invalidation");
    assert_eq!(sorted(cold.rows), sorted(warm.rows), "results unchanged");
}

#[test]
fn stats_refresh_invalidates_cached_plans() {
    let backend = backend_only();
    let conn = Connection::connect(backend.clone());
    let sql = "SELECT COUNT(*) AS n FROM t WHERE grp = 1";

    conn.query(sql).unwrap();
    let before = backend.plan_cache.stats();
    backend.analyze(); // refreshed statistics => new catalog version
    conn.query(sql).unwrap();
    let after = backend.plan_cache.stats();
    assert_eq!(after.invalidations, before.invalidations + 1);
    assert_eq!(after.misses, before.misses + 1);
}

#[test]
fn cached_view_creation_invalidates_and_reroutes() {
    // The strongest form of "stale plans are never executed": a plan that
    // was compiled to go remote must be thrown away the moment a cached
    // view can answer it locally.
    let (_backend, cache) = backend_and_cache();
    let conn = Connection::connect(cache.clone());
    let sql = &format!("SELECT id, grp, val FROM t WHERE id <= {VIEW_BOUND}");

    let remote_res = conn.query(sql).unwrap();
    assert!(
        remote_res.metrics.remote_calls > 0,
        "no cached view yet: the query must go remote"
    );
    // The remote-routed plan is now cached.
    let before = cache.plan_cache.stats();
    assert!(before.entries > 0);

    cache
        .create_cached_view("t_head", &format!("SELECT id, grp, val, name FROM t WHERE id <= {VIEW_BOUND}"))
        .unwrap();

    let local_res = conn.query(sql).unwrap();
    let after = cache.plan_cache.stats();
    assert_eq!(
        local_res.metrics.remote_calls, 0,
        "stale remote plan must not be executed after the view exists"
    );
    assert!(after.invalidations > before.invalidations);
    assert_eq!(sorted(remote_res.rows), sorted(local_res.rows));
}

#[test]
fn explain_reports_cold_then_cached() {
    let backend = backend_only();
    let conn = Connection::connect(backend.clone());
    let sql = "SELECT id FROM t WHERE grp = 4";

    let cold = conn.explain(sql).unwrap();
    assert!(cold.contains("plan cache: cold"), "explain before execution:\n{cold}");

    conn.query(sql).unwrap();
    let warm = conn.explain(sql).unwrap();
    assert!(warm.contains("plan cache: cached"), "explain after execution:\n{warm}");
}

#[test]
fn permissions_are_checked_on_cache_hits() {
    let backend = backend_only();
    let admin = Connection::connect(backend.clone());
    let sql = "SELECT id FROM t WHERE grp = 0";

    admin.query(sql).unwrap();
    admin.query(sql).unwrap(); // plan is hot in the cache
    let before = backend.plan_cache.stats();

    let intruder = Connection::connect_as(backend.clone(), "intruder");
    let err = intruder.query(sql);
    assert!(err.is_err(), "cached plan must not bypass permission checks");
    let after = backend.plan_cache.stats();
    assert_eq!(after.hits, before.hits, "denied statement never touches the cache");

    // The grantee still rides the cached plan.
    let app = Connection::connect_as(backend.clone(), "app");
    app.query(sql).unwrap();
    assert_eq!(backend.plan_cache.stats().hits, before.hits + 1);
}

#[test]
fn freshness_bounded_statements_bypass_the_cache() {
    let (_backend, cache) = backend_and_cache();
    cache
        .create_cached_view("t_head", &format!("SELECT id, grp, val, name FROM t WHERE id <= {VIEW_BOUND}"))
        .unwrap();
    let conn = Connection::connect(cache.clone());

    let before = cache.plan_cache.len();
    let sql = "SELECT id FROM t WHERE id <= 10 WITH FRESHNESS 5 SECONDS";
    conn.query(sql).unwrap();
    conn.query(sql).unwrap();
    assert_eq!(
        cache.plan_cache.len(),
        before,
        "freshness-bounded plans depend on runtime staleness and must not be cached"
    );
}

#[test]
fn cached_plans_agree_with_fresh_plans() {
    let (backend, cache) = backend_and_cache();
    cache
        .create_cached_view("t_head", &format!("SELECT id, grp, val, name FROM t WHERE id <= {VIEW_BOUND}"))
        .unwrap();
    let sql = "SELECT id, grp, val FROM t WHERE id <= @v";

    check::run(
        &Config::cases(32),
        "cached_plans_agree_with_fresh_plans",
        |rng| rng.gen_range(0i64..(N_ROWS + 100)),
        |&v| {
            let params = Connection::params(&[("v", Value::Int(v))]);
            let truth = Connection::connect(backend.clone())
                .query_with(sql, &params)
                .unwrap();
            // First call per process is a miss (fresh optimization); every
            // subsequent call is a cache hit. Both must match the backend.
            let before = cache.plan_cache.stats();
            let c1 = Connection::connect(cache.clone()).query_with(sql, &params).unwrap();
            let c2 = Connection::connect(cache.clone()).query_with(sql, &params).unwrap();
            let after = cache.plan_cache.stats();
            assert!(after.hits > before.hits, "@v = {v}: second run must hit");
            assert_eq!(sorted(c1.rows.clone()), sorted(truth.rows.clone()), "@v = {v}");
            assert_eq!(sorted(c1.rows), sorted(c2.rows), "@v = {v}");
            // The cached ChoosePlan must still route per-parameter.
            if v <= VIEW_BOUND {
                assert_eq!(c2.metrics.remote_calls, 0, "@v = {v} should stay local");
            } else {
                assert!(c2.metrics.remote_calls > 0, "@v = {v} must go remote");
            }
        },
    );
}
