//! Multi-site query placement at the `Fleet` API level (DESIGN.md §13):
//! the cost DP routes plan fragments to whichever site is cheapest —
//! this node, a peer carrying a relevant cached view, or the backend —
//! and the fleet's topology version invalidates cached placements on any
//! membership change.
//!
//! Invariants pinned here:
//!
//! * a node with no usable local view serves an in-view read from a peer's
//!   cached view over the cheap peer link, not from the backend, and the
//!   answer is bit-identical to the backend's;
//! * EXPLAIN names the chosen site per remote fragment
//!   (`placed: cache1 (view item_head)` / `placed: backend`);
//! * `multisite: false` restores strict two-site planning on every node;
//! * crash AND rejoin bump the fleet-wide topology version, and the plan
//!   cache treats it exactly like `Catalog::version()` — a cached
//!   peer-placed plan never executes against a changed membership.

use std::sync::Arc;

use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection, Fleet, FleetConfig};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::types::Row;

const VIEW_BOUND: i64 = 150;
const ROWS: i64 = 200;

/// A read inside the cached view's range (only `cache1` carries the view).
const IN_VIEW_READ: &str = "SELECT i_id, i_qty FROM item WHERE i_id < 100 ORDER BY i_id ASC";
/// A read outside every cached view: backend is the only feasible site.
const OUT_OF_VIEW_READ: &str = "SELECT i_qty FROM item WHERE i_id = 180";

/// Backend + hub + a fleet where the cached view is *partitioned*: only
/// `cache1` caches `item_head`; every other node has a bare shadow catalog
/// and must either hop to `cache1` or fall back to the backend.
fn setup_partitioned_fleet(
    cfg: FleetConfig,
) -> (Arc<BackendServer>, Arc<Fleet>, Arc<Mutex<ReplicationHub>>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script("CREATE TABLE item (i_id INT NOT NULL PRIMARY KEY, i_qty INT, i_note VARCHAR)")
        .unwrap();
    let rows: Vec<String> = (0..ROWS)
        .map(|i| format!("INSERT INTO item VALUES ({i}, {}, 'n{i}')", i % 50))
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let fleet = Fleet::create(
        backend.clone(),
        hub.clone(),
        cfg,
        Box::new(|cache: &CacheServer| {
            if cache.name() == "cache1" {
                cache.create_cached_view(
                    "item_head",
                    &format!("SELECT i_id, i_qty FROM item WHERE i_id < {VIEW_BOUND}"),
                )?;
            }
            Ok(())
        }),
    )
    .unwrap();
    (backend, fleet, hub)
}

fn ground_truth(backend: &Arc<BackendServer>, sql: &str) -> Vec<Row> {
    Connection::connect(backend.clone()).query(sql).unwrap().rows
}

#[test]
fn peer_placement_serves_from_a_peers_cached_view() {
    let (backend, fleet, _hub) = setup_partitioned_fleet(FleetConfig {
        nodes: 2,
        ..FleetConfig::default()
    });
    let want = ground_truth(&backend, IN_VIEW_READ);
    let viewless = Connection::connect(fleet.node(0).unwrap());
    let r = viewless.query(IN_VIEW_READ).unwrap();
    assert_eq!(r.rows, want, "peer-placed answer must equal backend truth");
    assert!(
        r.metrics.peer_rtts > 0,
        "the fragment must travel the peer link, not stay local"
    );
    assert_eq!(
        r.metrics.remote_rtts - r.metrics.peer_rtts,
        0,
        "no backend round trips: the peer's cached view covers the read"
    );
    // The cached (compiled) plan keeps the peer boundary: a second run
    // pays the peer link again, still zero backend trips.
    let again = viewless.query(IN_VIEW_READ).unwrap();
    assert_eq!(again.rows, want);
    assert!(again.metrics.peer_rtts > 0);
    assert_eq!(again.metrics.remote_rtts - again.metrics.peer_rtts, 0);
}

#[test]
fn explain_names_the_chosen_site_per_fragment() {
    let (_backend, fleet, _hub) = setup_partitioned_fleet(FleetConfig {
        nodes: 2,
        ..FleetConfig::default()
    });
    let viewless = fleet.node(0).unwrap();
    let peer_placed = viewless.explain(IN_VIEW_READ).unwrap();
    assert!(
        peer_placed.contains("placed: cache1 (view item_head)"),
        "EXPLAIN must name the winning peer and its view:\n{peer_placed}"
    );
    let backend_placed = viewless.explain(OUT_OF_VIEW_READ).unwrap();
    assert!(
        backend_placed.contains("placed: backend"),
        "out-of-view reads place on the backend:\n{backend_placed}"
    );
    assert!(
        !backend_placed.contains("placed: cache1"),
        "no peer covers i_id = 180:\n{backend_placed}"
    );
    // The node that owns the view answers locally: no remote fragment, no
    // placement line at all.
    let owner = fleet.node(1).unwrap();
    let local = owner.explain(IN_VIEW_READ).unwrap();
    assert!(
        !local.contains("placed:"),
        "the view owner's plan has no remote fragments:\n{local}"
    );
}

#[test]
fn multisite_off_restores_two_site_planning() {
    let (backend, fleet, _hub) = setup_partitioned_fleet(FleetConfig {
        nodes: 2,
        multisite: false,
        ..FleetConfig::default()
    });
    let want = ground_truth(&backend, IN_VIEW_READ);
    let viewless = Connection::connect(fleet.node(0).unwrap());
    let r = viewless.query(IN_VIEW_READ).unwrap();
    assert_eq!(r.rows, want, "two-site answer must equal backend truth");
    assert_eq!(r.metrics.peer_rtts, 0, "no peer hops with multisite off");
    assert!(
        r.metrics.remote_rtts > 0,
        "the viewless node pays the backend trip instead"
    );
    let explain = fleet.node(0).unwrap().explain(IN_VIEW_READ).unwrap();
    assert!(
        explain.contains("placed: backend") && !explain.contains("placed: cache1"),
        "two-site EXPLAIN only ever places on the backend:\n{explain}"
    );
}

#[test]
fn crash_and_rejoin_bump_topology_and_invalidate_cached_placements() {
    let (backend, fleet, _hub) = setup_partitioned_fleet(FleetConfig {
        nodes: 2,
        ..FleetConfig::default()
    });
    let want = ground_truth(&backend, IN_VIEW_READ);
    assert_eq!(fleet.topology_version(), 0);
    let viewless = Connection::connect(fleet.node(0).unwrap());

    // Warm: the peer-placed plan lands in cache0's plan cache.
    let warm = viewless.query(IN_VIEW_READ).unwrap();
    assert_eq!(warm.rows, want);
    assert!(warm.metrics.peer_rtts > 0);

    // Crash the view owner: topology bumps, and the cached plan — whose
    // Remote boundary names the dead peer — must never execute again.
    fleet.crash_node(1).unwrap();
    assert_eq!(fleet.topology_version(), 1);
    let invalidations_before = fleet.node(0).unwrap().plan_cache.stats().invalidations;
    let after_crash = viewless.query(IN_VIEW_READ).unwrap();
    assert_eq!(after_crash.rows, want, "reroute must not change the answer");
    assert_eq!(
        after_crash.metrics.peer_rtts, 0,
        "the dead peer cannot serve the fragment"
    );
    assert!(
        after_crash.metrics.remote_rtts > 0,
        "the replanned fragment goes to the backend"
    );
    assert!(
        fleet.node(0).unwrap().plan_cache.stats().invalidations > invalidations_before,
        "the topology bump must invalidate the cached peer-placed plan"
    );

    // Rejoin bumps again (the peer's views are back and plannable), and
    // placement resumes.
    fleet.rejoin_node(1).unwrap();
    assert_eq!(fleet.topology_version(), 2);
    let explain = fleet.node(0).unwrap().explain(IN_VIEW_READ).unwrap();
    assert!(
        explain.contains("placed: cache1 (view item_head)"),
        "after rejoin the DP places on the peer again:\n{explain}"
    );
    assert_eq!(viewless.query(IN_VIEW_READ).unwrap().rows, want);
}

#[test]
fn peer_placement_is_bit_identical_across_fleet_shapes() {
    // The same probes through a viewless node (peer-placed), the view
    // owner (local), and a multisite-off fleet (backend) must all equal
    // the backend's answer — placement is a pure performance decision.
    let probes = [
        IN_VIEW_READ,
        OUT_OF_VIEW_READ,
        "SELECT COUNT(*) AS n FROM item WHERE i_id < 100",
        "SELECT i_id FROM item WHERE i_id < 100 AND i_qty > 25 ORDER BY i_id ASC",
    ];
    let (backend, multi, _h1) = setup_partitioned_fleet(FleetConfig {
        nodes: 3,
        ..FleetConfig::default()
    });
    let (backend2, two_site, _h2) = setup_partitioned_fleet(FleetConfig {
        nodes: 3,
        multisite: false,
        ..FleetConfig::default()
    });
    for sql in probes {
        let want = ground_truth(&backend, sql);
        assert_eq!(ground_truth(&backend2, sql), want, "fixtures diverged: {sql}");
        for slot in 0..3 {
            let via_multi = Connection::connect(multi.node(slot).unwrap())
                .query(sql)
                .unwrap();
            let via_two = Connection::connect(two_site.node(slot).unwrap())
                .query(sql)
                .unwrap();
            assert_eq!(via_multi.rows, want, "multisite node {slot}: {sql}");
            assert_eq!(via_two.rows, want, "two-site node {slot}: {sql}");
            assert_eq!(via_multi.schema, via_two.schema, "{sql}");
        }
    }
}
