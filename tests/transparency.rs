//! The paper's core claim: caching is *transparent*. The same application
//! code, run against the backend and against a cache server, produces the
//! same answers — queries, parameterized queries, stored procedures and
//! updates included.

use std::sync::Arc;

use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::types::{Row, Value};

fn setup() -> (Arc<BackendServer>, Arc<CacheServer>, Arc<Mutex<ReplicationHub>>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE product (p_id INT NOT NULL PRIMARY KEY, p_name VARCHAR, p_price FLOAT, p_category VARCHAR);
             CREATE INDEX ix_product_cat ON product (p_category);
             GRANT SELECT ON product TO app;
             GRANT UPDATE ON product TO app;
             GRANT INSERT ON product TO app;",
        )
        .unwrap();
    let rows: Vec<String> = (1..=5000)
        .map(|i| {
            format!(
                "INSERT INTO product VALUES ({i}, 'product{i}', {}.25, 'cat{}')",
                i % 90,
                i % 12
            )
        })
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend
        .create_procedure(
            "priceBand",
            &["lo", "hi"],
            "SELECT p_id, p_name, p_price FROM product WHERE p_price BETWEEN @lo AND @hi ORDER BY p_id ASC",
        )
        .unwrap();
    backend.analyze();

    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub.clone());
    cache
        .create_cached_view(
            "hot_products",
            "SELECT p_id, p_name, p_price, p_category FROM product WHERE p_id <= 2000",
        )
        .unwrap();
    cache.copy_procedure("priceBand").unwrap();
    (backend, cache, hub)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

#[test]
fn identical_results_for_every_query_shape() {
    let (backend, cache, _hub) = setup();
    let queries = [
        "SELECT p_name FROM product WHERE p_id = 77",
        "SELECT p_id, p_price FROM product WHERE p_id <= 150 ORDER BY p_price DESC, p_id ASC",
        "SELECT p_category, COUNT(*) AS n, AVG(p_price) AS avg_price FROM product GROUP BY p_category ORDER BY p_category ASC",
        "SELECT TOP 7 p_id FROM product WHERE p_category = 'cat3' ORDER BY p_id ASC",
        "SELECT DISTINCT p_category FROM product WHERE p_id <= 1200 ORDER BY p_category ASC",
        "SELECT COUNT(*) AS n FROM product WHERE p_name LIKE '%duct12%'",
        "SELECT p_id FROM product WHERE p_id BETWEEN 1990 AND 2010 ORDER BY p_id ASC",
    ];
    let bconn = Connection::connect_as(backend.clone(), "app");
    let cconn = Connection::connect_as(cache.clone(), "app");
    for q in queries {
        let b = bconn.query(q).unwrap_or_else(|e| panic!("backend `{q}`: {e}"));
        let c = cconn.query(q).unwrap_or_else(|e| panic!("cache `{q}`: {e}"));
        assert_eq!(b.rows, c.rows, "result mismatch for `{q}`");
    }
}

#[test]
fn parameterized_queries_agree_across_the_guard_boundary() {
    let (backend, cache, _hub) = setup();
    let bconn = Connection::connect_as(backend.clone(), "app");
    let cconn = Connection::connect_as(cache.clone(), "app");
    let sql = "SELECT p_id, p_name, p_price, p_category FROM product WHERE p_id <= @v";
    // Values straddling the view boundary (2000), including the exact edge.
    for v in [1i64, 500, 1999, 2000, 2001, 3500, 5000, 9999] {
        let params = Connection::params(&[("v", Value::Int(v))]);
        let b = bconn.query_with(sql, &params).unwrap();
        let c = cconn.query_with(sql, &params).unwrap();
        assert_eq!(
            sorted(b.rows),
            sorted(c.rows),
            "mismatch at @v = {v}"
        );
    }
}

#[test]
fn stored_procedures_agree() {
    let (backend, cache, _hub) = setup();
    let bconn = Connection::connect_as(backend.clone(), "app");
    let cconn = Connection::connect_as(cache.clone(), "app");
    let call = "EXEC priceBand @lo = 10.0, @hi = 30.0";
    let b = bconn.query(call).unwrap();
    let c = cconn.query(call).unwrap();
    assert!(!b.rows.is_empty());
    assert_eq!(b.rows, c.rows);
}

#[test]
fn updates_through_the_cache_are_visible_everywhere_after_sync() {
    let (backend, cache, hub) = setup();
    let cconn = Connection::connect_as(cache.clone(), "app");
    cconn
        .query("UPDATE product SET p_price = 999.5 WHERE p_id = 123")
        .unwrap();
    // Immediately visible on the backend...
    let b = Connection::connect_as(backend.clone(), "app")
        .query("SELECT p_price FROM product WHERE p_id = 123")
        .unwrap();
    assert_eq!(b.rows[0][0], Value::Float(999.5));
    // ...and on the cache after replication catches up.
    hub.lock().pump(1_000_000).unwrap();
    let c = cconn
        .query("SELECT p_price FROM product WHERE p_id = 123")
        .unwrap();
    assert_eq!(c.rows[0][0], Value::Float(999.5));
    assert_eq!(c.metrics.remote_calls, 0, "read served from the cached view");
}

#[test]
fn permission_model_is_shadowed() {
    let (_backend, cache, _hub) = setup();
    let conn = Connection::connect_as(cache, "intruder");
    let err = conn.query("SELECT p_name FROM product WHERE p_id = 1").unwrap_err();
    assert_eq!(err.kind(), "permission");
}
