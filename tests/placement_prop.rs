//! Property-based pin of the multi-site placement DP (DESIGN.md §13):
//! for randomized small queries and randomized placement environments
//! (up to 3 peers + backend + here = 5 sites), the DP's cheapest
//! local-delivery cost equals an exhaustive brute-force enumeration of
//! every feasible (plan node → site) assignment. The DP is optimal over
//! the space it claims to search — per-link DataTransfer costs, peer
//! view coverage, pruning-Project fusion and all.

use std::sync::Arc;

use mtc_util::check::{self, Config};
use mtc_util::rng::{Rng, StdRng};
use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer};
use mtcache_repro::engine::optimizer::location::{brute_force_local, cost_placed};
use mtcache_repro::engine::{bind_select, CostModel, PeerSite, PlacementEnv};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::sql::{parse_statement, Statement};

const T_ROWS: i64 = 2000;
const U_ROWS: i64 = 1500;

/// A viewless "here" node plus three peers with *different* view subsets,
/// so feasibility varies per peer: p0 covers narrow `t` reads, p1 covers
/// wide `t` reads over a smaller range, p2 covers `u`.
fn setup() -> (Arc<CacheServer>, Vec<Arc<CacheServer>>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, grp INT, val FLOAT, name VARCHAR);
             CREATE TABLE u (id INT NOT NULL PRIMARY KEY, tag INT)",
        )
        .unwrap();
    let t_rows: Vec<String> = (1..=T_ROWS)
        .map(|i| format!("INSERT INTO t VALUES ({i}, {}, {}.5, 'n{}')", i % 17, i % 83, i % 29))
        .collect();
    backend.run_script(&t_rows.join(";")).unwrap();
    let u_rows: Vec<String> = (1..=U_ROWS)
        .map(|i| format!("INSERT INTO u VALUES ({i}, {})", i % 41))
        .collect();
    backend.run_script(&u_rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let here = CacheServer::create("here", backend.clone(), hub.clone());
    let views: [&[(&str, &str)]; 3] = [
        &[("t_head", "SELECT id, grp FROM t WHERE id < 1500")],
        &[("t_wide", "SELECT id, grp, val, name FROM t WHERE id < 800")],
        &[("u_head", "SELECT id, tag FROM u WHERE id < 1200")],
    ];
    let peers = views
        .iter()
        .enumerate()
        .map(|(i, defs)| {
            let peer = CacheServer::create(&format!("peer{i}"), backend.clone(), hub.clone());
            for (name, sql) in defs.iter() {
                peer.create_cached_view(name, sql).unwrap();
            }
            peer
        })
        .collect();
    (here, peers)
}

/// Small query shapes (≤5 plan nodes after binding): leaf scans with
/// range/equality filters, pruning projections, sorts, aggregates, and a
/// two-table join — every operator family the DP composes peer costs over.
fn gen_query(rng: &mut StdRng) -> String {
    let k = rng.gen_range(1i64..T_ROWS);
    let g = rng.gen_range(0i64..17);
    match rng.gen_range(0u32..7) {
        0 => format!("SELECT id, grp FROM t WHERE id < {k}"),
        1 => format!("SELECT id, grp, val FROM t WHERE id < {k}"),
        2 => format!("SELECT id, grp FROM t WHERE id < {k} ORDER BY id ASC"),
        3 => format!("SELECT COUNT(*) AS n FROM t WHERE id < {k}"),
        4 => format!("SELECT id, grp FROM t WHERE id < {k} AND grp = {g}"),
        5 => format!(
            "SELECT t.id, u.tag FROM t JOIN u ON t.id = u.id WHERE t.id < {}",
            k.min(U_ROWS)
        ),
        _ => format!("SELECT id FROM u WHERE id < {} AND tag > 10", k.min(U_ROWS)),
    }
}

#[test]
fn dp_cost_equals_brute_force_enumeration() {
    let (here, peers) = setup();
    let cm = CostModel::default();
    let db = here.db.read();
    let snaps: Vec<_> = peers.iter().map(|p| p.db.read()).collect();
    check::run(
        &Config::cases(300),
        "dp_cost_equals_brute_force_enumeration",
        |rng: &mut StdRng| {
            // A random peer subset: from two-site (no peers) up to 5 sites.
            let mask = rng.gen_range(0u32..8);
            (gen_query(rng), mask)
        },
        |(sql, mask)| {
            let Statement::Select(sel) = parse_statement(sql).unwrap() else {
                panic!("generator only emits SELECT");
            };
            let plan = bind_select(&sel, &db).unwrap();
            let mut env = PlacementEnv::two_site(&cm);
            for (i, snap) in snaps.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    env.peers.push(PeerSite {
                        name: format!("peer{i}"),
                        db: snap,
                        link: cm.peer_link(),
                    });
                }
            }
            let dp = cost_placed(&plan, &db, &cm, &env, &[]).local;
            let bf = brute_force_local(&plan, &db, &cm, &env, &[]);
            assert!(
                (dp - bf).abs() <= 1e-9 * dp.abs().max(1.0),
                "DP {dp} != brute force {bf} for `{sql}` with peer mask {mask:03b}"
            );
        },
    );
}

#[test]
fn adding_peers_never_raises_the_delivery_cost() {
    // Monotonicity: every peer only *adds* strategies to the assignment
    // space, so the optimal delivery cost is non-increasing in the peer
    // set — and never beats the degenerate all-sites-here lower bound.
    let (here, peers) = setup();
    let cm = CostModel::default();
    let db = here.db.read();
    let snaps: Vec<_> = peers.iter().map(|p| p.db.read()).collect();
    check::run(
        &Config::cases(120),
        "adding_peers_never_raises_the_delivery_cost",
        gen_query,
        |sql| {
            let Statement::Select(sel) = parse_statement(sql).unwrap() else {
                panic!("generator only emits SELECT");
            };
            let plan = bind_select(&sel, &db).unwrap();
            let mut env = PlacementEnv::two_site(&cm);
            let mut prev = cost_placed(&plan, &db, &cm, &env, &[]).local;
            for (i, snap) in snaps.iter().enumerate() {
                env.peers.push(PeerSite {
                    name: format!("peer{i}"),
                    db: snap,
                    link: cm.peer_link(),
                });
                let next = cost_placed(&plan, &db, &cm, &env, &[]).local;
                assert!(
                    next <= prev + 1e-9 * prev.abs().max(1.0),
                    "adding peer{i} raised the cost {prev} -> {next} for `{sql}`"
                );
                prev = next;
            }
        },
    );
}
