//! Build-hermeticity guard: the workspace must never depend on anything
//! outside this repository. The build environment has no registry access,
//! so a single `foo = "1.0"` line anywhere re-breaks the build the way the
//! original seed was broken. This test walks every manifest and fails if
//! any dependency is not a `path` dependency (directly or via
//! `workspace = true` indirection into `[workspace.dependencies]`, whose
//! entries are themselves checked).
//!
//! The parser is deliberately tiny — section headers plus `name = value`
//! lines — because the manifests are ours and simple. If a manifest grows
//! syntax this misreads, the right fix is to keep the manifest simple.

use std::fs;
use std::path::{Path, PathBuf};

/// All Cargo.toml manifests in the repo: the root and every crate.
fn manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).expect("crates/ directory");
    for entry in entries {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    assert!(out.len() >= 2, "expected root + crate manifests");
    out
}

/// Strips a trailing `# comment` (manifests here never put `#` in strings).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// True if this section name declares dependencies of some kind:
/// `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, `[target.'...'.dependencies]`, and the
/// table-per-dependency form `[dependencies.foo]`.
fn dependency_section(section: &str) -> Option<DepSection> {
    if let Some(dep) = section
        .rsplit_once('.')
        .and_then(|(head, tail)| head.ends_with("dependencies").then(|| tail.to_string()))
    {
        return Some(DepSection::SingleDependency(dep));
    }
    if section.ends_with("dependencies") {
        return Some(DepSection::List);
    }
    None
}

enum DepSection {
    /// `[*dependencies]`: each `name = value` line is one dependency.
    List,
    /// `[*dependencies.foo]`: the whole section describes one dependency.
    SingleDependency(String),
}

/// Is this dependency *value* hermetic? Either a local path or deferred to
/// the (also checked) workspace dependency table.
fn value_is_hermetic(value: &str) -> bool {
    value.contains("path") && value.contains('=') || value.contains("workspace")
}

#[test]
fn every_dependency_is_a_path_dependency() {
    let mut violations = Vec::new();
    for manifest in manifests() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut section = String::new();
        // For `[dependencies.foo]`-style sections: collected keys.
        let mut single: Option<(String, Vec<String>)> = None;
        let manifest_name = manifest.display().to_string();
        let flush_single =
            |single: &mut Option<(String, Vec<String>)>, violations: &mut Vec<String>| {
                if let Some((name, keys)) = single.take() {
                    let ok = keys.iter().any(|k| k == "path" || k == "workspace");
                    if !ok {
                        violations.push(format!("{manifest_name}: [..dependencies.{name}]"));
                    }
                }
            };
        for raw in text.lines() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                flush_single(&mut single, &mut violations);
                section = name.trim().to_string();
                if let Some(DepSection::SingleDependency(dep)) = dependency_section(&section) {
                    single = Some((dep, Vec::new()));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            match dependency_section(&section) {
                Some(DepSection::List) => {
                    // `foo = { path = ".." }`, `foo.workspace = true`,
                    // `foo = "1.0"` (violation).
                    let hermetic = key.ends_with(".workspace") || value_is_hermetic(value);
                    if !hermetic {
                        violations.push(format!(
                            "{}: [{}] {} = {}",
                            manifest.display(),
                            section,
                            key,
                            value
                        ));
                    }
                }
                Some(DepSection::SingleDependency(_)) => {
                    if let Some((_, keys)) = single.as_mut() {
                        keys.push(key.split('.').next().unwrap_or(key).to_string());
                    }
                }
                None => {}
            }
        }
        flush_single(&mut single, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "non-path dependencies found (the offline build would break):\n{}",
        violations.join("\n")
    );
}

#[test]
fn workspace_dependency_table_points_into_the_repo() {
    // Every `[workspace.dependencies]` entry must be `{ path = "crates/..." }`
    // and the path must exist.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(root.join("Cargo.toml")).unwrap();
    let mut in_table = false;
    let mut checked = 0;
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if !in_table || line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let path = value
            .split("path")
            .nth(1)
            .and_then(|rest| rest.split('"').nth(1))
            .unwrap_or_else(|| panic!("workspace dep `{}` has no path", name.trim()));
        assert!(
            root.join(path).join("Cargo.toml").is_file(),
            "workspace dep `{}` points at missing {path}",
            name.trim()
        );
        checked += 1;
    }
    assert!(checked > 0, "workspace dependency table not found");
}

#[test]
fn no_proptest_or_criterion_remain_anywhere() {
    // The replacements live in mtc-util; stray references to the removed
    // crates in manifests would mean a half-migrated target.
    for manifest in manifests() {
        let text = fs::read_to_string(&manifest).unwrap();
        // Comments may (and do) mention history; only live lines count.
        let live: String = text
            .lines()
            .map(strip_comment)
            .collect::<Vec<_>>()
            .join("\n");
        for banned in [
            "proptest", "criterion", "rand ", "rand=", "rand.", "parking_lot", "serde",
            "crossbeam", "bytes =",
        ] {
            assert!(
                !live.contains(banned),
                "{} still mentions `{banned}`",
                manifest.display()
            );
        }
    }
}
