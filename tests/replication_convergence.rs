//! Property-based replication convergence: after an arbitrary DML stream on
//! the backend and a quiesced replication pipeline, every cached view holds
//! exactly the select-project subset its definition prescribes.

use std::sync::Arc;

use mtc_util::check::{self, Config};
use mtc_util::rng::{Rng, StdRng};
use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::{FaultPlan, FaultSpec, ReplicationHub};
use mtcache_repro::types::Row;

/// One randomized DML action against the `stockx` table.
#[derive(Debug, Clone)]
enum Action {
    Insert { id: i64, qty: i64 },
    UpdateQty { id: i64, qty: i64 },
    /// Moves the row's id (exercises in/out-of-filter transitions).
    Rekey { id: i64, new_id: i64 },
    Delete { id: i64 },
}

fn gen_action(rng: &mut StdRng) -> Action {
    match rng.gen_range(0u32..4) {
        0 => Action::Insert {
            id: rng.gen_range(200i64..400),
            qty: rng.gen_range(0i64..100),
        },
        1 => Action::UpdateQty {
            id: rng.gen_range(0i64..400),
            qty: rng.gen_range(0i64..100),
        },
        2 => Action::Rekey {
            id: rng.gen_range(0i64..400),
            new_id: rng.gen_range(200i64..400),
        },
        _ => Action::Delete {
            id: rng.gen_range(0i64..400),
        },
    }
}

fn setup() -> (Arc<BackendServer>, Arc<CacheServer>, Arc<Mutex<ReplicationHub>>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script("CREATE TABLE stockx (s_id INT NOT NULL PRIMARY KEY, s_qty INT, s_note VARCHAR)")
        .unwrap();
    let rows: Vec<String> = (0..200)
        .map(|i| format!("INSERT INTO stockx VALUES ({i}, {}, 'n{i}')", i % 50))
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub.clone());
    // Filtered + projected view: only rows with s_id < 150, two columns.
    cache
        .create_cached_view("stock_head", "SELECT s_id, s_qty FROM stockx WHERE s_id < 150")
        .unwrap();
    (backend, cache, hub)
}

fn apply(backend: &BackendServer, action: &Action) {
    // Constraint violations (duplicate ids from random streams) are fine:
    // the transaction rolls back atomically and the stream continues.
    let sql = match action {
        Action::Insert { id, qty } => {
            format!("INSERT INTO stockx VALUES ({id}, {qty}, 'new')")
        }
        Action::UpdateQty { id, qty } => {
            format!("UPDATE stockx SET s_qty = {qty} WHERE s_id = {id}")
        }
        Action::Rekey { id, new_id } => {
            format!("UPDATE stockx SET s_id = {new_id} WHERE s_id = {id}")
        }
        Action::Delete { id } => format!("DELETE FROM stockx WHERE s_id = {id}"),
    };
    let _ = backend.execute(&sql, &Default::default(), "dbo");
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

#[test]
fn cached_view_converges_to_definition() {
    check::run(
        &Config::cases(16),
        "cached_view_converges_to_definition",
        |rng| check::vec_of(rng, 1..60, gen_action),
        |actions| {
            let (backend, cache, hub) = setup();
            for (i, a) in actions.iter().enumerate() {
                apply(&backend, a);
                // Pump mid-stream occasionally: convergence must not depend on
                // batch boundaries.
                if i % 7 == 3 {
                    hub.lock().pump(i as i64).unwrap();
                }
            }
            // Quiesce.
            hub.lock().pump(1_000_000).unwrap();
            hub.lock().pump(1_000_001).unwrap();

            // Ground truth: recompute the subset on the backend.
            let expected = Connection::connect(backend.clone())
                .query("SELECT s_id, s_qty FROM stockx WHERE s_id < 150")
                .unwrap();
            // The cached view's backing table, read directly.
            let cache_db = cache.db.read();
            let actual: Vec<Row> = cache_db
                .table_ref("stock_head")
                .unwrap()
                .scan()
                .cloned()
                .collect();
            assert_eq!(
                sorted(expected.rows),
                sorted(actual),
                "view diverged after {} actions",
                actions.len()
            );
        },
    );
}

/// Regression: every delivery is duplicated, so a naive (non-idempotent)
/// apply would double-insert and double-count. Convergence must be
/// unaffected and the duplicates must show up in the metrics.
#[test]
fn duplicate_deliveries_do_not_double_apply() {
    check::run(
        &Config::cases(16),
        "duplicate_deliveries_do_not_double_apply",
        |rng| check::vec_of(rng, 1..40, gen_action),
        |actions| {
            let (backend, cache, hub) = setup();
            hub.lock()
                .set_fault_plan(FaultPlan::new(0xD0B1_E5, FaultSpec::duplicate(1.0)));
            for (i, a) in actions.iter().enumerate() {
                apply(&backend, a);
                if i % 7 == 3 {
                    hub.lock().pump(i as i64).unwrap();
                }
            }
            // Duplicates never block progress; two pumps quiesce.
            hub.lock().pump(1_000_000).unwrap();
            hub.lock().pump(1_000_001).unwrap();

            let expected = Connection::connect(backend.clone())
                .query("SELECT s_id, s_qty FROM stockx WHERE s_id < 150")
                .unwrap();
            let cache_db = cache.db.read();
            let actual: Vec<Row> = cache_db
                .table_ref("stock_head")
                .unwrap()
                .scan()
                .cloned()
                .collect();
            assert_eq!(
                sorted(expected.rows),
                sorted(actual),
                "duplicated deliveries double-applied"
            );
            let h = hub.lock();
            if h.metrics.txns_applied.get() > 0 {
                assert!(
                    h.metrics.duplicates_delivered.get() > 0,
                    "dup_p = 1.0 but no duplicates recorded: {:?}",
                    h.metrics
                );
            }
        },
    );
}

/// A corrupted wire frame must surface as a decode error from `pump` — not
/// a panic and not silent progress — and the pipeline must recover once the
/// corruption stops, redelivering from the last applied LSN.
#[test]
fn corrupt_frame_surfaces_decode_error_then_recovers() {
    let (backend, cache, hub) = setup();
    hub.lock()
        .set_fault_plan(FaultPlan::new(7, FaultSpec::corrupt(1.0)));
    backend
        .run_script("UPDATE stockx SET s_qty = 999 WHERE s_id = 10")
        .unwrap();

    let err = hub.lock().pump(10).unwrap_err();
    assert_eq!(err.kind(), "encoding", "decode failure surfaced: {err}");

    // Stop corrupting: the frame redelivers cleanly from the same LSN.
    let plan = hub.lock().clear_fault_plan().expect("plan was installed");
    assert!(plan.counts.corruptions >= 1, "{:?}", plan.counts);
    hub.lock().pump(20).unwrap();

    let expected = Connection::connect(backend.clone())
        .query("SELECT s_id, s_qty FROM stockx WHERE s_id < 150")
        .unwrap();
    let cache_db = cache.db.read();
    let actual: Vec<Row> = cache_db
        .table_ref("stock_head")
        .unwrap()
        .scan()
        .cloned()
        .collect();
    assert_eq!(sorted(expected.rows), sorted(actual));
    let h = hub.lock();
    assert!(h.metrics.corrupt_frames.get() >= 1, "{:?}", h.metrics);
    assert!(h.metrics.redeliveries.get() >= 1, "{:?}", h.metrics);
    assert!(h.drained());
}

#[test]
fn log_reader_off_then_on_catches_up() {
    check::run(
        &Config::cases(16),
        "log_reader_off_then_on_catches_up",
        |rng| check::vec_of(rng, 1..30, gen_action),
        |actions| {
            let (backend, cache, hub) = setup();
            hub.lock().log_reader_enabled = false;
            for a in actions {
                apply(&backend, a);
            }
            hub.lock().pump(1).unwrap();
            // Nothing moved while the reader was off...
            hub.lock().log_reader_enabled = true;
            hub.lock().pump(2).unwrap();

            let expected = Connection::connect(backend.clone())
                .query("SELECT s_id, s_qty FROM stockx WHERE s_id < 150")
                .unwrap();
            let cache_db = cache.db.read();
            let actual: Vec<Row> = cache_db
                .table_ref("stock_head")
                .unwrap()
                .scan()
                .cloned()
                .collect();
            assert_eq!(sorted(expected.rows), sorted(actual));
        },
    );
}
