//! Smoke guard for the result-cache experiment (DESIGN.md §10).
//!
//! Two layers, in the spirit of `tests/hotpath_smoke.rs`: a live mini-run
//! of `run_resultcache` pinning the experiment's structural invariants
//! (identical seeded streams, round trips eliminated, zero equivalence
//! failures), and a validation of the committed `BENCH_resultcache.json`
//! artifact so a stale or regressed report fails the build rather than
//! going unnoticed. The committed floors are the ISSUE's acceptance
//! targets: ≥ 60% of Browsing round trips eliminated, ≥ 40% warm hit
//! rate, zero equivalence failures.

use mtc_bench::run_resultcache;

#[test]
fn resultcache_mini_run_invariants() {
    let r = run_resultcache(160, 7);
    assert_eq!(r.workloads.len(), 2);
    for w in &r.workloads {
        assert_eq!(w.baseline.errors, 0, "{}: baseline stream must run clean", w.workload);
        assert_eq!(w.cached.errors, 0, "{}: cached stream must run clean", w.workload);
        assert_eq!(
            w.baseline.interactions, w.cached.interactions,
            "{}: the two phases replay one identical seeded stream",
            w.workload
        );
        assert_eq!(
            w.baseline.remote_calls, w.cached.remote_calls,
            "{}: the cache changes where answers come from, not how many \
             remote statements the plans consume",
            w.workload
        );
        assert!(
            w.cached.remote_rtts < w.baseline.remote_rtts,
            "{}: the cache must eliminate wire round trips ({} vs {})",
            w.workload,
            w.cached.remote_rtts,
            w.baseline.remote_rtts
        );
        assert_eq!(
            w.equivalence_failures, 0,
            "{}: cache-on must answer exactly what cache-off answers",
            w.workload
        );
        assert!(w.equivalence_checked > 0);
        assert!(w.cached.p50_ms <= w.baseline.p50_ms + 1e-9, "{}", w.workload);
    }
}

/// Pulls the `n`-th numeric occurrence of `key` out of the hand-rolled
/// JSON report (0-based).
fn field_at(json: &str, key: &str, n: usize) -> f64 {
    let pat = format!("\"{key}\":");
    let mut from = 0usize;
    for _ in 0..n {
        let at = json[from..]
            .find(&pat)
            .unwrap_or_else(|| panic!("BENCH_resultcache.json lacks occurrence {n} of `{key}`"));
        from += at + pat.len();
    }
    let at = json[from..]
        .find(&pat)
        .unwrap_or_else(|| panic!("BENCH_resultcache.json missing `{key}`"));
    let rest = &json[from + at + pat.len()..];
    let end = rest
        .find([',', '\n', '}'])
        .unwrap_or_else(|| panic!("unterminated `{key}`"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` is not numeric: {e}"))
}

fn count_of(json: &str, key: &str) -> usize {
    let pat = format!("\"{key}\":");
    json.match_indices(&pat).count()
}

#[test]
fn committed_bench_report_meets_floors() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_resultcache.json");
    let json = std::fs::read_to_string(path).expect(
        "BENCH_resultcache.json missing — regenerate with \
         `cargo run --release -p mtc-bench --bin exp_resultcache`",
    );
    assert!(json.contains("\"experiment\": \"resultcache\""));
    assert!(json.contains("\"workload\": \"Browsing\""));
    assert!(json.contains("\"workload\": \"Shopping\""));
    assert!(json.contains("\"budget_sweep\""));
    assert!(
        field_at(&json, "interactions_per_phase", 0) >= 1_000.0,
        "the committed artifact must come from a full-size run"
    );
    // Workloads are emitted Browsing first: occurrence 0 of the per-workload
    // fields is the Browsing point the ISSUE targets.
    assert!(
        field_at(&json, "rtt_reduction", 0) >= 0.60,
        "committed report must show >= 60% of Browsing round trips eliminated"
    );
    assert!(
        field_at(&json, "warm_hit_rate", 0) >= 0.40,
        "committed report must show >= 40% warm hit rate on Browsing"
    );
    // Zero equivalence failures, in every workload.
    let failures = count_of(&json, "failures");
    assert!(failures >= 2, "a failures field per workload");
    for i in 0..failures {
        assert_eq!(
            field_at(&json, "failures", i),
            0.0,
            "committed report must show zero equivalence failures"
        );
    }
    // Sanity: cached round trips below baseline on both workloads.
    for w in 0..2 {
        let base = field_at(&json, "remote_rtts", w * 2);
        let cached = field_at(&json, "remote_rtts", w * 2 + 1);
        assert!(
            cached < base,
            "workload {w}: cached rtts {cached} must be below baseline {base}"
        );
    }
}
