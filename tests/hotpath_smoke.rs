//! Smoke guard for the hot-path experiment (DESIGN.md §8.4).
//!
//! Two layers, in the spirit of `tests/hermetic.rs`: a live mini-run of the
//! measurement pinning the counter-level invariants (warm stream is
//! hit-only, the plan cache speeds it up, streaming never clones more than
//! the seed interpreter), and a validation of the committed
//! `BENCH_hotpath.json` artifact so a stale or regressed report fails the
//! build rather than going unnoticed.

use mtc_bench::run_hotpath;

#[test]
fn hotpath_mini_run_invariants() {
    let r = run_hotpath(900, 60);
    assert_eq!(r.misses, 0, "warm stream must be hit-only, got {r:?}");
    assert_eq!(r.hits, 60, "every warm statement must hit, got {r:?}");
    assert_eq!(r.invalidations, 0, "nothing changed the catalog mid-stream");
    assert!(
        r.plan_cache_speedup > 1.0,
        "plan-cache hits must beat re-optimizing every statement, got {:.2}x",
        r.plan_cache_speedup
    );
    assert!(
        r.rows_cloned_streaming <= r.rows_cloned_materialized,
        "streaming cloned more rows than the seed interpreter ({} > {})",
        r.rows_cloned_streaming,
        r.rows_cloned_materialized
    );
    assert!(r.rows_cloned_materialized > 0, "instrumentation must observe clones");
}

/// Pulls a numeric field out of the hand-rolled JSON report.
fn field(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("BENCH_hotpath.json missing `{key}`"));
    let rest = &json[at + pat.len()..];
    let end = rest
        .find([',', '\n', '}'])
        .unwrap_or_else(|| panic!("unterminated `{key}`"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` is not numeric: {e}"))
}

#[test]
fn committed_bench_report_meets_floors() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_hotpath.json");
    let json = std::fs::read_to_string(path).expect(
        "BENCH_hotpath.json missing — regenerate with \
         `cargo run --release -p mtc-bench --bin exp_hotpath`",
    );
    assert!(json.contains("\"experiment\": \"hotpath\""));
    assert!(
        field(&json, "plan_cache_speedup") >= 2.0,
        "committed report must show >= 2x warm plan-cache throughput"
    );
    assert!(
        field(&json, "executor_speedup") > 1.0,
        "committed report must show a streaming-executor speedup"
    );
    assert!(
        field(&json, "rows_cloned_streaming") <= field(&json, "rows_cloned_materialized"),
        "committed report must show the row-clone reduction"
    );
    assert_eq!(field(&json, "misses"), 0.0, "warm stream in the report must be hit-only");
}
