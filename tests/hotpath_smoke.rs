//! Smoke guard for the hot-path experiment (DESIGN.md §8.4).
//!
//! Two layers, in the spirit of `tests/hermetic.rs`: a live mini-run of the
//! measurement pinning the counter-level invariants (warm stream is
//! hit-only, the plan cache speeds it up, streaming never clones more than
//! the seed interpreter), and a validation of the committed
//! `BENCH_hotpath.json` artifact so a stale or regressed report fails the
//! build rather than going unnoticed.

use mtc_bench::run_hotpath;
use mtc_types::{row, Row, RowBatch};

/// Committed streaming latency for the full-size run (µs per warm suite
/// execution, from `BENCH_hotpath.json`). The tier-2 release gate
/// ([`full_size_run_meets_streaming_floor`]) and the committed-report
/// check both fail on a >20% regression against this floor. Regenerate
/// with `cargo run --release -p mtc-bench --bin exp_hotpath` and update
/// the constant when the executor legitimately changes speed.
const STREAMING_US_FLOOR: f64 = 428.0;

#[test]
fn hotpath_mini_run_invariants() {
    let r = run_hotpath(900, 60);
    assert_eq!(r.misses, 0, "warm stream must be hit-only, got {r:?}");
    assert_eq!(r.hits, 60, "every warm statement must hit, got {r:?}");
    assert_eq!(r.invalidations, 0, "nothing changed the catalog mid-stream");
    assert!(
        r.plan_cache_speedup > 1.0,
        "plan-cache hits must beat re-optimizing every statement, got {:.2}x",
        r.plan_cache_speedup
    );
    assert_eq!(
        r.rows_cloned_streaming, 0,
        "zero-copy contract: the streaming executor must not clone rows on \
         the read-only suite"
    );
    assert!(r.rows_cloned_materialized > 0, "instrumentation must observe clones");
}

/// Micro-pins for the zero-copy fast paths the hot path leans on:
/// `TOP n` narrows a batch by sharing its columns, and `Row::join` with an
/// empty side allocates exactly once at the surviving side's width.
#[test]
fn narrowing_and_join_fast_paths_are_zero_copy() {
    let batch = RowBatch::from_rows(
        vec![row![1, "a"], row![2, "b"], row![3, "c"]],
        2,
    );
    let top = batch.clone().take_first(2);
    assert_eq!(top.len(), 2);
    for c in 0..batch.width() {
        assert!(
            std::sync::Arc::ptr_eq(&batch.col_arc(c), &top.col_arc(c)),
            "take_first must share column {c}, not copy it"
        );
    }

    let left = Row::new(vec![]);
    let right = row![7, "x"];
    let joined = left.join(&right);
    assert_eq!(joined, right, "empty-left join returns the right side");
    assert_eq!(
        joined.0.capacity(),
        joined.len(),
        "empty-side join must allocate capacity-exact"
    );
}

/// Tier-2 release gate (ignored under plain `cargo test`; `scripts/verify.sh`
/// runs it with `--release --ignored`): the full-size hot-path run must stay
/// within 20% of the committed streaming floor. Debug builds are an order of
/// magnitude slower, so this only means anything under `--release`.
#[test]
#[ignore = "perf gate; run in release via scripts/verify.sh"]
fn full_size_run_meets_streaming_floor() {
    let r = run_hotpath(9000, 2000);
    assert!(
        r.streaming_us <= STREAMING_US_FLOOR * 1.2,
        "streaming hot path regressed >20%: {:.1} us vs {:.1} us floor",
        r.streaming_us,
        STREAMING_US_FLOOR
    );
    assert_eq!(r.rows_cloned_streaming, 0, "zero-copy contract broken: {r:?}");
}

/// Pulls a numeric field out of the hand-rolled JSON report.
fn field(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("BENCH_hotpath.json missing `{key}`"));
    let rest = &json[at + pat.len()..];
    let end = rest
        .find([',', '\n', '}'])
        .unwrap_or_else(|| panic!("unterminated `{key}`"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` is not numeric: {e}"))
}

#[test]
fn committed_bench_report_meets_floors() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_hotpath.json");
    let json = std::fs::read_to_string(path).expect(
        "BENCH_hotpath.json missing — regenerate with \
         `cargo run --release -p mtc-bench --bin exp_hotpath`",
    );
    assert!(json.contains("\"experiment\": \"hotpath\""));
    assert!(
        field(&json, "plan_cache_speedup") >= 2.0,
        "committed report must show >= 2x warm plan-cache throughput"
    );
    assert!(
        field(&json, "executor_speedup") > 1.0,
        "committed report must show a streaming-executor speedup"
    );
    assert_eq!(
        field(&json, "rows_cloned_streaming"),
        0.0,
        "committed report must show zero streaming clones"
    );
    assert!(
        field(&json, "streaming_us_per_query") <= STREAMING_US_FLOOR * 1.2,
        "committed report regressed >20% vs the streaming floor"
    );
    assert_eq!(field(&json, "misses"), 0.0, "warm stream in the report must be hit-only");
}
