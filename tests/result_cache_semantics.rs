//! End-to-end semantics of the currency-aware remote result cache
//! (`mtcache::result_cache`): hit/miss accounting, synchronous DML
//! invalidation, invalidation through the fault-injected replication
//! stream, catalog-version safety, currency (freshness-bound) rejects,
//! LRU eviction under a byte budget, and single-flight round-trip
//! coalescing — all observed through the public server API, the way an
//! application (or the EXPLAIN output) sees them.

use std::sync::{Arc, Barrier};

use mtc_util::sync::Mutex;

use mtcache_repro::cache::result_cache::FlightRole;
use mtcache_repro::cache::{
    BackendServer, CacheServer, ResultCache, ResultCacheConfig,
};
use mtcache_repro::replication::{Clock, FaultPlan, FaultSpec, ManualClock, ReplicationHub};
use mtcache_repro::types::Value;

#[allow(clippy::type_complexity)]
fn setup() -> (
    Arc<BackendServer>,
    Arc<CacheServer>,
    Arc<Mutex<ReplicationHub>>,
    ManualClock,
) {
    let clock = ManualClock::new(0);
    let backend = BackendServer::with_clock("backend", Arc::new(clock.clone()));
    backend
        .run_script(
            "CREATE TABLE customer (cid INT NOT NULL PRIMARY KEY, cname VARCHAR);
             CREATE TABLE noise (nid INT NOT NULL PRIMARY KEY, nval VARCHAR)",
        )
        .unwrap();
    let mut rows: Vec<String> = (1..=300)
        .map(|i| format!("INSERT INTO customer VALUES ({i}, 'c{i}')"))
        .collect();
    rows.extend((1..=20).map(|i| format!("INSERT INTO noise VALUES ({i}, 'n{i}')")));
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub.clone());
    (backend, cache, hub, clock)
}

const Q: &str = "SELECT cname FROM customer WHERE cid = 7";

#[test]
fn repeated_remote_query_hits_and_explain_shows_the_routing() {
    let (backend, cache, _hub, _clock) = setup();

    // Cold: EXPLAIN predicts a paid fetch.
    let plan = cache.explain(Q).unwrap();
    assert!(
        plan.contains("remote(fetched)"),
        "cold explain must route remote(fetched):\n{plan}"
    );
    assert!(plan.contains("result cache:"), "summary line:\n{plan}");

    let r1 = cache.execute(Q, &Default::default(), "dbo").unwrap();
    assert_eq!(r1.rows[0][0], Value::str("c7"));
    assert_eq!(r1.metrics.remote_calls, 1);
    assert_eq!(r1.metrics.remote_rtts, 1, "cold read pays the round trip");

    // Warm: same rows, one logical remote statement, zero wire exchanges.
    let backend_before = backend.stats.queries.get();
    let r2 = cache.execute(Q, &Default::default(), "dbo").unwrap();
    assert_eq!(r2.rows, r1.rows, "cache-served rows must be identical");
    assert_eq!(r2.metrics.remote_calls, 1, "still one remote statement consumed");
    assert_eq!(r2.metrics.remote_rtts, 0, "served from mid-tier memory");
    assert_eq!(
        backend.stats.queries.get(),
        backend_before,
        "the backend must not see the warm read"
    );
    let s = cache.result_cache.stats();
    assert_eq!(s.hits, 1);
    assert_eq!(s.inserts, 1);

    // Warm EXPLAIN flips the routing line.
    let plan = cache.explain(Q).unwrap();
    assert!(
        plan.contains("remote(cached)"),
        "warm explain must route remote(cached):\n{plan}"
    );
}

#[test]
fn cached_result_respects_catalog_version() {
    let (_backend, cache, _hub, _clock) = setup();

    let r1 = cache.execute(Q, &Default::default(), "dbo").unwrap();
    assert_eq!(r1.metrics.remote_rtts, 1);
    let r2 = cache.execute(Q, &Default::default(), "dbo").unwrap();
    assert_eq!(r2.metrics.remote_rtts, 0, "warm before the DDL");

    // DDL on the cache server (a new cached view over an unrelated table)
    // bumps the shadow catalog version. Entries stamped with the old
    // version must not be served — plans can change meaning under a new
    // catalog even when the rows they once produced still look plausible.
    cache
        .create_cached_view("noise_v", "SELECT nid, nval FROM noise")
        .unwrap();
    let before = cache.result_cache.stats();
    let r3 = cache.execute(Q, &Default::default(), "dbo").unwrap();
    assert_eq!(
        r3.metrics.remote_rtts, 1,
        "stale-catalog entry must be dropped and refetched"
    );
    assert_eq!(r3.rows, r1.rows);
    let after = cache.result_cache.stats();
    assert_eq!(
        after.invalidations,
        before.invalidations + 1,
        "the version mismatch is counted as an invalidation"
    );

    // And the refreshed entry (new version stamp) serves again.
    let r4 = cache.execute(Q, &Default::default(), "dbo").unwrap();
    assert_eq!(r4.metrics.remote_rtts, 0);
}

#[test]
fn dml_through_the_cache_invalidates_synchronously() {
    let (_backend, cache, _hub, _clock) = setup();

    let r1 = cache.execute(Q, &Default::default(), "dbo").unwrap();
    assert_eq!(r1.rows[0][0], Value::str("c7"));
    assert_eq!(cache.execute(Q, &Default::default(), "dbo").unwrap().metrics.remote_rtts, 0);

    // Forwarded DML raises the invalidation watermark before it returns:
    // the very next read must see the write — no replication pump needed.
    cache
        .execute(
            "UPDATE customer SET cname = 'renamed' WHERE cid = 7",
            &Default::default(),
            "dbo",
        )
        .unwrap();
    let r = cache.execute(Q, &Default::default(), "dbo").unwrap();
    assert_eq!(
        r.rows[0][0],
        Value::str("renamed"),
        "read-your-own-writes through the result cache"
    );
    assert_eq!(r.metrics.remote_rtts, 1, "the stale entry was not served");
    assert!(cache.result_cache.stats().invalidations >= 1);
}

#[test]
fn replicated_writes_invalidate_through_the_faulted_stream() {
    // The pinned interleaving: backend DML, fault-injected replication
    // pumping, and cached reads, all overlapping. Served values must be
    // monotone in write order while deliveries are in flight, and after the
    // stream drains the cache must not serve anything stale.
    let (backend, cache, hub, clock) = setup();
    // A cached view gives this server a replication subscription — the
    // delivery stream that doubles as the invalidation stream. Its guard
    // excludes cid 250, so the probe query itself still ships remote.
    cache
        .create_cached_view("cust_v", "SELECT cid, cname FROM customer WHERE cid <= 200")
        .unwrap();
    hub.lock().set_fault_plan(FaultPlan::new(
        99,
        FaultSpec {
            drop_p: 0.20,
            duplicate_p: 0.10,
            crash_every: 7,
            ..FaultSpec::NONE
        },
    ));

    let q = "SELECT cname FROM customer WHERE cid = 250";
    let gen_of = |v: &Value| -> i64 {
        let Value::Str(s) = v else { panic!("string cname, got {v:?}") };
        s.trim_start_matches('g').parse().unwrap_or(-1)
    };
    let mut last_seen = -1i64;
    for round in 0..20i64 {
        backend
            .run_script(&format!(
                "UPDATE customer SET cname = 'g{round}' WHERE cid = 250"
            ))
            .unwrap();
        // Partial, faulted pumping: drops, duplicates and injected crashes
        // (pump errors) interleave with the reads below.
        for _ in 0..3 {
            clock.advance(5);
            let _ = hub.lock().pump(clock.now_ms());
        }
        let r = cache.execute(q, &Default::default(), "dbo").unwrap();
        let seen = gen_of(&r.rows[0][0]);
        assert!(
            seen >= last_seen,
            "served values must be monotone in write order: g{seen} after g{last_seen}"
        );
        last_seen = seen;
    }

    // Drain every faulted delivery, then the cache must answer fresh.
    for _ in 0..100_000 {
        clock.advance(50);
        let mut h = hub.lock();
        let _ = h.pump(clock.now_ms());
        if h.drained() {
            break;
        }
    }
    assert!(hub.lock().drained(), "replication stream must drain");
    let r = cache.execute(q, &Default::default(), "dbo").unwrap();
    assert_eq!(
        r.rows[0][0],
        Value::str("g19"),
        "post-drain reads must reflect every replicated write"
    );
    assert!(
        cache.result_cache.stats().invalidations >= 1,
        "the replication stream must have invalidated at least one entry"
    );
}

#[test]
fn currency_bound_rejects_aged_entries() {
    let (_backend, cache, _hub, clock) = setup();
    let bounded = "SELECT cname FROM customer WHERE cid = 10 WITH FRESHNESS 5 SECONDS";
    let unbounded = "SELECT cname FROM customer WHERE cid = 10";

    // Prime via the unbounded statement (the freshness clause is stripped
    // from shipped SQL, so both statements share one cache entry).
    assert_eq!(
        cache
            .execute(unbounded, &Default::default(), "dbo")
            .unwrap()
            .metrics
            .remote_rtts,
        1
    );
    clock.advance(10_000); // entry is now 10 s old

    // Too old for a 5-second bound: rejected, refetched.
    let r = cache.execute(bounded, &Default::default(), "dbo").unwrap();
    assert_eq!(r.metrics.remote_rtts, 1, "aged entry must not satisfy the bound");
    assert_eq!(cache.result_cache.stats().currency_rejects, 1);

    // The refetch refreshed the entry: the same bound now hits.
    let r = cache.execute(bounded, &Default::default(), "dbo").unwrap();
    assert_eq!(r.metrics.remote_rtts, 0, "refreshed entry satisfies the bound");

    // Unbounded statements are never rejected on age.
    let r = cache.execute(unbounded, &Default::default(), "dbo").unwrap();
    assert_eq!(r.metrics.remote_rtts, 0);
}

#[test]
fn byte_budget_evicts_lru_entries() {
    let clock = ManualClock::new(0);
    let backend = BackendServer::with_clock("backend", Arc::new(clock.clone()));
    backend
        .run_script("CREATE TABLE t (id INT NOT NULL PRIMARY KEY, val FLOAT)")
        .unwrap();
    let rows: Vec<String> = (1..=400)
        .map(|i| format!("INSERT INTO t VALUES ({i}, {i}.5)"))
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    const BUDGET: u64 = 8 * 1024;
    let cache = CacheServer::create_with_result_cache(
        "cache",
        backend,
        hub,
        ResultCache::new(ResultCacheConfig::with_budget(BUDGET)),
    );

    // Point lookups: 60 distinct keys with identical (small) result sizes,
    // so every candidate passes the per-entry cap and eviction order is
    // purely LRU.
    for i in 1..=60 {
        cache
            .execute(
                &format!("SELECT val FROM t WHERE id = {i}"),
                &Default::default(),
                "dbo",
            )
            .unwrap();
    }
    let s = cache.result_cache.stats();
    assert!(s.evictions > 0, "60 distinct results must overflow 8 KiB: {s:?}");
    assert!(s.bytes <= BUDGET, "resident bytes respect the budget: {s:?}");
    assert_eq!(s.admission_rejects, 0, "uniform entries all pass admission: {s:?}");

    // LRU: the most recent probe is resident, the oldest was evicted.
    let r = cache
        .execute("SELECT val FROM t WHERE id = 60", &Default::default(), "dbo")
        .unwrap();
    assert_eq!(r.metrics.remote_rtts, 0, "most recent entry must be resident");
    let r = cache
        .execute("SELECT val FROM t WHERE id = 1", &Default::default(), "dbo")
        .unwrap();
    assert_eq!(r.metrics.remote_rtts, 1, "oldest entry must have been evicted");
}

#[test]
fn single_flight_has_one_leader_and_publishing_followers() {
    // Deterministic at the API level: while a leader's flight is open,
    // every other caller for the same key must become a follower and
    // receive the leader's published result.
    let cache = Arc::new(ResultCache::default());
    let FlightRole::Leader(flight) = cache.begin_flight("SELECT 1", "") else {
        panic!("first caller must lead the flight");
    };
    let (joined_tx, joined_rx) = std::sync::mpsc::channel();
    let follower = {
        let cache = cache.clone();
        std::thread::spawn(move || {
            let role = cache.begin_flight("SELECT 1", "");
            joined_tx.send(()).unwrap();
            match role {
                FlightRole::Follower(f) => f.wait().unwrap().rows.len(),
                FlightRole::Leader(_) => panic!("second concurrent caller must follow"),
            }
        })
    };
    // Only publish once the second caller has actually joined the flight.
    joined_rx.recv().unwrap();
    // Publish a three-row result; the follower must observe exactly it.
    let result = mtcache_repro::engine::QueryResult {
        schema: mtcache_repro::types::Schema::new(vec![mtcache_repro::types::Column::not_null(
            "x",
            mtcache_repro::types::DataType::Int,
        )]),
        rows: (0..3)
            .map(|i| mtcache_repro::types::Row::new(vec![Value::Int(i)]))
            .collect(),
        metrics: Default::default(),
    };
    cache.finish_flight("SELECT 1", "", &flight, Ok(result));
    assert_eq!(follower.join().unwrap(), 3);
    assert_eq!(cache.stats().single_flight_waits, 1);
}

#[test]
fn concurrent_identical_queries_partition_into_hits_followers_and_leaders() {
    let (_backend, cache, _hub, _clock) = setup();
    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = cache.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                cache.execute(Q, &Default::default(), "dbo").unwrap().rows
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for rows in &results {
        assert_eq!(rows, &results[0], "every thread sees identical rows");
    }
    // Exactly one terminal state per thread: cache hit, single-flight
    // follower, or leader (a leader is precisely a paid round trip).
    let st = cache.stats.snapshot();
    let rc = cache.result_cache.stats();
    assert_eq!(st.remote_calls, THREADS as u64, "one logical call per thread");
    assert!(st.remote_rtts >= 1, "someone had to fetch");
    assert_eq!(
        rc.hits + rc.single_flight_waits + st.remote_rtts,
        THREADS as u64,
        "hits + followers + leaders must cover all threads: {rc:?} {st:?}"
    );
}

#[test]
fn runtime_budget_resize_shrinks_evicts_and_grows_lazily() {
    let clock = ManualClock::new(0);
    let backend = BackendServer::with_clock("backend", Arc::new(clock.clone()));
    backend
        .run_script("CREATE TABLE t (id INT NOT NULL PRIMARY KEY, val FLOAT)")
        .unwrap();
    let rows: Vec<String> = (1..=400)
        .map(|i| format!("INSERT INTO t VALUES ({i}, {i}.5)"))
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    const BUDGET: u64 = 64 * 1024;
    let cache = CacheServer::create_with_result_cache(
        "cache",
        backend,
        hub,
        ResultCache::new(ResultCacheConfig::with_budget(BUDGET)),
    );
    assert_eq!(cache.result_cache.budget(), BUDGET);

    // Fill: 30 uniform point results fit comfortably in 64 KiB.
    for i in 1..=30 {
        cache
            .execute(
                &format!("SELECT val FROM t WHERE id = {i}"),
                &Default::default(),
                "dbo",
            )
            .unwrap();
    }
    let before = cache.result_cache.stats();
    assert_eq!(before.inserts, 30);
    assert_eq!(before.evictions, 0, "{before:?}");

    // Shrink at runtime: the advisor's resize hook evicts from the cold
    // end until resident bytes fit, WITHOUT flushing counters or entries
    // that still fit.
    const SMALL: u64 = 4 * 1024;
    cache.result_cache.set_budget(SMALL);
    assert_eq!(cache.result_cache.budget(), SMALL);
    let s = cache.result_cache.stats();
    assert!(s.bytes <= SMALL, "resident bytes fit the new budget: {s:?}");
    assert!(s.evictions > 0, "shrinking must evict: {s:?}");
    assert!(s.entries > 0, "the hot end survives the shrink: {s:?}");
    assert_eq!(s.inserts, before.inserts, "counters survive the resize: {s:?}");

    // Coldest-first: the most recent key is still resident, the oldest is
    // not.
    let r = cache
        .execute("SELECT val FROM t WHERE id = 30", &Default::default(), "dbo")
        .unwrap();
    assert_eq!(r.metrics.remote_rtts, 0, "hottest entry survives the shrink");
    let r = cache
        .execute("SELECT val FROM t WHERE id = 1", &Default::default(), "dbo")
        .unwrap();
    assert_eq!(r.metrics.remote_rtts, 1, "coldest entry was evicted");

    // Grow back: takes effect lazily — no eviction churn, and the cache
    // re-admits a working set larger than the small budget allowed.
    let evictions_at_small = cache.result_cache.stats().evictions;
    cache.result_cache.set_budget(BUDGET);
    assert_eq!(cache.result_cache.budget(), BUDGET);
    for i in 100..=140 {
        cache
            .execute(
                &format!("SELECT val FROM t WHERE id = {i}"),
                &Default::default(),
                "dbo",
            )
            .unwrap();
    }
    let s = cache.result_cache.stats();
    assert_eq!(
        s.evictions, evictions_at_small,
        "growing must not evict anything: {s:?}"
    );
    let r = cache
        .execute("SELECT val FROM t WHERE id = 100", &Default::default(), "dbo")
        .unwrap();
    assert_eq!(r.metrics.remote_rtts, 0, "the grown cache holds the new set");
}
