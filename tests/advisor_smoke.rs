//! Smoke guard for the adaptive-advisor experiment (DESIGN.md §14).
//!
//! Same two-layer shape as `tests/fleet_smoke.rs`: a live mini-run of
//! `run_advisor` pinning the experiment's structural invariants (clean
//! streams, the advisor actually creates views and supporting indexes at
//! runtime, adaptation beats the frozen static configuration post-shift,
//! the fragment memo hits, zero equivalence failures), and a validation of
//! the committed `BENCH_advisor.json` artifact so a stale or regressed
//! report fails the build. The committed floors are the ISSUE's acceptance
//! targets: post-shift adaptive ≥ 1.3× better than static (backend RTTs or
//! p50), fragment hits > 0, zero equivalence failures.

use mtc_bench::run_advisor;

#[test]
fn advisor_mini_run_invariants() {
    let r = run_advisor(150, 11);
    assert_eq!(r.static_run.phases.len(), 2, "browse-items + account-shift");
    assert_eq!(r.adaptive_run.phases.len(), 2);
    for run in [&r.static_run, &r.adaptive_run] {
        for p in &run.phases {
            assert_eq!(p.errors, 0, "{}/{} must run clean", run.config, p.phase);
            assert_eq!(p.interactions, 150, "{}/{}", run.config, p.phase);
        }
    }
    // The static config never changes; the advisor demonstrably acts.
    assert!(r.static_run.advisor.is_none());
    let a = r.adaptive_run.advisor.expect("advisor attached");
    assert!(a.epochs >= 4, "ticks every 50 of 300 interactions: {a:?}");
    assert!(a.views_created >= 1, "{a:?}");
    assert!(a.indexes_created >= 1, "supporting index for c_uname: {a:?}");
    assert!(
        r.adaptive_run.views_end.len() > r.static_run.views_end.len(),
        "runtime-created views outlive the stream: {:?} vs {:?}",
        r.adaptive_run.views_end,
        r.static_run.views_end
    );
    // Post-shift, adaptation must clear the ISSUE floor even in a mini-run.
    assert!(
        r.post_shift_rtt_ratio >= 1.3 || r.post_shift_p50_ratio >= 1.3,
        "adaptive must beat static >=1.3x post-shift: rtts {:.2}x, p50 {:.2}x",
        r.post_shift_rtt_ratio,
        r.post_shift_p50_ratio
    );
    // Intermediate-result caching is live: probes and hits both nonzero.
    assert!(r.fragment_probes > 0, "fragment memo never probed");
    assert!(r.fragment_hits > 0, "fragment memo never hit");
    // Transparency: caches on vs off is bit-identical after drain.
    assert!(r.equivalence_checked > 0);
    assert_eq!(r.equivalence_failures, 0);
    // The decision log narrates the adaptation.
    assert!(
        r.advisor_log.iter().any(|l| l.starts_with("advisor: create ")),
        "{:?}",
        r.advisor_log
    );
}

fn field_at(json: &str, key: &str, n: usize) -> f64 {
    let pat = format!("\"{key}\":");
    let mut from = 0;
    for _ in 0..n {
        let at = json[from..]
            .find(&pat)
            .unwrap_or_else(|| panic!("BENCH_advisor.json lacks occurrence {n} of `{key}`"));
        from += at + pat.len();
    }
    let at = json[from..]
        .find(&pat)
        .unwrap_or_else(|| panic!("BENCH_advisor.json missing `{key}`"));
    let rest = &json[from + at + pat.len()..];
    let end = rest
        .find([',', '\n', '}'])
        .unwrap_or_else(|| panic!("unterminated `{key}`"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` is not numeric: {e}"))
}

#[test]
fn committed_advisor_report_meets_floors() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_advisor.json");
    let json = std::fs::read_to_string(path).expect(
        "BENCH_advisor.json missing — regenerate with \
         `cargo run --release -p mtc-bench --bin exp_advisor`",
    );
    assert!(json.contains("\"experiment\": \"advisor\""));
    assert!(json.contains("\"config\": \"static\""));
    assert!(json.contains("\"config\": \"adaptive\""));
    assert!(json.contains("\"phase\": \"browse-items\""));
    assert!(json.contains("\"phase\": \"account-shift\""));
    assert!(
        field_at(&json, "interactions_per_phase", 0) >= 1_000.0,
        "the committed artifact must come from a full-size run"
    );
    // The tentpole floor: post-shift, adaptive >= 1.3x better than the
    // frozen static configuration on backend RTTs or modeled p50.
    let rtt_ratio = field_at(&json, "rtt_ratio", 0);
    let p50_ratio = field_at(&json, "p50_ratio", 0);
    assert!(
        rtt_ratio >= 1.3 || p50_ratio >= 1.3,
        "committed post-shift ratios below the 1.3x floor: \
         rtts {rtt_ratio:.2}x, p50 {p50_ratio:.2}x"
    );
    // Intermediate-result caching contributed: fragment hits > 0 (the
    // summary block's "hits" key; per-phase counters are `fragment_hits`).
    assert!(field_at(&json, "hits", 0) > 0.0, "no fragment hits on record");
    // The advisor acted at runtime: views and supporting indexes created.
    assert!(field_at(&json, "views_created", 0) >= 1.0);
    assert!(field_at(&json, "indexes_created", 0) >= 1.0);
    // Zero equivalence failures.
    assert_eq!(field_at(&json, "failures", 0), 0.0);
    // The adversarial replication conditions are part of the claim.
    assert!(json.contains("\"drop_p\": 0.10"));
    assert!(json.contains("\"duplicate_p\": 0.05"));
}
