//! Property-based equivalence: for randomized queries and parameter values,
//! the cache server answers exactly what the backend answers — the
//! observable definition of transparency.
//!
//! Since the executor rewrite this file also pins the *internal*
//! equivalence: the compiled streaming executor (`execute`) returns exactly
//! what the seed's materialized interpreter (`execute_materialized`)
//! returns — same rows, same order — across every query shape (joins,
//! outer joins, GROUP BY, TOP, DISTINCT, scalar functions/CASE, and
//! ChoosePlan dynamic plans on both branches), while cloning no more rows.

use std::sync::Arc;

use mtc_util::check::{self, Config};
use mtc_util::pool::WorkerPool;
use mtc_util::rng::{Rng, StdRng};
use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::engine::{
    bind_select, execute, execute_materialized, optimize, Bindings, ExecContext,
    OptimizerOptions, ParallelCtx, QueryResult, RemoteExecutor,
};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::sql::{parse_statement, Statement};
use mtcache_repro::storage::{Database, DbSnapshot, SnapshotDb};
use mtcache_repro::types::{Row, Value};

const N_ROWS: i64 = 3000;
const VIEW_BOUND: i64 = 1000;

fn setup() -> (Arc<BackendServer>, Arc<CacheServer>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, grp INT, val FLOAT, name VARCHAR);
             CREATE INDEX ix_t_grp ON t (grp);",
        )
        .unwrap();
    let rows: Vec<String> = (1..=N_ROWS)
        .map(|i| {
            format!(
                "INSERT INTO t VALUES ({i}, {}, {}.5, 'name{}')",
                i % 17,
                i % 83,
                i % 29
            )
        })
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub);
    cache
        .create_cached_view(
            "t_head",
            &format!("SELECT id, grp, val, name FROM t WHERE id <= {VIEW_BOUND}"),
        )
        .unwrap();
    (backend, cache)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// A randomized single-table query over the fixture schema (old
/// `query_strategy`).
fn gen_query(rng: &mut StdRng) -> String {
    let col = *rng.choose(&["id", "grp", "val"]).unwrap();
    let op = *rng.choose(&["<=", "<", "=", ">=", ">", "<>"]).unwrap();
    let bound = rng.gen_range(0i64..(N_ROWS + 500));
    format!("SELECT id, grp, val FROM t WHERE {col} {op} {bound}")
}

#[test]
fn random_range_queries_agree() {
    check::run(
        // Each case runs two full queries over 3000 rows.
        &Config::cases(24),
        "random_range_queries_agree",
        gen_query,
        |sql| {
            let (backend, cache) = setup();
            let b = Connection::connect(backend).query(sql).unwrap();
            let c = Connection::connect(cache).query(sql).unwrap();
            assert_eq!(sorted(b.rows), sorted(c.rows), "query: {sql}");
        },
    );
}

#[test]
fn random_parameters_agree_across_guard() {
    check::run(
        &Config::cases(24),
        "random_parameters_agree_across_guard",
        |rng| rng.gen_range(0i64..(N_ROWS + 500)),
        |&v| {
            let (backend, cache) = setup();
            let sql = "SELECT id, grp, val, name FROM t WHERE id <= @v";
            let params = Connection::params(&[("v", Value::Int(v))]);
            let b = Connection::connect(backend).query_with(sql, &params).unwrap();
            let c_res = Connection::connect(cache.clone())
                .query_with(sql, &params)
                .unwrap();
            assert_eq!(sorted(b.rows), sorted(c_res.rows), "@v = {v}");
            // The routing decision itself must respect the guard.
            if v <= VIEW_BOUND {
                assert_eq!(c_res.metrics.remote_calls, 0, "@v = {v} should stay local");
            } else {
                assert!(c_res.metrics.remote_calls > 0, "@v = {v} must go remote");
            }
        },
    );
}

#[test]
fn random_conjunctions_agree() {
    check::run(
        &Config::cases(24),
        "random_conjunctions_agree",
        |rng| {
            (
                rng.gen_range(0i64..N_ROWS),
                rng.gen_range(1i64..800),
                rng.gen_range(0i64..17),
            )
        },
        |&(lo, width, grp)| {
            let (backend, cache) = setup();
            let sql = format!(
                "SELECT id, val FROM t WHERE id >= {lo} AND id <= {} AND grp = {grp}",
                lo + width
            );
            let b = Connection::connect(backend).query(&sql).unwrap();
            let c = Connection::connect(cache).query(&sql).unwrap();
            assert_eq!(sorted(b.rows), sorted(c.rows), "query: {sql}");
        },
    );
}

#[test]
fn aggregates_agree() {
    check::run(
        &Config::cases(17),
        "aggregates_agree",
        |rng| rng.gen_range(0i64..17),
        |&grp| {
            let (backend, cache) = setup();
            let sql = format!(
                "SELECT COUNT(*) AS n, SUM(val) AS s, MIN(id) AS lo, MAX(id) AS hi FROM t WHERE grp = {grp}"
            );
            let b = Connection::connect(backend).query(&sql).unwrap();
            let c = Connection::connect(cache).query(&sql).unwrap();
            assert_eq!(b.rows, c.rows, "query: {sql}");
        },
    );
}

// ---------------------------------------------------------------------------
// Internal equivalence: compiled streaming executor vs seed interpreter.
//
// These tests pin the executor rewrite: `execute` (compile + stream) must
// produce exactly the rows `execute_materialized` (the instrumented seed
// interpreter) produces — same rows, same order — from the *same* physical
// plan, and must never clone more rows doing it.
// ---------------------------------------------------------------------------

/// Smaller two-table database for executor-level shape tests: `t` as in
/// [`setup`] but 600 rows, plus `u (uid PK, t_grp, label)` whose `t_grp`
/// values cover only some of `t.grp` (and include values `t` lacks), so
/// outer joins exercise null extension in both directions.
fn join_db() -> Arc<BackendServer> {
    let backend = BackendServer::new("exec");
    backend
        .run_script(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, grp INT, val FLOAT, name VARCHAR);
             CREATE INDEX ix_t_grp ON t (grp);
             CREATE TABLE u (uid INT NOT NULL PRIMARY KEY, t_grp INT, label VARCHAR);",
        )
        .unwrap();
    let rows: Vec<String> = (1..=600i64)
        .map(|i| {
            format!(
                "INSERT INTO t VALUES ({i}, {}, {}.5, 'name{}')",
                i % 17,
                i % 83,
                i % 29
            )
        })
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    let urows: Vec<String> = (0..40i64)
        .map(|i| format!("INSERT INTO u VALUES ({i}, {}, 'label{}')", i % 23, i % 7))
        .collect();
    backend.run_script(&urows.join(";")).unwrap();
    backend.analyze();
    backend
}

/// Parses, binds, and optimizes `sql` against `db`, then runs the single
/// resulting physical plan through both executors.
fn both_ways(
    db: &Database,
    sql: &str,
    params: &Bindings,
    remote: Option<&dyn RemoteExecutor>,
) -> (QueryResult, QueryResult) {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else {
        panic!("not a SELECT: {sql}");
    };
    let options = OptimizerOptions::default();
    let plan = bind_select(&sel, db).unwrap();
    let opt = optimize(plan, db, &options).unwrap();
    let ctx = ExecContext {
        db,
        remote,
        params,
        work: &options.cost,
        parallel: None,
    };
    let streamed = execute(&opt.physical, &ctx).unwrap();
    let seed = execute_materialized(&opt.physical, &ctx).unwrap();
    (streamed, seed)
}

fn assert_equivalent(sql: &str, streamed: &QueryResult, seed: &QueryResult) {
    assert_eq!(streamed.schema, seed.schema, "schema differs: {sql}");
    assert_eq!(streamed.rows, seed.rows, "rows differ: {sql}");
    assert!(
        streamed.metrics.rows_cloned <= seed.metrics.rows_cloned,
        "streaming cloned more rows ({} > {}): {sql}",
        streamed.metrics.rows_cloned,
        seed.metrics.rows_cloned
    );
    // Both executors materialize the same final rows exactly once at the
    // client boundary, so their boundary-volume accounting must agree.
    assert_eq!(
        streamed.metrics.bytes_materialized, seed.metrics.bytes_materialized,
        "boundary materialization volume differs: {sql}"
    );
}

/// A randomized query spanning every shape the executor supports: inner and
/// outer joins, GROUP BY aggregates with HAVING, TOP, DISTINCT, and
/// CASE/scalar-function projections.
fn gen_shape(rng: &mut StdRng) -> String {
    let bound = rng.gen_range(0i64..700);
    let grp = rng.gen_range(0i64..17);
    let top = rng.gen_range(1i64..40);
    match rng.gen_range(0u64..8) {
        0 => format!(
            "SELECT t.id, t.grp, u.label FROM t INNER JOIN u ON t.grp = u.t_grp \
             WHERE t.id <= {bound} ORDER BY t.id ASC, u.label ASC"
        ),
        1 => format!(
            "SELECT t.id, u.uid FROM t LEFT JOIN u ON t.grp = u.t_grp \
             WHERE t.id <= {bound} ORDER BY t.id ASC, u.uid ASC"
        ),
        2 => format!(
            "SELECT u.uid, t.id FROM t RIGHT JOIN u ON t.grp = u.t_grp \
             WHERE u.uid <= {top} ORDER BY u.uid ASC, t.id ASC"
        ),
        3 => format!(
            "SELECT t.id, u.uid FROM t FULL JOIN u ON t.grp = u.t_grp \
             ORDER BY t.id ASC, u.uid ASC"
        ),
        4 => format!(
            "SELECT grp, COUNT(*) AS n, SUM(val) AS s, MIN(id) AS lo FROM t \
             WHERE id <= {bound} GROUP BY grp HAVING COUNT(*) > 1 ORDER BY grp ASC"
        ),
        5 => format!("SELECT TOP {top} id, val FROM t WHERE grp = {grp} ORDER BY id DESC"),
        6 => format!("SELECT DISTINCT grp, name FROM t WHERE id <= {bound} ORDER BY grp ASC, name ASC"),
        _ => format!(
            "SELECT id, CASE WHEN grp < {grp} THEN UPPER(name) ELSE name END AS tag \
             FROM t WHERE id <= {bound} ORDER BY id ASC"
        ),
    }
}

#[test]
fn streaming_matches_seed_across_shapes() {
    let backend = join_db();
    let params = Bindings::new();
    check::run(
        &Config::cases(40),
        "streaming_matches_seed_across_shapes",
        gen_shape,
        |sql| {
            let db = backend.db.read();
            let (streamed, seed) = both_ways(&db, sql, &params, None);
            assert_equivalent(sql, &streamed, &seed);
        },
    );
}

// ---------------------------------------------------------------------------
// Morsel parallelism: dop > 1 must be invisible in the results.
//
// The parallel executor re-partitions scans, seeks, hash-aggregate builds and
// hash-join builds across a worker pool; determinism demands the merged
// output is byte-identical to the serial (dop = 1) run for every shape.
// ---------------------------------------------------------------------------

/// Runs `sql` against `snap` serially and with a `dop`-way [`ParallelCtx`]
/// (min_rows forced to 1 so even small fixtures go parallel), returning both
/// results for comparison.
fn serial_vs_parallel(
    snap: &Arc<DbSnapshot>,
    sql: &str,
    params: &Bindings,
    remote: Option<&dyn RemoteExecutor>,
    dop: usize,
) -> (QueryResult, QueryResult) {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else {
        panic!("not a SELECT: {sql}");
    };
    let options = OptimizerOptions::default();
    let plan = bind_select(&sel, snap).unwrap();
    let opt = optimize(plan, snap, &options).unwrap();
    let serial_ctx = ExecContext {
        db: snap,
        remote,
        params,
        work: &options.cost,
        parallel: None,
    };
    let serial = execute(&opt.physical, &serial_ctx).unwrap();
    let mut pctx = ParallelCtx::new(snap.clone(), WorkerPool::global().clone(), dop);
    pctx.min_rows = 1;
    let parallel_ctx = ExecContext {
        db: snap,
        remote,
        params,
        work: &options.cost,
        parallel: Some(pctx),
    };
    let parallel = execute(&opt.physical, &parallel_ctx).unwrap();
    (serial, parallel)
}

#[test]
fn parallel_matches_serial_across_shapes() {
    let backend = join_db();
    let snap = Arc::new(SnapshotDb::new(backend.db.read().clone())).read();
    let params = Bindings::new();
    check::run(
        &Config::cases(40),
        "parallel_matches_serial_across_shapes",
        |rng| (gen_shape(rng), *rng.choose(&[2usize, 4, 8]).unwrap()),
        |(sql, dop)| {
            let (serial, parallel) = serial_vs_parallel(&snap, sql, &params, None, *dop);
            assert_eq!(serial.schema, parallel.schema, "schema differs: {sql}");
            assert_eq!(
                serial.rows, parallel.rows,
                "dop={dop} changed the answer: {sql}"
            );
            assert!(
                parallel.metrics.parallel_work > 0.0,
                "dop={dop} did no parallel work: {sql}"
            );
            assert!(
                parallel.metrics.parallel_work <= parallel.metrics.local_work + 1e-9,
                "parallel_work exceeds local_work: {sql}"
            );
        },
    );
}

#[test]
fn result_cache_and_dop_are_invisible_across_shapes() {
    // The mid-tier result cache and morsel parallelism are pure
    // optimizations: for every query shape, the cache server must return
    // bit-identical rows with the cache off, with it cold, and with it
    // warm (served from memory), at dop 1 and dop 4 alike — all equal to
    // the backend's own answer.
    let backend = join_db();
    let make_cache = |dop: usize| {
        let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
        let mut cache = CacheServer::create("cache-eq", backend.clone(), hub);
        Arc::get_mut(&mut cache).expect("freshly created server").options.dop = dop;
        cache
    };
    check::run(
        &Config::cases(16),
        "result_cache_and_dop_are_invisible_across_shapes",
        gen_shape,
        |sql| {
            let reference = Connection::connect(backend.clone()).query(sql).unwrap();
            for dop in [1usize, 4, 8] {
                let cache = make_cache(dop);
                let conn = Connection::connect(cache.clone());
                cache.result_cache.set_enabled(false);
                let off = conn.query(sql).unwrap();
                assert_eq!(off.rows, reference.rows, "cache off, dop={dop}: {sql}");
                cache.result_cache.set_enabled(true);
                let cold = conn.query(sql).unwrap();
                assert_eq!(cold.rows, reference.rows, "cache cold, dop={dop}: {sql}");
                let warm = conn.query(sql).unwrap();
                assert_eq!(warm.schema, cold.schema, "warm schema, dop={dop}: {sql}");
                assert_eq!(
                    warm.rows, reference.rows,
                    "a warm result-cache serve changed the answer, dop={dop}: {sql}"
                );
            }
        },
    );
}

#[test]
fn streaming_clone_budget_is_zero_on_read_paths() {
    // The zero-copy contract, pinned: a read-only query through the
    // streaming executor clones **zero** rows at every dop. Scans columnize
    // borrowed storage rows in place, filters narrow selection vectors,
    // joins/aggregates/sorts reference retained batches through
    // `(batch, row)` handles, and the only owned copy is the final result —
    // tracked separately in `bytes_materialized`, which must be charged
    // whenever rows came back.
    let backend = join_db();
    let snap = Arc::new(SnapshotDb::new(backend.db.read().clone())).read();
    let params = Bindings::new();
    check::run(
        &Config::cases(24),
        "streaming_clone_budget_is_zero_on_read_paths",
        |rng| (gen_shape(rng), *rng.choose(&[1usize, 4, 8]).unwrap()),
        |(sql, dop)| {
            let (serial, parallel) = serial_vs_parallel(&snap, sql, &params, None, *dop);
            assert_eq!(
                serial.metrics.rows_cloned, 0,
                "serial streaming cloned rows: {sql}"
            );
            assert_eq!(
                parallel.metrics.rows_cloned, 0,
                "dop={dop} streaming cloned rows: {sql}"
            );
            assert!(
                serial.rows.is_empty() || serial.metrics.bytes_materialized > 0,
                "result rows came back but no boundary volume was charged: {sql}"
            );
        },
    );
}

#[test]
fn parallel_matches_serial_on_choose_plan_branches() {
    // ChoosePlan branches must also be dop-invariant: the local branch scans
    // the cached view in morsels, the remote branch must still ship exactly
    // one remote call.
    let (backend, cache) = setup();
    for v in [500i64, 1_500i64] {
        for dop in [2usize, 4] {
            let snap = cache.db.read();
            let params = Connection::params(&[("v", Value::Int(v))]);
            let remote: &dyn RemoteExecutor = &*backend;
            let sql = "SELECT id, grp, val, name FROM t WHERE id <= @v";
            let (serial, parallel) = serial_vs_parallel(&snap, sql, &params, Some(remote), dop);
            assert_eq!(serial.rows, parallel.rows, "@v = {v}, dop = {dop}");
            assert_eq!(
                serial.metrics.remote_calls, parallel.metrics.remote_calls,
                "@v = {v}, dop = {dop}: routing changed under parallelism"
            );
        }
    }
}

#[test]
fn streaming_matches_seed_on_choose_plan_branches() {
    // The cache database holds `t_head` with guard `id <= 1000`, so a
    // parameterized probe optimizes to a ChoosePlan whose branches are a
    // local view scan and a remote fallback. Both branches must agree
    // between executors — including the remote-call count.
    let (backend, cache) = setup();
    for v in [500i64, 1_500i64] {
        let db = cache.db.read();
        let params = Connection::params(&[("v", Value::Int(v))]);
        let remote: &dyn RemoteExecutor = &*backend;
        let sql = "SELECT id, grp, val, name FROM t WHERE id <= @v";
        let (streamed, seed) = both_ways(&db, sql, &params, Some(remote));
        assert_equivalent(sql, &streamed, &seed);
        assert_eq!(
            streamed.metrics.remote_calls, seed.metrics.remote_calls,
            "@v = {v}: executors disagree on routing"
        );
        if v <= VIEW_BOUND {
            assert_eq!(streamed.metrics.remote_calls, 0, "@v = {v} should stay local");
        } else {
            assert!(streamed.metrics.remote_calls > 0, "@v = {v} must go remote");
        }
        assert_eq!(streamed.rows.len() as i64, v.min(N_ROWS), "@v = {v}");
    }
}

// ---------------------------------------------------------------------------
// Fleet equivalence: node count, the L1/L2 hierarchy, and per-node dop
// must all be invisible in the answers.
// ---------------------------------------------------------------------------

#[test]
fn fleet_size_cache_state_and_dop_are_invisible_across_shapes() {
    // For every query shape, a fleet of N ∈ {1, 2, 4} nodes — cache off,
    // cache cold, cache warm (L1 or promoted-from-L2), at dop 1 and 4 —
    // answers bit-identically to the single-node baseline and the backend.
    // This is the tentpole's transparency claim: adding cache servers
    // changes where answers come from, never what they are.
    use mtcache_repro::cache::{Fleet, FleetConfig};
    let backend = join_db();
    let make_fleet = |nodes: usize, dop: usize| {
        let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
        Fleet::create(
            backend.clone(),
            hub,
            FleetConfig {
                nodes,
                dop,
                ..FleetConfig::default()
            },
            Box::new(|cache: &CacheServer| {
                cache.create_cached_view(
                    "t_head",
                    "SELECT id, grp, val, name FROM t WHERE id <= 400",
                )
            }),
        )
        .unwrap()
    };
    check::run(
        &Config::cases(6),
        "fleet_size_cache_state_and_dop_are_invisible_across_shapes",
        |rng| (gen_shape(rng), rng.gen_range(0u64..64)),
        |(sql, session)| {
            let reference = Connection::connect(backend.clone()).query(sql).unwrap();
            let baseline = {
                let fleet = make_fleet(1, 1);
                let conn = Connection::connect(fleet.route(*session).unwrap().1);
                conn.query(sql).unwrap()
            };
            assert_eq!(baseline.rows, reference.rows, "single-node fleet: {sql}");
            for nodes in [2usize, 4] {
                for dop in [1usize, 4] {
                    let fleet = make_fleet(nodes, dop);
                    let (slot, routed) = fleet.route(*session).unwrap();
                    let conn = Connection::connect(routed.clone());
                    routed.result_cache.set_enabled(false);
                    let off = conn.query(sql).unwrap();
                    assert_eq!(
                        off.rows, reference.rows,
                        "N={nodes} dop={dop} cache off: {sql}"
                    );
                    routed.result_cache.set_enabled(true);
                    let cold = conn.query(sql).unwrap();
                    assert_eq!(
                        cold.rows, reference.rows,
                        "N={nodes} dop={dop} cache cold: {sql}"
                    );
                    let warm = conn.query(sql).unwrap();
                    assert_eq!(warm.schema, reference.schema, "{sql}");
                    assert_eq!(
                        warm.rows, reference.rows,
                        "N={nodes} dop={dop} warm serve changed the answer: {sql}"
                    );
                    // A peer node answers identically too — remote shapes
                    // may promote the first node's fetch from the shared
                    // L2, which must preserve the bytes exactly.
                    let peer_slot = (slot + 1) % nodes;
                    let peer = Connection::connect(fleet.node(peer_slot).unwrap());
                    let via_peer = peer.query(sql).unwrap();
                    assert_eq!(
                        via_peer.rows, reference.rows,
                        "N={nodes} dop={dop} peer node (L2 path): {sql}"
                    );
                }
            }
        },
    );
}

// ---------------------------------------------------------------------------
// Multi-site placement × degree of parallelism (DESIGN.md §13).
// ---------------------------------------------------------------------------

/// A partitioned fleet over this file's `t` fixture: `cache0` is viewless
/// (in-view reads hop to its peer), only `cache1` caches `t_head`.
fn placement_fleet(dop: usize) -> (Arc<BackendServer>, Arc<mtcache_repro::cache::Fleet>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, grp INT, val FLOAT, name VARCHAR);
             CREATE INDEX ix_t_grp ON t (grp);",
        )
        .unwrap();
    let rows: Vec<String> = (1..=N_ROWS)
        .map(|i| {
            format!(
                "INSERT INTO t VALUES ({i}, {}, {}.5, 'name{}')",
                i % 17,
                i % 83,
                i % 29
            )
        })
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let fleet = mtcache_repro::cache::Fleet::create(
        backend.clone(),
        hub,
        mtcache_repro::cache::FleetConfig {
            nodes: 2,
            dop,
            ..mtcache_repro::cache::FleetConfig::default()
        },
        Box::new(|cache: &CacheServer| {
            if cache.name() == "cache1" {
                cache.create_cached_view(
                    "t_head",
                    &format!("SELECT id, grp, val, name FROM t WHERE id <= {VIEW_BOUND}"),
                )?;
            }
            Ok(())
        }),
    )
    .unwrap();
    (backend, fleet)
}

#[test]
fn fleet_placement_agrees_across_dop() {
    // Transparency through the placement layer: for randomized queries, a
    // viewless node whose fragments may be peer-placed answers exactly what
    // the backend answers — at dop 1 and dop 4, through every node. The
    // chosen site is a pure performance decision, never a semantic one.
    let (backend1, serial) = placement_fleet(1);
    let (backend4, parallel) = placement_fleet(4);
    let reference = Connection::connect(backend1);
    let reference4 = Connection::connect(backend4);
    check::run(
        &Config::cases(24),
        "fleet_placement_agrees_across_dop",
        gen_query,
        |sql| {
            let want = reference.query(sql).unwrap();
            assert_eq!(
                sorted(reference4.query(sql).unwrap().rows),
                sorted(want.rows.clone()),
                "fixtures diverged: {sql}"
            );
            for slot in 0..2 {
                let via_serial = Connection::connect(serial.node(slot).unwrap())
                    .query(sql)
                    .unwrap();
                let via_parallel = Connection::connect(parallel.node(slot).unwrap())
                    .query(sql)
                    .unwrap();
                assert_eq!(
                    sorted(via_serial.rows),
                    sorted(want.rows.clone()),
                    "dop 1, node {slot}: {sql}"
                );
                assert_eq!(
                    sorted(via_parallel.rows),
                    sorted(want.rows.clone()),
                    "dop 4, node {slot}: {sql}"
                );
            }
        },
    );
}

// ---------------------------------------------------------------------------
// Adaptive advisor + intermediate-result caching: runtime cache-design
// changes and fragment memoization must be invisible in the results.
// ---------------------------------------------------------------------------

#[test]
fn advisor_and_fragment_cache_are_invisible_across_shapes() {
    // The online advisor creates cached views and supporting indexes in the
    // middle of a workload, and the fragment memo replays join/aggregate
    // subtrees from cache memory. Both are pure optimizations: for every
    // query shape, with every combination of advisor on/off × fragment
    // cache on/off × dop {1, 4}, the cache server must return bit-identical
    // rows before a tick, after a tick (when the advisor may have deployed
    // new views), and on the memo-served repeat — all equal to the
    // backend's own answer.
    use mtcache_repro::cache::{AdaptiveAdvisor, AdvisorConfig};

    let backend = join_db();
    let make_cache = |dop: usize| {
        let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
        let mut cache = CacheServer::create("cache-adv", backend.clone(), hub);
        Arc::get_mut(&mut cache).expect("freshly created server").options.dop = dop;
        cache
    };
    check::run(
        &Config::cases(10),
        "advisor_and_fragment_cache_are_invisible_across_shapes",
        gen_shape,
        |sql| {
            let reference = Connection::connect(backend.clone()).query(sql).unwrap();
            for dop in [1usize, 4] {
                for fragment in [false, true] {
                    for advisor in [false, true] {
                        let label = format!("dop={dop} fragment={fragment} advisor={advisor}");
                        let cache = make_cache(dop);
                        cache.set_fragment_caching(fragment);
                        if advisor {
                            cache.set_advisor(Some(Arc::new(AdaptiveAdvisor::new(
                                AdvisorConfig::default(),
                            ))));
                        }
                        let conn = Connection::connect(cache.clone());
                        let cold = conn.query(sql).unwrap();
                        assert_eq!(cold.rows, reference.rows, "cold, {label}: {sql}");
                        // Close an epoch: the advisor may create cached
                        // views and indexes at runtime. The answer must
                        // not move.
                        let decisions = cache.advisor_tick();
                        let after = conn.query(sql).unwrap();
                        assert_eq!(
                            after.rows, reference.rows,
                            "after tick {decisions:?}, {label}: {sql}"
                        );
                        // Served repeat: result cache and fragment memo now
                        // both have a shot at answering from memory.
                        let served = conn.query(sql).unwrap();
                        assert_eq!(served.schema, after.schema, "served schema, {label}: {sql}");
                        assert_eq!(served.rows, reference.rows, "served, {label}: {sql}");
                    }
                }
            }
        },
    );
}
