//! Property-based equivalence: for randomized queries and parameter values,
//! the cache server answers exactly what the backend answers — the
//! observable definition of transparency.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::types::{Row, Value};

const N_ROWS: i64 = 3000;
const VIEW_BOUND: i64 = 1000;

fn setup() -> (Arc<BackendServer>, Arc<CacheServer>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, grp INT, val FLOAT, name VARCHAR);
             CREATE INDEX ix_t_grp ON t (grp);",
        )
        .unwrap();
    let rows: Vec<String> = (1..=N_ROWS)
        .map(|i| {
            format!(
                "INSERT INTO t VALUES ({i}, {}, {}.5, 'name{}')",
                i % 17,
                i % 83,
                i % 29
            )
        })
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub);
    cache
        .create_cached_view(
            "t_head",
            &format!("SELECT id, grp, val, name FROM t WHERE id <= {VIEW_BOUND}"),
        )
        .unwrap();
    (backend, cache)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// A randomized single-table query over the fixture schema.
fn query_strategy() -> impl Strategy<Value = String> {
    let col = prop_oneof![Just("id"), Just("grp"), Just("val")];
    let op = prop_oneof![Just("<="), Just("<"), Just("="), Just(">="), Just(">"), Just("<>")];
    (col, op, 0i64..(N_ROWS + 500)).prop_map(|(col, op, bound)| {
        format!("SELECT id, grp, val FROM t WHERE {col} {op} {bound}")
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs two full queries over 3000 rows
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_range_queries_agree(sql in query_strategy()) {
        let (backend, cache) = setup();
        let b = Connection::connect(backend).query(&sql).unwrap();
        let c = Connection::connect(cache).query(&sql).unwrap();
        prop_assert_eq!(sorted(b.rows), sorted(c.rows), "query: {}", sql);
    }

    #[test]
    fn random_parameters_agree_across_guard(v in 0i64..(N_ROWS + 500)) {
        let (backend, cache) = setup();
        let sql = "SELECT id, grp, val, name FROM t WHERE id <= @v";
        let params = Connection::params(&[("v", Value::Int(v))]);
        let b = Connection::connect(backend).query_with(sql, &params).unwrap();
        let c_res = Connection::connect(cache.clone()).query_with(sql, &params).unwrap();
        prop_assert_eq!(sorted(b.rows), sorted(c_res.rows), "@v = {}", v);
        // The routing decision itself must respect the guard.
        if v <= VIEW_BOUND {
            prop_assert_eq!(c_res.metrics.remote_calls, 0, "@v = {} should stay local", v);
        } else {
            prop_assert!(c_res.metrics.remote_calls > 0, "@v = {} must go remote", v);
        }
    }

    #[test]
    fn random_conjunctions_agree(
        lo in 0i64..N_ROWS,
        width in 1i64..800,
        grp in 0i64..17,
    ) {
        let (backend, cache) = setup();
        let sql = format!(
            "SELECT id, val FROM t WHERE id >= {lo} AND id <= {} AND grp = {grp}",
            lo + width
        );
        let b = Connection::connect(backend).query(&sql).unwrap();
        let c = Connection::connect(cache).query(&sql).unwrap();
        prop_assert_eq!(sorted(b.rows), sorted(c.rows), "query: {}", sql);
    }

    #[test]
    fn aggregates_agree(grp in 0i64..17) {
        let (backend, cache) = setup();
        let sql = format!(
            "SELECT COUNT(*) AS n, SUM(val) AS s, MIN(id) AS lo, MAX(id) AS hi FROM t WHERE grp = {grp}"
        );
        let b = Connection::connect(backend).query(&sql).unwrap();
        let c = Connection::connect(cache).query(&sql).unwrap();
        prop_assert_eq!(b.rows, c.rows, "query: {}", sql);
    }
}
