//! Property-based equivalence: for randomized queries and parameter values,
//! the cache server answers exactly what the backend answers — the
//! observable definition of transparency.

use std::sync::Arc;

use mtc_util::check::{self, Config};
use mtc_util::rng::{Rng, StdRng};
use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::ReplicationHub;
use mtcache_repro::types::{Row, Value};

const N_ROWS: i64 = 3000;
const VIEW_BOUND: i64 = 1000;

fn setup() -> (Arc<BackendServer>, Arc<CacheServer>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script(
            "CREATE TABLE t (id INT NOT NULL PRIMARY KEY, grp INT, val FLOAT, name VARCHAR);
             CREATE INDEX ix_t_grp ON t (grp);",
        )
        .unwrap();
    let rows: Vec<String> = (1..=N_ROWS)
        .map(|i| {
            format!(
                "INSERT INTO t VALUES ({i}, {}, {}.5, 'name{}')",
                i % 17,
                i % 83,
                i % 29
            )
        })
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub);
    cache
        .create_cached_view(
            "t_head",
            &format!("SELECT id, grp, val, name FROM t WHERE id <= {VIEW_BOUND}"),
        )
        .unwrap();
    (backend, cache)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// A randomized single-table query over the fixture schema (old
/// `query_strategy`).
fn gen_query(rng: &mut StdRng) -> String {
    let col = *rng.choose(&["id", "grp", "val"]).unwrap();
    let op = *rng.choose(&["<=", "<", "=", ">=", ">", "<>"]).unwrap();
    let bound = rng.gen_range(0i64..(N_ROWS + 500));
    format!("SELECT id, grp, val FROM t WHERE {col} {op} {bound}")
}

#[test]
fn random_range_queries_agree() {
    check::run(
        // Each case runs two full queries over 3000 rows.
        &Config::cases(24),
        "random_range_queries_agree",
        gen_query,
        |sql| {
            let (backend, cache) = setup();
            let b = Connection::connect(backend).query(sql).unwrap();
            let c = Connection::connect(cache).query(sql).unwrap();
            assert_eq!(sorted(b.rows), sorted(c.rows), "query: {sql}");
        },
    );
}

#[test]
fn random_parameters_agree_across_guard() {
    check::run(
        &Config::cases(24),
        "random_parameters_agree_across_guard",
        |rng| rng.gen_range(0i64..(N_ROWS + 500)),
        |&v| {
            let (backend, cache) = setup();
            let sql = "SELECT id, grp, val, name FROM t WHERE id <= @v";
            let params = Connection::params(&[("v", Value::Int(v))]);
            let b = Connection::connect(backend).query_with(sql, &params).unwrap();
            let c_res = Connection::connect(cache.clone())
                .query_with(sql, &params)
                .unwrap();
            assert_eq!(sorted(b.rows), sorted(c_res.rows), "@v = {v}");
            // The routing decision itself must respect the guard.
            if v <= VIEW_BOUND {
                assert_eq!(c_res.metrics.remote_calls, 0, "@v = {v} should stay local");
            } else {
                assert!(c_res.metrics.remote_calls > 0, "@v = {v} must go remote");
            }
        },
    );
}

#[test]
fn random_conjunctions_agree() {
    check::run(
        &Config::cases(24),
        "random_conjunctions_agree",
        |rng| {
            (
                rng.gen_range(0i64..N_ROWS),
                rng.gen_range(1i64..800),
                rng.gen_range(0i64..17),
            )
        },
        |&(lo, width, grp)| {
            let (backend, cache) = setup();
            let sql = format!(
                "SELECT id, val FROM t WHERE id >= {lo} AND id <= {} AND grp = {grp}",
                lo + width
            );
            let b = Connection::connect(backend).query(&sql).unwrap();
            let c = Connection::connect(cache).query(&sql).unwrap();
            assert_eq!(sorted(b.rows), sorted(c.rows), "query: {sql}");
        },
    );
}

#[test]
fn aggregates_agree() {
    check::run(
        &Config::cases(17),
        "aggregates_agree",
        |rng| rng.gen_range(0i64..17),
        |&grp| {
            let (backend, cache) = setup();
            let sql = format!(
                "SELECT COUNT(*) AS n, SUM(val) AS s, MIN(id) AS lo, MAX(id) AS hi FROM t WHERE grp = {grp}"
            );
            let b = Connection::connect(backend).query(&sql).unwrap();
            let c = Connection::connect(cache).query(&sql).unwrap();
            assert_eq!(b.rows, c.rows, "query: {sql}");
        },
    );
}
