//! Fleet-tier semantics (DESIGN.md §11): the front-door router, multi-node
//! replication fan-out, the L1/L2 result-cache hierarchy, and the failure
//! path — crash, reroute, cold rejoin — all at the `Fleet` API level.
//!
//! The invariants pinned here are the ones the fleet exists to provide:
//!
//! * routing is deterministic, total over live nodes, and session-sticky;
//!   a crash remaps only the victim's sessions;
//! * a crashed node stops consuming the replication stream without
//!   wedging hub truncation or `drained()`; a cold rejoin converges to the
//!   bit-exact view subset, including when it joins mid-stream under the
//!   standard fault plan;
//! * a forwarded write through *any* node synchronously invalidates every
//!   L1 and the shared L2, so no node can serve a pre-write result to a
//!   post-write reader (the cross-node invalidation race, exercised
//!   property-style over seeded interleavings);
//! * the shared L2 converts a peer's backend fetch into a zero-round-trip
//!   serve, preserving currency lineage.

use std::sync::Arc;

use mtc_util::check::{self, Config};
use mtc_util::rng::{Rng, SeedableRng, StdRng};
use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection, Fleet, FleetConfig};
use mtcache_repro::replication::{FaultPlan, FaultSpec, ReplicationHub};
use mtcache_repro::types::{Row, Value};

const VIEW_BOUND: i64 = 150;
const ROWS: i64 = 200;

/// Backend with one table, a hub, and an `nodes`-node fleet where every
/// node caches `item_head` = `i_id < 150` (two of three columns).
fn setup_fleet(
    nodes: usize,
) -> (Arc<BackendServer>, Arc<Fleet>, Arc<Mutex<ReplicationHub>>) {
    setup_fleet_cfg(FleetConfig {
        nodes,
        ..FleetConfig::default()
    })
}

fn setup_fleet_cfg(
    cfg: FleetConfig,
) -> (Arc<BackendServer>, Arc<Fleet>, Arc<Mutex<ReplicationHub>>) {
    let backend = BackendServer::new("backend");
    backend
        .run_script("CREATE TABLE item (i_id INT NOT NULL PRIMARY KEY, i_qty INT, i_note VARCHAR)")
        .unwrap();
    let rows: Vec<String> = (0..ROWS)
        .map(|i| format!("INSERT INTO item VALUES ({i}, {}, 'n{i}')", i % 50))
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let fleet = Fleet::create(
        backend.clone(),
        hub.clone(),
        cfg,
        Box::new(|cache: &CacheServer| {
            cache.create_cached_view(
                "item_head",
                &format!("SELECT i_id, i_qty FROM item WHERE i_id < {VIEW_BOUND}"),
            )
        }),
    )
    .unwrap();
    (backend, fleet, hub)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// The view's backing table on one node, read directly from storage.
fn view_rows(node: &CacheServer) -> Vec<Row> {
    node.db
        .read()
        .table_ref("item_head")
        .unwrap()
        .scan()
        .cloned()
        .collect()
}

/// Ground truth for the view subset, recomputed on the backend.
fn expected_view_rows(backend: &Arc<BackendServer>) -> Vec<Row> {
    Connection::connect(backend.clone())
        .query(&format!(
            "SELECT i_id, i_qty FROM item WHERE i_id < {VIEW_BOUND}"
        ))
        .unwrap()
        .rows
}

fn drain(hub: &Arc<Mutex<ReplicationHub>>) {
    for t in 0..100_000i64 {
        let mut h = hub.lock();
        h.pump(1_000_000 + t * 50).unwrap();
        if h.drained() {
            return;
        }
    }
    panic!("hub failed to drain");
}

// ---------------------------------------------------------------------------
// Routing: deterministic, total, sticky, minimally disrupted.
// ---------------------------------------------------------------------------

#[test]
fn routing_is_deterministic_total_and_sticky() {
    let (_backend, fleet, _hub) = setup_fleet(4);
    let first: Vec<usize> = (0..128u64)
        .map(|s| fleet.route(s).unwrap().0)
        .collect();
    // Same session, same node — on the repeat pass and interleaved.
    for s in (0..128u64).rev() {
        let (slot, server) = fleet.route(s).unwrap();
        assert_eq!(slot, first[s as usize], "session {s} moved with no failure");
        assert_eq!(server.name(), format!("cache{slot}"));
    }
    // Total: every session placed, every node used at this scale.
    for slot in 0..4 {
        assert!(
            first.iter().filter(|&&n| n == slot).count() > 0,
            "node {slot} received no sessions out of 128"
        );
    }
}

#[test]
fn crash_remaps_only_the_victims_sessions() {
    let (_backend, fleet, _hub) = setup_fleet(4);
    let before: Vec<usize> = (0..96u64).map(|s| fleet.route(s).unwrap().0).collect();
    let victim = before[0];
    let victim_sessions: Vec<u64> =
        (0..96u64).filter(|&s| before[s as usize] == victim).collect();
    let evicted = fleet.crash_node(victim).unwrap();
    assert_eq!(
        evicted,
        victim_sessions.len(),
        "eviction must cover exactly the victim's pinned sessions"
    );
    for s in 0..96u64 {
        let (slot, _) = fleet.route(s).unwrap();
        if before[s as usize] == victim {
            assert_ne!(slot, victim, "session {s} still routed to the dead node");
        } else {
            assert_eq!(
                slot, before[s as usize],
                "session {s} was not on the crashed node and must not move"
            );
        }
    }
    assert_eq!(fleet.alive_count(), 3);
    assert!(fleet.reroutes() >= evicted as u64);
}

#[test]
fn routing_a_one_node_fleet_after_its_crash_errors() {
    let (_backend, fleet, _hub) = setup_fleet(1);
    fleet.crash_node(0).unwrap();
    assert_eq!(fleet.alive_count(), 0);
    assert!(fleet.route(7).is_err(), "no live node can serve");
    assert!(fleet.crash_node(0).is_err(), "node is already down");
    let revived = fleet.rejoin_node(0).unwrap();
    assert!(fleet.rejoin_node(0).is_err(), "node is already up");
    assert_eq!(fleet.route(7).unwrap().1.name(), revived.name());
}

// ---------------------------------------------------------------------------
// Crash: replication detach without wedging the hub.
// ---------------------------------------------------------------------------

#[test]
fn crashed_node_detaches_from_replication_without_wedging_the_hub() {
    let (backend, fleet, hub) = setup_fleet(2);
    backend
        .run_script("UPDATE item SET i_qty = 999 WHERE i_id = 10")
        .unwrap();
    fleet.crash_node(1).unwrap();
    assert_eq!(
        fleet.applied_lsn(1),
        None,
        "a crashed slot reports no applied LSN"
    );
    drain(&hub);
    // The hub drained and truncated even though slot 1 never applied the
    // write: detached subscriptions are excluded from both.
    assert!(hub.lock().drained());
    assert_eq!(fleet.lag_txns(0), Some(0), "the live node caught up fully");
    let h = hub.lock();
    let infos = h.subscriptions();
    assert!(
        infos.iter().any(|s| s.detached),
        "the crashed node's subscriptions stay tombstoned in place"
    );
    drop(h);
    assert_eq!(
        view_rows(&fleet.node(0).unwrap())
            .iter()
            .find(|r| r[0] == Value::Int(10))
            .map(|r| r[1].clone()),
        Some(Value::Int(999)),
        "the live node saw the write"
    );
}

#[test]
fn per_node_applied_lsn_tracks_each_nodes_progress() {
    let (backend, fleet, hub) = setup_fleet(2);
    drain(&hub);
    let caught_up = fleet.applied_lsn(0).unwrap();
    assert_eq!(fleet.applied_lsn(1), Some(caught_up), "both nodes level");
    backend
        .run_script("UPDATE item SET i_qty = 1 WHERE i_id = 1; UPDATE item SET i_qty = 2 WHERE i_id = 2")
        .unwrap();
    // Make the backlog observable: the log reader ingests the writes but
    // every delivery drops, so both nodes show distribution lag.
    hub.lock()
        .set_fault_plan(FaultPlan::new(3, FaultSpec::drop(1.0)));
    hub.lock().pump(1).unwrap();
    assert!(fleet.lag_txns(0).unwrap() > 0, "undelivered writes show as lag");
    assert_eq!(fleet.lag_txns(0), fleet.lag_txns(1));
    hub.lock().set_fault_plan(FaultPlan::new(3, FaultSpec::NONE));
    drain(&hub);
    assert_eq!(fleet.lag_txns(0), Some(0));
    assert_eq!(fleet.lag_txns(1), Some(0));
    assert!(fleet.applied_lsn(0).unwrap() > caught_up);
}

// ---------------------------------------------------------------------------
// Cold rejoin: bit-exact convergence, including mid-stream under faults.
// ---------------------------------------------------------------------------

#[test]
fn cold_rejoin_converges_bit_exact_under_the_standard_fault_plan() {
    let (backend, fleet, hub) = setup_fleet(3);
    hub.lock().set_fault_plan(FaultPlan::new(
        42,
        FaultSpec {
            drop_p: 0.10,
            duplicate_p: 0.05,
            crash_every: 200,
            ..FaultSpec::NONE
        },
    ));
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..120i64 {
        let id = rng.gen_range(0i64..ROWS);
        backend
            .run_script(&format!("UPDATE item SET i_qty = {i} WHERE i_id = {id}"))
            .unwrap();
        if i == 40 {
            fleet.crash_node(1).unwrap();
        }
        if i == 80 {
            fleet.rejoin_node(1).unwrap();
        }
        if i % 5 == 4 {
            let _ = hub.lock().pump(i);
        }
    }
    drain(&hub);
    let expected = sorted(expected_view_rows(&backend));
    for slot in 0..3 {
        let node = fleet.node(slot).unwrap();
        assert_eq!(
            sorted(view_rows(&node)),
            expected,
            "node {slot} diverged from the backend subset"
        );
    }
    // The rejoined node is bit-identical to the node that never crashed.
    assert_eq!(
        sorted(view_rows(&fleet.node(1).unwrap())),
        sorted(view_rows(&fleet.node(0).unwrap()))
    );
}

#[test]
fn node_joining_mid_apply_batch_sees_a_consistent_snapshot() {
    // Satellite regression: a node that (re)joins while the hub still holds
    // undelivered transactions must bulk-populate from a consistent
    // snapshot at subscribe time — no missing rows, no duplicates, no
    // half-applied batches — and then converge with everyone else.
    let (backend, fleet, hub) = setup_fleet(2);
    fleet.crash_node(1).unwrap();
    for i in 0..30i64 {
        backend
            .run_script(&format!(
                "UPDATE item SET i_qty = {} WHERE i_id = {}",
                1_000 + i,
                i
            ))
            .unwrap();
    }
    // Deliver part of the backlog to the surviving node — half the
    // deliveries drop and stay queued — then rejoin with the hub genuinely
    // mid-stream (some transactions distributed, some pending).
    hub.lock()
        .set_fault_plan(FaultPlan::new(5, FaultSpec::drop(0.5)));
    hub.lock().pump(1).unwrap();
    assert!(!hub.lock().drained(), "fixture needs a genuine backlog");
    let rejoined = fleet.rejoin_node(1).unwrap();
    hub.lock().set_fault_plan(FaultPlan::new(5, FaultSpec::NONE));
    // Immediately at join — before any further pump — the bulk snapshot
    // must already equal the backend subset (subscribe reads committed
    // state, so the pending deliveries are already in the snapshot).
    assert_eq!(
        sorted(view_rows(&rejoined)),
        sorted(expected_view_rows(&backend)),
        "join-time bulk population must be a consistent committed snapshot"
    );
    // And the pending deliveries must not be applied twice.
    drain(&hub);
    assert_eq!(
        sorted(view_rows(&rejoined)),
        sorted(expected_view_rows(&backend)),
        "draining the backlog after the join must be idempotent"
    );
    assert_eq!(
        sorted(view_rows(&fleet.node(0).unwrap())),
        sorted(view_rows(&rejoined))
    );
}

#[test]
fn rejoined_node_serves_view_queries_locally() {
    let (backend, fleet, hub) = setup_fleet(2);
    backend
        .run_script("UPDATE item SET i_qty = 777 WHERE i_id = 5")
        .unwrap();
    fleet.crash_node(0).unwrap();
    let node = fleet.rejoin_node(0).unwrap();
    drain(&hub);
    let r = Connection::connect(node)
        .query("SELECT i_qty FROM item WHERE i_id = 5")
        .unwrap();
    assert_eq!(r.rows, vec![Row::new(vec![Value::Int(777)])]);
    assert_eq!(
        r.metrics.remote_calls, 0,
        "an in-view read on a rejoined node stays local"
    );
}

// ---------------------------------------------------------------------------
// L1/L2 hierarchy.
// ---------------------------------------------------------------------------

/// A read that must go remote (outside the cached view's guard).
const REMOTE_READ: &str = "SELECT i_qty FROM item WHERE i_id = 180";

#[test]
fn l2_serves_a_peers_backend_fetch_without_round_trips() {
    let (_backend, fleet, _hub) = setup_fleet(2);
    let a = Connection::connect(fleet.node(0).unwrap());
    let b = Connection::connect(fleet.node(1).unwrap());
    let first = a.query(REMOTE_READ).unwrap();
    assert!(first.metrics.remote_rtts > 0, "cold fetch pays the wire");
    let via_l2 = b.query(REMOTE_READ).unwrap();
    assert_eq!(via_l2.rows, first.rows);
    assert_eq!(
        via_l2.metrics.remote_rtts, 0,
        "node B must serve node A's fetch from the shared L2, not the backend"
    );
    assert!(fleet.l2().unwrap().stats().hits >= 1);
    // The promotion landed in B's own L1: a third read is a pure L1 hit.
    let l1_hits_before = fleet.node(1).unwrap().result_cache.stats().hits;
    let warm = b.query(REMOTE_READ).unwrap();
    assert_eq!(warm.rows, first.rows);
    assert_eq!(
        fleet.node(1).unwrap().result_cache.stats().hits,
        l1_hits_before + 1,
        "the L2 promotion must have seeded node B's L1"
    );
}

#[test]
fn disabling_the_l2_budget_removes_the_shared_tier() {
    let (_backend, fleet, _hub) = setup_fleet_cfg(FleetConfig {
        nodes: 2,
        l2_budget: 0,
        ..FleetConfig::default()
    });
    assert!(fleet.l2().is_none());
    let a = Connection::connect(fleet.node(0).unwrap());
    let b = Connection::connect(fleet.node(1).unwrap());
    let first = a.query(REMOTE_READ).unwrap();
    let second = b.query(REMOTE_READ).unwrap();
    assert_eq!(first.rows, second.rows);
    assert!(
        second.metrics.remote_rtts > 0,
        "without an L2, node B pays its own backend trip"
    );
}

#[test]
fn write_through_one_node_invalidates_every_l1_and_the_l2() {
    let (_backend, fleet, _hub) = setup_fleet(3);
    let conns: Vec<Connection> = (0..3)
        .map(|i| Connection::connect(fleet.node(i).unwrap()))
        .collect();
    // Warm every node's L1 (and the L2) with the pre-write value.
    for c in &conns {
        assert_eq!(
            c.query(REMOTE_READ).unwrap().rows,
            vec![Row::new(vec![Value::Int(180 % 50)])]
        );
    }
    // Forward a write through node 2 only.
    conns[2]
        .query("UPDATE item SET i_qty = 4242 WHERE i_id = 180")
        .unwrap();
    // Every node — including the ones that never saw the write — must now
    // refetch: serving the warm pre-write entry would violate currency.
    for (i, c) in conns.iter().enumerate() {
        let r = c.query(REMOTE_READ).unwrap();
        assert_eq!(
            r.rows,
            vec![Row::new(vec![Value::Int(4242)])],
            "node {i} served a stale result after a peer's write"
        );
    }
}

#[test]
fn cross_node_invalidation_has_no_stale_window_across_interleavings() {
    // The race the ISSUE names: writer DML lands on node A; a read at a
    // currency point at-or-after that write must not hit a stale L1 on
    // B or C, whatever the interleaving. Forwarded writes synchronously
    // raise every tier's watermark before returning, so for *any* seeded
    // schedule of reads/writes/nodes, a remote read always reflects every
    // completed write.
    #[derive(Debug, Clone)]
    enum Op {
        Write { node: usize, qty: i64 },
        Read { node: usize },
    }
    let gen_ops = |rng: &mut StdRng| {
        check::vec_of(rng, 4..40, |rng| match rng.gen_range(0u32..3) {
            0 => Op::Write {
                node: rng.gen_range(0usize..3),
                qty: rng.gen_range(0i64..10_000),
            },
            _ => Op::Read {
                node: rng.gen_range(0usize..3),
            },
        })
    };
    check::run(
        &Config::cases(12),
        "cross_node_invalidation_has_no_stale_window_across_interleavings",
        gen_ops,
        |ops| {
            let (_backend, fleet, _hub) = setup_fleet(3);
            let conns: Vec<Connection> = (0..3)
                .map(|i| Connection::connect(fleet.node(i).unwrap()))
                .collect();
            let mut committed: i64 = 180 % 50; // seed value of row 180
            for (step, op) in ops.iter().enumerate() {
                match op {
                    Op::Write { node, qty } => {
                        conns[*node]
                            .query(&format!(
                                "UPDATE item SET i_qty = {qty} WHERE i_id = 180"
                            ))
                            .unwrap();
                        committed = *qty;
                    }
                    Op::Read { node } => {
                        let r = conns[*node].query(REMOTE_READ).unwrap();
                        assert_eq!(
                            r.rows,
                            vec![Row::new(vec![Value::Int(committed)])],
                            "step {step}: node {node} read a value older than \
                             the last committed write"
                        );
                    }
                }
            }
        },
    );
}

#[test]
fn fleet_of_n_answers_exactly_what_one_node_answers() {
    // Bit-identical serving across fleet sizes, through the front door:
    // for a spread of sessions and probes, every routed answer equals the
    // single-node fleet's answer equals the backend's.
    let probes = [
        "SELECT i_id, i_qty FROM item WHERE i_id < 20 ORDER BY i_id ASC",
        "SELECT COUNT(*) AS n, SUM(i_qty) AS s FROM item",
        "SELECT i_qty FROM item WHERE i_id = 180",
        "SELECT i_id FROM item WHERE i_qty > 40 ORDER BY i_id ASC",
    ];
    let (backend_1, single, _h1) = setup_fleet(1);
    let (_backend_4, quad, _h4) = setup_fleet(4);
    let reference = Connection::connect(backend_1);
    for (s, sql) in (0..8u64).zip(probes.iter().cycle()) {
        let want = reference.query(sql).unwrap();
        let via_single = Connection::connect(single.route(s).unwrap().1)
            .query(sql)
            .unwrap();
        let via_quad = Connection::connect(quad.route(s).unwrap().1)
            .query(sql)
            .unwrap();
        assert_eq!(via_single.rows, want.rows, "single-node fleet: {sql}");
        assert_eq!(via_quad.rows, want.rows, "4-node fleet: {sql}");
        assert_eq!(via_quad.schema, want.schema, "{sql}");
    }
}
