//! Fault-injected replication: a seeded matrix over {drop, duplicate,
//! delay, corrupt, crash} × fault rates, asserting that after the pipeline
//! drains the cached view converges bit-exact to the backend subset and
//! every transaction took effect exactly once (idempotent apply).
//!
//! All randomness is seeded (the in-tree `check` harness plus `FaultPlan`),
//! and the servers run on a `ManualClock`, so any failure replays exactly:
//!
//! ```text
//! MTC_CHECK_SEED=0x... cargo test --test replication_faults
//! ```

use std::sync::Arc;

use mtc_util::check::{self, Config};
use mtc_util::rng::{Rng, StdRng};
use mtc_util::sync::Mutex;

use mtcache_repro::cache::{BackendServer, CacheServer, Connection};
use mtcache_repro::replication::{Clock, FaultPlan, FaultSpec, ManualClock, ReplicationHub};
use mtcache_repro::types::Row;

/// One randomized DML action against the `stockx` table.
#[derive(Debug, Clone)]
enum Action {
    Insert { id: i64, qty: i64 },
    UpdateQty { id: i64, qty: i64 },
    Rekey { id: i64, new_id: i64 },
    Delete { id: i64 },
}

fn gen_action(rng: &mut StdRng) -> Action {
    match rng.gen_range(0u32..4) {
        0 => Action::Insert {
            id: rng.gen_range(200i64..400),
            qty: rng.gen_range(0i64..100),
        },
        1 => Action::UpdateQty {
            id: rng.gen_range(0i64..400),
            qty: rng.gen_range(0i64..100),
        },
        2 => Action::Rekey {
            id: rng.gen_range(0i64..400),
            new_id: rng.gen_range(200i64..400),
        },
        _ => Action::Delete {
            id: rng.gen_range(0i64..400),
        },
    }
}

/// One cell of the fault matrix: a spec, a plan seed, and a DML stream.
#[derive(Debug, Clone)]
struct FaultCase {
    spec: FaultSpec,
    plan_seed: u64,
    actions: Vec<Action>,
}

fn gen_case(rng: &mut StdRng) -> FaultCase {
    let spec = FaultSpec {
        drop_p: *rng.choose(&[0.0, 0.1, 0.25]).unwrap(),
        duplicate_p: *rng.choose(&[0.0, 0.1, 0.3]).unwrap(),
        delay_p: *rng.choose(&[0.0, 0.1]).unwrap(),
        delay_ms: 120,
        corrupt_p: *rng.choose(&[0.0, 0.05]).unwrap(),
        crash_every: *rng.choose(&[0u64, 4, 9]).unwrap(),
    };
    FaultCase {
        spec,
        plan_seed: rng.gen_range(0u64..u64::MAX),
        actions: check::vec_of(rng, 5..40, gen_action),
    }
}

#[allow(clippy::type_complexity)]
fn setup() -> (
    Arc<BackendServer>,
    Arc<CacheServer>,
    Arc<Mutex<ReplicationHub>>,
    ManualClock,
) {
    let clock = ManualClock::new(0);
    let backend = BackendServer::with_clock("backend", Arc::new(clock.clone()));
    backend
        .run_script("CREATE TABLE stockx (s_id INT NOT NULL PRIMARY KEY, s_qty INT, s_note VARCHAR)")
        .unwrap();
    let rows: Vec<String> = (0..200)
        .map(|i| format!("INSERT INTO stockx VALUES ({i}, {}, 'n{i}')", i % 50))
        .collect();
    backend.run_script(&rows.join(";")).unwrap();
    backend.analyze();
    let hub = Arc::new(Mutex::new(ReplicationHub::new(backend.db.clone())));
    let cache = CacheServer::create("cache", backend.clone(), hub.clone());
    cache
        .create_cached_view("stock_head", "SELECT s_id, s_qty FROM stockx WHERE s_id < 150")
        .unwrap();
    (backend, cache, hub, clock)
}

fn apply(backend: &BackendServer, action: &Action) {
    let sql = match action {
        Action::Insert { id, qty } => format!("INSERT INTO stockx VALUES ({id}, {qty}, 'new')"),
        Action::UpdateQty { id, qty } => {
            format!("UPDATE stockx SET s_qty = {qty} WHERE s_id = {id}")
        }
        Action::Rekey { id, new_id } => {
            format!("UPDATE stockx SET s_id = {new_id} WHERE s_id = {id}")
        }
        Action::Delete { id } => format!("DELETE FROM stockx WHERE s_id = {id}"),
    };
    // Constraint violations from random streams roll back atomically.
    let _ = backend.execute(&sql, &Default::default(), "dbo");
}

/// Pumps the faulted pipeline until it drains. Errors (corrupt frames,
/// injected crashes) model an agent restart: the next pump resumes from the
/// last applied LSN. Time advances so delay faults expire.
fn drain(hub: &Arc<Mutex<ReplicationHub>>, clock: &ManualClock) {
    for _ in 0..10_000 {
        clock.advance(50);
        let mut h = hub.lock();
        let _ = h.pump(clock.now_ms());
        if h.drained() {
            return;
        }
    }
    panic!("pipeline failed to drain within the iteration budget");
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// Backend ground truth vs. the cached view's backing table, bit-exact.
fn assert_converged(backend: &Arc<BackendServer>, cache: &Arc<CacheServer>) {
    let expected = Connection::connect(backend.clone())
        .query("SELECT s_id, s_qty FROM stockx WHERE s_id < 150")
        .unwrap();
    let cache_db = cache.db.read();
    let actual: Vec<Row> = cache_db
        .table_ref("stock_head")
        .unwrap()
        .scan()
        .cloned()
        .collect();
    assert_eq!(sorted(expected.rows), sorted(actual), "view diverged");
}

#[test]
fn faulted_pipeline_converges_with_exact_once_effect() {
    check::run(
        &Config::cases(16),
        "faulted_pipeline_converges_with_exact_once_effect",
        gen_case,
        |case| {
            let (backend, cache, hub, clock) = setup();
            hub.lock()
                .set_fault_plan(FaultPlan::new(case.plan_seed, case.spec));
            for (i, a) in case.actions.iter().enumerate() {
                clock.advance(10);
                apply(&backend, a);
                // Pump mid-stream (ignoring injected failures) so faults hit
                // partially-drained queues, not just one big final batch.
                if i % 5 == 2 {
                    let _ = hub.lock().pump(clock.now_ms());
                }
            }
            drain(&hub, &clock);
            assert_converged(&backend, &cache);

            // Exact-once *effect*: recovery bookkeeping must line up with
            // what the plan actually injected.
            let h = hub.lock();
            let counts = h.fault_counts().expect("plan installed");
            let blocked = counts.drops + counts.corruptions + counts.crashes + counts.delays;
            assert!(
                h.metrics.retries.get() >= h.metrics.redeliveries.get(),
                "retries {} < redeliveries {}",
                h.metrics.retries.get(),
                h.metrics.redeliveries.get()
            );
            if blocked > 0 {
                assert!(
                    h.metrics.retries.get() > 0,
                    "faults blocked deliveries but no retries recorded: {counts:?}"
                );
            }
            assert_eq!(h.metrics.duplicates_delivered.get(), counts.duplicates);
            assert_eq!(h.metrics.crashes_injected.get(), counts.crashes);
            assert_eq!(h.metrics.deliveries_dropped.get(), counts.drops);
            assert_eq!(h.metrics.corrupt_frames.get(), counts.corruptions);
        },
    );
}

/// The acceptance scenario from the issue: 10% drop + 5% duplicate +
/// crash-every-200-deliveries over a ~300-transaction update stream.
/// The cache must converge bit-exact after drain, and the recovery counters
/// must be nonzero and *identical across runs* for the same seed.
#[test]
fn acceptance_drop10_dup5_crash200_is_deterministic_per_seed() {
    let spec = FaultSpec {
        drop_p: 0.10,
        duplicate_p: 0.05,
        crash_every: 200,
        ..FaultSpec::NONE
    };
    let run = |seed: u64| {
        let (backend, cache, hub, clock) = setup();
        hub.lock().set_fault_plan(FaultPlan::new(seed, spec));
        for i in 0..300i64 {
            clock.advance(10);
            apply(
                &backend,
                &Action::UpdateQty {
                    id: i % 140,
                    qty: i,
                },
            );
            if i % 4 == 1 {
                let _ = hub.lock().pump(clock.now_ms());
            }
        }
        drain(&hub, &clock);
        assert_converged(&backend, &cache);
        let h = hub.lock();
        (h.metrics.snapshot(), h.fault_counts().unwrap())
    };

    let (m1, c1) = run(0xFA_17);
    let (m2, c2) = run(0xFA_17);
    assert_eq!(m1, m2, "metrics must be deterministic per seed");
    assert_eq!(c1, c2, "fault counts must be deterministic per seed");

    assert!(m1.deliveries_dropped > 0, "{m1:?}");
    assert!(m1.duplicates_delivered > 0, "{m1:?}");
    assert!(m1.crashes_injected > 0, "{m1:?}");
    assert!(m1.retries > 0, "{m1:?}");
    assert!(m1.redeliveries > 0, "{m1:?}");
    assert!(m1.max_lag_txns > 0, "{m1:?}");

    // A different seed takes a different fault path.
    let (m3, _c3) = run(0xBEEF);
    assert_ne!(
        (m1.deliveries_dropped, m1.duplicates_delivered, m1.retries),
        (m3.deliveries_dropped, m3.duplicates_delivered, m3.retries),
        "different seeds should inject differently"
    );
}
